//! The metrics registry: counters, gauges, fixed-bucket histograms,
//! and Prometheus-style text exposition.
//!
//! ## Naming scheme
//!
//! `evirel_<layer>_<what>_<unit>` — layer is one of `serve`, `query`,
//! `exec`, `store`, `repl`; monotone counters end in `_total`, latency
//! histograms in `_seconds`, free-standing instantaneous values are
//! plain gauges (`_depth`, `_bytes`, …). Label sets are small and
//! closed (`verb`, `stage`): unbounded label values would make the
//! registry a memory leak.
//!
//! ## Concurrency
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`'d relaxed
//! atomics — increments from any number of threads are exact (the
//! concurrency stress test pins N×M == total), and reads are
//! monotone for counters. The registry map itself is behind a mutex
//! touched only at registration and scrape.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::event::EventLog;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raise to `v` if `v` is larger — for mirroring an external
    /// cumulative counter (a subsystem's own snapshot struct) into
    /// the registry at scrape time without ever moving backwards.
    pub fn set_at_least(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// An instantaneous value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` (saturating at zero: a dec racing a set must not
    /// wrap to u64::MAX).
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in microseconds. Roughly
/// exponential from 50 µs to 10 s — wide enough that a p99 read off
/// the buckets is meaningful from a PING round-trip (~10 µs, first
/// bucket) to an fsync stall (hundreds of ms). A final implicit
/// `+Inf` bucket catches everything above.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 10_000_000,
];

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds (µs), ascending; one more bucket than bounds for
    /// `+Inf`.
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket latency histogram. Observations are recorded in
/// microseconds; p50/p90/p99 are derivable from the cumulative bucket
/// counts (see [`Histogram::quantile_us`]), so no per-observation
/// storage is needed and `observe` is three relaxed `fetch_add`s.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::with_bounds(LATENCY_BOUNDS_US)
    }
}

impl Histogram {
    /// A histogram over explicit bucket bounds (µs, ascending).
    pub fn with_bounds(bounds: &'static [u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        Histogram(Arc::new(HistogramCore {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, d: Duration) {
        self.observe_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = self.0.bounds.partition_point(|&b| b < us);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum_us.fetch_add(us, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, µs.
    pub fn sum_us(&self) -> u64 {
        self.0.sum_us.load(Ordering::Relaxed)
    }

    /// The quantile `q` (0 ≤ q ≤ 1), estimated from the bucket
    /// counts by linear interpolation inside the covering bucket —
    /// what a dashboard would compute from the exposition. Returns 0
    /// with no observations; observations past the last finite bound
    /// report that bound (the histogram cannot see further).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let snap = self.snapshot();
        snap.quantile_us(q)
    }

    /// A consistent-enough copy of the bucket counts (individual
    /// loads are relaxed; a scrape concurrent with observations may
    /// be mid-update by one observation, which monotone dashboards
    /// tolerate by design).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds,
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_us: self.sum_us(),
            count: self.count(),
        }
    }
}

/// Plain-data copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds (µs), ascending; `buckets` has one extra slot for
    /// `+Inf`.
    pub bounds: &'static [u64],
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: Vec<u64>,
    /// Sum of observations, µs.
    pub sum_us: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// As [`Histogram::quantile_us`], over this snapshot.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
            seen += n;
            if seen >= target {
                let Some(&upper) = self.bounds.get(i) else {
                    // +Inf bucket: the histogram can only report its
                    // last finite bound.
                    return *self.bounds.last().unwrap_or(&0);
                };
                // Linear interpolation: how far into this bucket the
                // target rank sits.
                let into = n - (seen - target);
                let frac = into as f64 / n as f64;
                return lower + ((upper - lower) as f64 * frac).round() as u64;
            }
        }
        *self.bounds.last().unwrap_or(&0)
    }
}

/// What a metric family is, for the `# TYPE` exposition line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn exposition(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Rendered label set (`{k="v",…}` or empty) → series.
    series: BTreeMap<String, Series>,
}

/// One sampled value from [`MetricsRegistry::samples`] — counters and
/// gauges only (histograms expose their buckets through `render`).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Family name, e.g. `evirel_serve_requests_total`.
    pub name: String,
    /// Rendered label set (`{verb="query"}`) or empty.
    pub labels: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Current value.
    pub value: u64,
}

type CollectorFn = Box<dyn Fn() + Send + Sync>;

/// A named collection of metrics plus the event log. See the crate
/// docs for the design; see [`MetricsRegistry::render`] for the
/// exposition format.
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
    /// Scrape-time refreshers: closures that pull a subsystem's own
    /// snapshot counters (buffer pool, plan cache, replication) into
    /// registry handles, keyed so re-registration replaces instead of
    /// stacking. Run by [`MetricsRegistry::refresh`].
    collectors: Mutex<BTreeMap<String, CollectorFn>>,
    events: EventLog,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry")
            .field("families", &families.len())
            .finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .enumerate()
            .all(|(i, b)| b == b'_' || b.is_ascii_alphabetic() || (i > 0 && b.is_ascii_digit()))
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            debug_assert!(valid_name(k), "label name {k:?}");
            format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""))
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

impl MetricsRegistry {
    /// An empty registry with a default-capacity event log.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            families: Mutex::new(BTreeMap::new()),
            collectors: Mutex::new(BTreeMap::new()),
            events: EventLog::default(),
        }
    }

    /// The structured event log (slow queries land here).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The counter `name{labels}`, registering it (with `help`) on
    /// first use. Re-calling with the same name and labels returns a
    /// handle to the same underlying atomic.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind — metric
    /// kinds are part of the contract with whatever scrapes them.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, labels, MetricKind::Counter) {
            Series::Counter(c) => c,
            _ => unreachable!("series() returns the requested kind"),
        }
    }

    /// The gauge `name{labels}`; see [`MetricsRegistry::counter`].
    ///
    /// # Panics
    /// As [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, labels, MetricKind::Gauge) {
            Series::Gauge(g) => g,
            _ => unreachable!("series() returns the requested kind"),
        }
    }

    /// The histogram `name{labels}` (default latency buckets); see
    /// [`MetricsRegistry::counter`].
    ///
    /// # Panics
    /// As [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, labels, MetricKind::Histogram) {
            Series::Histogram(h) => h,
            _ => unreachable!("series() returns the requested kind"),
        }
    }

    fn series(&self, name: &str, help: &str, labels: &[(&str, &str)], kind: MetricKind) -> Series {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let label_key = render_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            kind,
            help: help.to_owned(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered as {:?}, requested as {kind:?}",
            family.kind
        );
        family
            .series
            .entry(label_key)
            .or_insert_with(|| match kind {
                MetricKind::Counter => Series::Counter(Counter::default()),
                MetricKind::Gauge => Series::Gauge(Gauge::default()),
                MetricKind::Histogram => Series::Histogram(Histogram::default()),
            })
            .clone()
    }

    /// Register (or replace) the scrape-time collector `key`. The
    /// closure runs on every [`MetricsRegistry::refresh`] — it should
    /// read a subsystem snapshot and push the values into handles it
    /// captured. Keyed replacement keeps re-registration (a REPL
    /// `\open` swapping its pool) from stacking stale closures.
    pub fn register_collector(&self, key: &str, f: impl Fn() + Send + Sync + 'static) {
        let mut collectors = self.collectors.lock().unwrap_or_else(|e| e.into_inner());
        collectors.insert(key.to_owned(), Box::new(f));
    }

    /// Run every registered collector, refreshing mirrored values.
    /// Called by [`MetricsRegistry::render`]; callers reading raw
    /// values ([`MetricsRegistry::value`], [`MetricsRegistry::samples`])
    /// should call it first.
    pub fn refresh(&self) {
        let collectors = self.collectors.lock().unwrap_or_else(|e| e.into_inner());
        for f in collectors.values() {
            f();
        }
    }

    /// The current value of counter/gauge `name{labels}`, if
    /// registered. Does **not** refresh collectors.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let label_key = render_labels(labels);
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        match families.get(name)?.series.get(&label_key)? {
            Series::Counter(c) => Some(c.get()),
            Series::Gauge(g) => Some(g.get()),
            Series::Histogram(h) => Some(h.count()),
        }
    }

    /// Every counter and gauge series, sorted by (name, labels). Does
    /// **not** refresh collectors.
    pub fn samples(&self) -> Vec<Sample> {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, series) in &family.series {
                let value = match series {
                    Series::Counter(c) => c.get(),
                    Series::Gauge(g) => g.get(),
                    Series::Histogram(_) => continue,
                };
                out.push(Sample {
                    name: name.clone(),
                    labels: labels.clone(),
                    kind: family.kind,
                    value,
                });
            }
        }
        out
    }

    /// Prometheus-style text exposition: for every family a
    /// `# HELP` + `# TYPE` pair, then one line per series. Histograms
    /// render cumulative `_bucket{le="…"}` series (bounds in seconds,
    /// `+Inf` last) plus `_sum` (seconds) and `_count`. Collectors
    /// are refreshed first.
    pub fn render(&self) -> String {
        self.refresh();
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            if !family.help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", family.help));
            }
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.exposition()));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, &n) in snap.buckets.iter().enumerate() {
                            cumulative += n;
                            let le = match snap.bounds.get(i) {
                                Some(&b) => format!("{}", b as f64 / 1e6),
                                None => "+Inf".to_owned(),
                            };
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                merge_le(labels, &le)
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{labels} {}\n",
                            snap.sum_us as f64 / 1e6
                        ));
                        out.push_str(&format!("{name}_count{labels} {}\n", snap.count));
                    }
                }
            }
        }
        out
    }
}

/// Append `le="…"` to an already-rendered label set.
fn merge_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_exact_under_concurrency() {
        // Satellite: N threads × M increments == exact total — the
        // registry's "lock-cheap" claim is only worth having if no
        // increment is ever lost.
        let reg = MetricsRegistry::new();
        let c = reg.counter("evirel_test_total", "test", &[]);
        const THREADS: usize = 8;
        const INCS: u64 = 25_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..INCS {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * INCS);
        assert_eq!(
            reg.value("evirel_test_total", &[]),
            Some(THREADS as u64 * INCS)
        );
    }

    #[test]
    fn histogram_concurrent_observations_are_exact() {
        let h = Histogram::default();
        const THREADS: usize = 4;
        const OBS: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..OBS {
                        h.observe_us(t as u64 * 1000 + i % 100);
                    }
                });
            }
        });
        assert_eq!(h.count(), THREADS as u64 * OBS);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn same_handle_for_same_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("evirel_x_total", "x", &[("verb", "query")]);
        let b = reg.counter("evirel_x_total", "x", &[("verb", "query")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are different series.
        let c = reg.counter("evirel_x_total", "x", &[("verb", "merge")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("evirel_y_total", "y", &[]);
        let _ = reg.gauge("evirel_y_total", "y", &[]);
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::default();
        g.set(1);
        g.sub(5);
        assert_eq!(g.get(), 0);
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn quantiles_come_from_buckets() {
        let h = Histogram::default();
        // 100 observations at ~75 µs: all land in the (50, 100] bucket.
        for _ in 0..100 {
            h.observe_us(75);
        }
        let p50 = h.quantile_us(0.5);
        assert!((50..=100).contains(&p50), "{p50}");
        // A 1 s outlier drags p99 but not p50.
        h.observe_us(1_000_000);
        assert!(h.quantile_us(0.5) <= 100);
        assert!(h.quantile_us(1.0) >= 500_000);
        // Past the last finite bound, the histogram reports that bound.
        let h = Histogram::default();
        h.observe_us(u64::MAX);
        assert_eq!(h.quantile_us(0.5), *LATENCY_BOUNDS_US.last().unwrap());
        // Empty histogram: 0.
        assert_eq!(Histogram::default().quantile_us(0.99), 0);
    }

    #[test]
    fn collector_refresh_mirrors_external_counters() {
        let reg = MetricsRegistry::new();
        let mirrored = reg.counter("evirel_mirror_total", "m", &[]);
        let source = Arc::new(AtomicU64::new(7));
        {
            let mirrored = mirrored.clone();
            let source = Arc::clone(&source);
            reg.register_collector("test", move || {
                mirrored.set_at_least(source.load(Ordering::Relaxed));
            });
        }
        assert_eq!(mirrored.get(), 0);
        reg.refresh();
        assert_eq!(mirrored.get(), 7);
        source.store(9, Ordering::Relaxed);
        // Re-registering under the same key replaces, not stacks.
        {
            let mirrored = mirrored.clone();
            let source = Arc::clone(&source);
            reg.register_collector("test", move || {
                mirrored.set_at_least(source.load(Ordering::Relaxed));
            });
        }
        let _ = reg.render(); // render refreshes
        assert_eq!(mirrored.get(), 9);
        // set_at_least never regresses.
        source.store(3, Ordering::Relaxed);
        reg.refresh();
        assert_eq!(mirrored.get(), 9);
    }

    #[test]
    fn exposition_has_type_lines_and_escapes_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("evirel_a_total", "as", &[("verb", "que\"ry")])
            .inc();
        reg.gauge("evirel_b_depth", "bs", &[]).set(4);
        reg.histogram("evirel_c_seconds", "cs", &[]).observe_us(80);
        let text = reg.render();
        assert!(text.contains("# TYPE evirel_a_total counter"), "{text}");
        assert!(
            text.contains("evirel_a_total{verb=\"que\\\"ry\"} 1"),
            "{text}"
        );
        assert!(text.contains("# TYPE evirel_b_depth gauge"), "{text}");
        assert!(text.contains("evirel_b_depth 4"), "{text}");
        assert!(text.contains("# TYPE evirel_c_seconds histogram"), "{text}");
        assert!(
            text.contains("evirel_c_seconds_bucket{le=\"0.0001\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("evirel_c_seconds_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("evirel_c_seconds_count 1"), "{text}");
    }

    #[test]
    fn histogram_buckets_merge_labels_with_le() {
        let reg = MetricsRegistry::new();
        reg.histogram("evirel_d_seconds", "ds", &[("stage", "execute")])
            .observe_us(80);
        let text = reg.render();
        assert!(
            text.contains("evirel_d_seconds_bucket{stage=\"execute\",le=\"0.0001\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("evirel_serve_requests_total"));
        assert!(!valid_name(""));
        assert!(!valid_name("9lead"));
        assert!(!valid_name("has space"));
        assert!(!valid_name("has-dash"));
    }
}
