//! Observability for the evirel engine: metrics, events, spans.
//!
//! Everything here is std-only (the workspace builds without a
//! registry — see ROADMAP "Registry-free builds are a constraint")
//! and cheap enough to stay on in production:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket latency [`Histogram`]s. Handles are `Arc`'d atomics:
//!   the hot path is one relaxed `fetch_add`, no lock, no allocation.
//!   The registry's map lock is touched only at registration (once
//!   per call site) and at scrape time. [`MetricsRegistry::render`]
//!   emits Prometheus-style text exposition (`# TYPE` lines, stable
//!   names, machine-parseable) — what the `METRICS` protocol verb and
//!   the eql shell's `\metrics` command serve.
//! * [`EventLog`] — a bounded ring buffer of structured [`Event`]s
//!   (the slow-query log lands here): newest N survive, older events
//!   are counted as dropped, never block anything.
//! * [`Trace`] / [`Span`] — per-request stage timing for the query
//!   lifecycle (parse → plan-cache lookup → lower/rewrite → execute);
//!   a [`Trace`] is a plain `Vec` owned by one request, so spans cost
//!   two `Instant::now` calls and nothing shared.
//!
//! Instrumentation must never change what a query produces — the same
//! rule the statistics layer follows ("statistics may change how a
//! plan executes, never what it produces"). Nothing in this crate is
//! consulted by planning or execution; it only observes.

#![deny(missing_docs)]

pub mod event;
pub mod metrics;
pub mod span;

pub use event::{Event, EventLog};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricsRegistry, Sample,
    LATENCY_BOUNDS_US,
};
pub use span::{Span, Trace};

use std::sync::{Arc, OnceLock};

/// The process-wide default registry. Components with no explicit
/// registry plumbed in (the eql shell before `\open`, library tests)
/// land their metrics here; `evirel-serve` creates one registry per
/// server instance instead, so in-process test servers do not bleed
/// counters into each other — in production (one server per process)
/// the two designs coincide.
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}
