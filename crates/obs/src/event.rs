//! Bounded structured event log.
//!
//! A ring buffer of [`Event`]s: the newest `capacity` survive, older
//! ones are dropped (and counted). Recording is one short mutex hold
//! on a cold path — events are for exceptional things (slow queries,
//! promotions), not per-tuple traffic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One structured event: a kind plus ordered key/value fields,
/// rendered as a logfmt-style line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Event kind, e.g. `slow_query`.
    pub kind: &'static str,
    /// Ordered key/value fields.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// A new event of `kind`, stamped now.
    pub fn new(kind: &'static str) -> Event {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        Event {
            unix_ms,
            kind,
            fields: Vec::new(),
        }
    }

    /// Append a field (builder style).
    pub fn field(mut self, key: &str, value: impl ToString) -> Event {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// Render as one logfmt-style line:
    /// `event=slow_query unix_ms=… key="value" …`. Values are quoted
    /// only when they contain spaces, quotes, or `=`.
    pub fn render(&self) -> String {
        let mut out = format!("event={} unix_ms={}", self.kind, self.unix_ms);
        for (k, v) in &self.fields {
            if v.is_empty() || v.contains([' ', '"', '=', '\n']) {
                out.push_str(&format!(
                    " {k}=\"{}\"",
                    v.replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', "\\n")
                ));
            } else {
                out.push_str(&format!(" {k}={v}"));
            }
        }
        out
    }
}

/// Default ring capacity; enough to hold the recent history of a
/// misbehaving workload without unbounded growth.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// A bounded ring buffer of [`Event`]s.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// A log holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest if full.
    pub fn record(&self, event: Event) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().cloned().collect()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events have been evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_dropped() {
        // Satellite: wraparound semantics — newest N survive, the
        // dropped counter accounts for every eviction.
        let log = EventLog::with_capacity(4);
        for i in 0..10 {
            log.record(Event::new("tick").field("i", i));
        }
        assert_eq!(log.dropped(), 6);
        let events = log.snapshot();
        assert_eq!(events.len(), 4);
        let is: Vec<String> = events.iter().map(|e| e.fields[0].1.clone()).collect();
        assert_eq!(is, vec!["6", "7", "8", "9"]);
    }

    #[test]
    fn render_is_logfmt_and_quotes_when_needed() {
        let mut e = Event::new("slow_query")
            .field("eql", "SELECT * FROM r")
            .field("generation", 3)
            .field("total_us", 1234);
        e.unix_ms = 1_700_000_000_000;
        let line = e.render();
        assert_eq!(
            line,
            "event=slow_query unix_ms=1700000000000 eql=\"SELECT * FROM r\" generation=3 total_us=1234"
        );
        let mut e = Event::new("x").field("v", "a\"b\nc");
        e.unix_ms = 0;
        assert_eq!(e.render(), "event=x unix_ms=0 v=\"a\\\"b\\nc\"");
    }

    #[test]
    fn capacity_is_at_least_one() {
        let log = EventLog::with_capacity(0);
        log.record(Event::new("a"));
        log.record(Event::new("b"));
        assert_eq!(log.snapshot().len(), 1);
        assert_eq!(log.snapshot()[0].kind, "b");
    }
}
