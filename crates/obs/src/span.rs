//! Per-request stage timing.
//!
//! A [`Trace`] is a plain `Vec` of named stage durations owned by one
//! request — no thread-locals, no global state, nothing shared. A
//! [`Span`] is a drop-guard that records its elapsed time into the
//! trace when it goes out of scope; [`Trace::time`] is the closure
//! form. Stage names are `&'static str` so a trace never allocates
//! per stage beyond the `Vec` slot.
//!
//! The query path records `parse`, `cache_lookup`, `lower_rewrite`,
//! and `execute` stages; the serve layer adds `recv`. Traces feed the
//! slow-query log and the per-stage latency histograms.

use std::time::{Duration, Instant};

/// Named stage durations for one request.
#[derive(Debug, Clone)]
pub struct Trace {
    started: Instant,
    stages: Vec<(&'static str, Duration)>,
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new()
    }
}

impl Trace {
    /// An empty trace; total time counts from this call.
    pub fn new() -> Trace {
        Trace {
            started: Instant::now(),
            stages: Vec::new(),
        }
    }

    /// Record a stage with an explicit duration.
    pub fn record(&mut self, stage: &'static str, elapsed: Duration) {
        self.stages.push((stage, elapsed));
    }

    /// Start a drop-guard span for `stage`; it records into this
    /// trace when dropped.
    pub fn span<'t>(&'t mut self, stage: &'static str) -> Span<'t> {
        Span {
            trace: self,
            stage,
            started: Instant::now(),
        }
    }

    /// Run `f`, recording its elapsed time as `stage`.
    pub fn time<T>(&mut self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let out = f();
        self.record(stage, started.elapsed());
        out
    }

    /// The recorded stages, in recording order.
    pub fn stages(&self) -> &[(&'static str, Duration)] {
        &self.stages
    }

    /// Duration of the first stage named `stage`, in microseconds.
    pub fn stage_us(&self, stage: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|(name, _)| *name == stage)
            .map(|(_, d)| d.as_micros().min(u128::from(u64::MAX)) as u64)
    }

    /// Wall-clock time since the trace was created.
    pub fn total(&self) -> Duration {
        self.started.elapsed()
    }

    /// The stages as `stage=<name>_us=<µs>` pairs for event fields,
    /// e.g. `[("parse_us", "12"), …]`.
    pub fn stage_fields(&self) -> Vec<(String, String)> {
        self.stages
            .iter()
            .map(|(name, d)| {
                (
                    format!("{name}_us"),
                    (d.as_micros().min(u128::from(u64::MAX)) as u64).to_string(),
                )
            })
            .collect()
    }
}

/// Drop-guard recording one stage's elapsed time into a [`Trace`].
#[derive(Debug)]
pub struct Span<'t> {
    trace: &'t mut Trace,
    stage: &'static str,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        self.trace.record(self.stage, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let mut trace = Trace::new();
        {
            let _s = trace.span("parse");
        }
        trace.time("execute", || std::thread::sleep(Duration::from_millis(2)));
        let names: Vec<&str> = trace.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["parse", "execute"]);
        assert!(trace.stage_us("execute").unwrap() >= 2_000);
        assert!(trace.stage_us("missing").is_none());
        assert!(trace.total() >= Duration::from_millis(2));
    }

    #[test]
    fn stage_fields_render_microseconds() {
        let mut trace = Trace::new();
        trace.record("parse", Duration::from_micros(42));
        let fields = trace.stage_fields();
        assert_eq!(fields, vec![("parse_us".to_owned(), "42".to_owned())]);
    }
}
