//! Storage-engine benchmarks: the cost of paging.
//!
//! Three comparisons at 10^4–10^6 combined tuples (smoke runs use a
//! small size):
//!
//! * **scan**: in-memory `ScanOp` vs `SpillScanOp` over a binary
//!   segment, with an ample pool (decode cost) and with a tiny
//!   ~4-page pool (decode + eviction/refill cost);
//! * **merge**: the ∪̃ plan with an in-memory build side vs the build
//!   side force-spilled to a temp segment (`spill_threshold_bytes =
//!   0`), probes paging through a bounded pool;
//! * **write**: segment serialization throughput (tuples → pages on
//!   disk).
//!
//! Every variant's output is asserted identical to the in-memory
//! result before anything is timed — paging must never change a bit.
//!
//! Reference numbers live in `crates/bench/BASELINES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_algebra::union::UnionOptions;
use evirel_algebra::ConflictPolicy;
use evirel_plan::{execute_plan, scan, Bindings, BufferPool, ExecContext, StoredRelation};
use evirel_relation::ExtendedRelation;
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use std::hint::black_box;
use std::sync::Arc;

const PAGE: usize = 8192;

fn measured() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn pair(per_source: usize) -> (ExtendedRelation, ExtendedRelation) {
    generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples: per_source,
            ..Default::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.3,
    })
    .expect("generator config is valid")
}

fn options() -> UnionOptions {
    UnionOptions {
        on_total_conflict: ConflictPolicy::Vacuous,
        ..Default::default()
    }
}

fn store(rel: &ExtendedRelation, pool: &Arc<BufferPool>) -> Arc<StoredRelation> {
    let path = evirel_store::spill_path("bench");
    evirel_store::write_segment(rel, &path, PAGE).expect("segment writes");
    let stored = StoredRelation::open(&path, Arc::clone(pool)).expect("segment opens");
    std::fs::remove_file(&path).ok();
    Arc::new(stored)
}

fn run_scan(bindings: &Bindings) -> ExtendedRelation {
    let plan = scan("r").build();
    let mut ctx = ExecContext::with_options(options());
    ctx.parallelism = 1;
    execute_plan(&plan, bindings, &mut ctx).expect("scan executes")
}

fn bench_storage(c: &mut Criterion) {
    let sizes: &[usize] = if measured() {
        &[5_000, 50_000, 500_000]
    } else {
        &[1_000]
    };

    // ------------------------------------------------------------ scan
    let mut group = c.benchmark_group("storage/scan");
    for &per_source in sizes {
        let (rel, _) = pair(per_source);
        let tuples = rel.len();
        let ample = Arc::new(BufferPool::new(1 << 30));
        let tiny = Arc::new(BufferPool::new(4 * PAGE));
        let stored_ample = store(&rel, &ample);
        let stored_tiny = store(&rel, &tiny);

        let mut mem_bindings = Bindings::new();
        mem_bindings.bind("r", rel);
        let mut ample_bindings = Bindings::new();
        ample_bindings.bind_stored("r", Arc::clone(&stored_ample));
        let mut tiny_bindings = Bindings::new();
        tiny_bindings.bind_stored("r", Arc::clone(&stored_tiny));

        // Paging must never change a bit.
        let mem = run_scan(&mem_bindings);
        for b in [&ample_bindings, &tiny_bindings] {
            let out = run_scan(b);
            assert_eq!(mem.len(), out.len());
            for (m, o) in mem.iter().zip(out.iter()) {
                assert_eq!(m.values(), o.values());
            }
        }
        assert!(
            stored_tiny.pool().stats().evictions > 0,
            "tiny pool must evict during the sanity scan"
        );

        group.throughput(Throughput::Elements(tuples as u64));
        group.bench_with_input(
            BenchmarkId::new("in-memory", tuples),
            &mem_bindings,
            |bench, b| bench.iter(|| black_box(run_scan(b))),
        );
        group.bench_with_input(
            BenchmarkId::new("stored-warm", tuples),
            &ample_bindings,
            |bench, b| bench.iter(|| black_box(run_scan(b))),
        );
        group.bench_with_input(
            BenchmarkId::new("stored-evicting", tuples),
            &tiny_bindings,
            |bench, b| bench.iter(|| black_box(run_scan(b))),
        );
    }
    group.finish();

    // ----------------------------------------------------------- merge
    let mut group = c.benchmark_group("storage/merge");
    for &per_source in sizes {
        let (a, b) = pair(per_source);
        let combined = a.len() + b.len();
        let mut bindings = Bindings::new();
        bindings.bind("ga", a).bind("gb", b);
        let plan = scan("ga").union(scan("gb")).build();

        let run_merge = |spill: bool| -> (ExtendedRelation, bool) {
            let mut ctx = ExecContext::with_options(options());
            ctx.parallelism = 1;
            if spill {
                ctx.spill_threshold_bytes = 0;
                ctx.pool = Arc::new(BufferPool::new(8 * PAGE));
            } else {
                ctx.spill_threshold_bytes = usize::MAX;
            }
            let rel = execute_plan(&plan, &bindings, &mut ctx).expect("merge executes");
            (rel, ctx.pool.stats().misses > 0)
        };
        let (mem, _) = run_merge(false);
        let (spilled, paged) = run_merge(true);
        assert!(paged, "spilled merge must page through the pool");
        assert_eq!(mem.len(), spilled.len());
        for (m, s) in mem.iter().zip(spilled.iter()) {
            assert_eq!(m.values(), s.values());
        }

        group.throughput(Throughput::Elements(combined as u64));
        group.bench_with_input(
            BenchmarkId::new("in-memory-build", combined),
            &(),
            |bench, ()| bench.iter(|| black_box(run_merge(false))),
        );
        group.bench_with_input(
            BenchmarkId::new("spilled-build", combined),
            &(),
            |bench, ()| bench.iter(|| black_box(run_merge(true))),
        );
    }
    group.finish();

    // ----------------------------------------------------------- write
    let mut group = c.benchmark_group("storage/write-segment");
    for &per_source in sizes {
        let (rel, _) = pair(per_source);
        group.throughput(Throughput::Elements(rel.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(rel.len()),
            &rel,
            |bench, rel| {
                bench.iter(|| {
                    let path = evirel_store::spill_path("bench-write");
                    evirel_store::write_segment(black_box(rel), &path, PAGE).unwrap();
                    std::fs::remove_file(&path).ok();
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(5)
        .measurement_time(std::time::Duration::from_millis(2000))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_storage
}
criterion_main!(benches);
