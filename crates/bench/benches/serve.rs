//! Query-service benchmark: request round-trips through a live
//! in-process `evirel-serve` instance.
//!
//! Three measurements:
//!
//! * `serve/roundtrip` — single-connection QUERY latency, split by
//!   cold (first execution, full lowering/rewrite) vs warm (prepared
//!   plan served from the generation-keyed cache). The gap is the
//!   plan cache's observable win.
//! * `serve/load` — wall-clock for a full mixed read/merge load-driver
//!   run (barrier-synchronized concurrent sessions, ~10% MERGE
//!   writes), at increasing session counts.
//! * `serve/replication` — durable MERGE round-trip with zero vs one
//!   attached `FOLLOW` standby (the asynchronous sender must stay off
//!   the write path), and the merge-acknowledged-to-visible-on-standby
//!   replication lag.
//!
//! The smoke pass (`cargo test --benches`, CI) asserts the service
//! invariants before anything is timed: zero protocol errors, zero
//! server errors, zero panics, cache hits observed, merges applied.
//!
//! Reference numbers live in `crates/bench/BASELINES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_query::{Catalog, DurableCatalog};
use evirel_serve::protocol::{read_frame, write_frame};
use evirel_serve::{start, start_with_durability, FollowConfig, ServeConfig, ServerHandle};
use evirel_workload::driver::{run_load, LoadConfig};
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use evirel_workload::{restaurant_db_a, restaurant_db_b};
use std::hint::black_box;
use std::net::TcpStream;

fn measured() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn server() -> ServerHandle {
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    let (ga, gb) = generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples: 256,
            seed: 97,
            ..GeneratorConfig::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.25,
    })
    .expect("generator config is valid");
    catalog.register("ga", ga);
    catalog.register("gb", gb);
    start(catalog, ServeConfig::default()).expect("server starts")
}

fn roundtrip(conn: &mut TcpStream, payload: &str) -> String {
    write_frame(conn, payload).expect("request writes");
    read_frame(conn)
        .expect("response reads")
        .expect("server replied")
}

fn bench_roundtrip(c: &mut Criterion) {
    let handle = server();
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    conn.set_nodelay(true).expect("nodelay");
    let query = "QUERY\nSELECT * FROM ra UNION rb WITH SN > 0.5";

    // Sanity before timing: the query succeeds, and the second
    // execution is served from the prepared-plan cache.
    let cold = roundtrip(&mut conn, query);
    assert!(cold.starts_with("OK"), "{cold}");
    assert!(cold.contains("cached=0"), "{cold}");
    let warm = roundtrip(&mut conn, query);
    assert!(warm.contains("cached=1"), "cache must engage: {warm}");

    let mut group = c.benchmark_group("serve/roundtrip");
    group.bench_function("warm-cached", |b| {
        b.iter(|| black_box(roundtrip(&mut conn, query)))
    });
    group.bench_function("ping", |b| {
        b.iter(|| black_box(roundtrip(&mut conn, "PING")))
    });
    group.finish();

    drop(conn);
    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.errors, 0);
}

fn bench_load(c: &mut Criterion) {
    let sessions: &[usize] = if measured() { &[16, 64, 256] } else { &[16] };
    let mut group = c.benchmark_group("serve/load");
    group.sample_size(10);
    for &n in sessions {
        let handle = server();
        let config = LoadConfig {
            addr: handle.addr().to_string(),
            sessions: n,
            ops_per_session: 4,
            merge_every: 10,
            ..LoadConfig::default()
        };
        // Sanity before timing: one full run must be spotless.
        let report = run_load(&config);
        assert_eq!(report.protocol_errors, 0, "{report:?}");
        assert_eq!(report.server_errors, 0, "{report:?}");
        assert_eq!(report.sessions_completed, n as u64, "{report:?}");
        assert!(report.merges_ok > 0, "{report:?}");

        group.throughput(Throughput::Elements((n * 4) as u64));
        group.bench_with_input(BenchmarkId::new("sessions", n), &config, |b, config| {
            b.iter(|| black_box(run_load(config)))
        });

        handle.shutdown();
        let stats = handle.join();
        assert_eq!(stats.panics, 0, "{stats:?}");
    }
    group.finish();
}

fn durable_server(dir: &std::path::Path, follow: Option<String>) -> ServerHandle {
    let (durable, mut catalog) = DurableCatalog::open(dir).expect("durable dir opens");
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    let config = ServeConfig {
        follow: follow.map(|addr| FollowConfig {
            initial_backoff: std::time::Duration::from_millis(10),
            max_backoff: std::time::Duration::from_millis(100),
            ..FollowConfig::new(addr)
        }),
        ..ServeConfig::default()
    };
    start_with_durability(catalog, config, Some(durable)).expect("server starts")
}

fn merge_generation(resp: &str) -> u64 {
    resp.split_whitespace()
        .find_map(|t| t.strip_prefix("generation="))
        .and_then(|v| v.parse().ok())
        .expect("merge response carries its generation")
}

/// Replication overhead: durable MERGE round-trip latency with no
/// follower vs with one attached `FOLLOW` subscriber (the asynchronous
/// sender must not sit on the write path), plus the end-to-end
/// replication lag — merge acknowledged on the primary until the same
/// generation is published on the standby.
fn bench_replication(c: &mut Criterion) {
    let base = std::env::temp_dir().join(format!("evirel-bench-repl-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let primary = durable_server(&base.join("primary"), None);
    let mut conn = TcpStream::connect(primary.addr()).expect("connects");
    conn.set_nodelay(true).expect("nodelay");
    let merge = "MERGE bm\nSELECT * FROM ra UNION rb";
    let first = roundtrip(&mut conn, merge);
    assert!(first.starts_with("OK"), "{first}");

    let mut group = c.benchmark_group("serve/replication");
    group.sample_size(10);
    group.bench_function("merge/no-follower", |b| {
        b.iter(|| black_box(roundtrip(&mut conn, merge)))
    });

    let follower = durable_server(&base.join("follower"), Some(primary.addr().to_string()));
    // Sanity before timing: the follower converges and enforces its
    // readonly gate.
    let target = primary.catalog().generation();
    while follower.catalog().generation() < target {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut fconn = TcpStream::connect(follower.addr()).expect("connects");
    fconn.set_nodelay(true).expect("nodelay");
    let denied = roundtrip(&mut fconn, merge);
    assert!(denied.starts_with("ERR readonly"), "{denied}");

    group.bench_function("merge/one-follower", |b| {
        b.iter(|| black_box(roundtrip(&mut conn, merge)))
    });
    group.bench_function("merge/visible-on-follower", |b| {
        b.iter(|| {
            let resp = roundtrip(&mut conn, merge);
            let generation = merge_generation(&resp);
            while follower.catalog().generation() < generation {
                std::thread::yield_now();
            }
        })
    });
    group.finish();

    // The replicated history matches before anything shuts down.
    let target = primary.catalog().generation();
    while follower.catalog().generation() < target {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(follower.replication().records_applied > 0);
    drop(fconn);
    follower.shutdown();
    let fstats = follower.join();
    assert_eq!(fstats.panics, 0, "{fstats:?}");
    drop(conn);
    primary.shutdown();
    let stats = primary.join();
    assert_eq!(stats.panics, 0, "{stats:?}");
    std::fs::remove_dir_all(&base).ok();
}

criterion_group!(benches, bench_roundtrip, bench_load, bench_replication);
criterion_main!(benches);
