//! Extended product and join benchmarks.
//!
//! The paper defines ⋈̃ as ×̃ followed by σ̃, which is quadratic; the
//! benches document that cost shape and the effect of threshold
//! pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_algebra::{join, product, rename, Operand, Predicate, ThetaOp, Threshold};
use evirel_workload::generator::{generate, GeneratorConfig};
use std::hint::black_box;

fn pair(
    tuples: usize,
) -> (
    evirel_relation::ExtendedRelation,
    evirel_relation::ExtendedRelation,
) {
    let base = GeneratorConfig {
        tuples,
        evidential_attrs: 1,
        ..Default::default()
    };
    let a = generate("JA", &base).expect("valid config");
    let b = generate(
        "JB",
        &GeneratorConfig {
            seed: base.seed + 1,
            ..base
        },
    )
    .expect("valid config");
    // Disambiguate attribute names for the product.
    let b = rename::rename_attribute(&b, "k", "k2").expect("rename");
    let b = rename::rename_attribute(&b, "e0", "f0").expect("rename");
    (a, b)
}

fn bench_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("product/size");
    for tuples in [30usize, 100, 300] {
        let (a, b) = pair(tuples);
        group.throughput(Throughput::Elements((tuples * tuples) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tuples), &tuples, |bench, _| {
            bench.iter(|| product(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_equijoin(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/equijoin");
    for tuples in [30usize, 100, 300] {
        let (a, b) = pair(tuples);
        let pred = Predicate::theta(Operand::attr("k"), ThetaOp::Eq, Operand::attr("k2"));
        group.throughput(Throughput::Elements((tuples * tuples) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tuples), &tuples, |bench, _| {
            bench.iter(|| join(black_box(&a), black_box(&b), &pred, &Threshold::POSITIVE));
        });
    }
    group.finish();
}

fn bench_evidential_join_condition(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/evidential-condition");
    let (a, b) = pair(100);
    let crisp = Predicate::theta(Operand::attr("k"), ThetaOp::Eq, Operand::attr("k2"));
    let fuzzy = crisp.clone().and(Predicate::theta(
        Operand::attr("e0"),
        ThetaOp::Le,
        Operand::attr("f0"),
    ));
    group.bench_function("crisp-key-only", |bench| {
        bench.iter(|| join(black_box(&a), black_box(&b), &crisp, &Threshold::POSITIVE))
    });
    group.bench_function("plus-evidential-theta", |bench| {
        bench.iter(|| join(black_box(&a), black_box(&b), &fuzzy, &Threshold::POSITIVE))
    });
    group.finish();
}

fn bench_threshold_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/threshold");
    let (a, b) = pair(100);
    let pred = Predicate::theta(Operand::attr("e0"), ThetaOp::Le, Operand::attr("f0"));
    for (name, threshold) in [
        ("sn>0", Threshold::POSITIVE),
        ("sn>=0.5", Threshold::SnAtLeast(0.5)),
        ("definite", Threshold::Definite),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &threshold,
            |bench, threshold| {
                bench.iter(|| join(black_box(&a), black_box(&b), &pred, threshold));
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_product, bench_equijoin, bench_evidential_join_condition, bench_threshold_pruning
}
criterion_main!(benches);
