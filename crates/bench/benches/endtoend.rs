//! End-to-end benchmarks: the full Figure 1 pipeline, query
//! processing over the integrated catalog, paper-table regeneration,
//! and storage round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_integrate::Integrator;
use evirel_query::{execute, Catalog};
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use evirel_workload::{restaurant_db_a, restaurant_db_b};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("endtoend/pipeline");
    for tuples in [100usize, 1000, 5000] {
        let (a, b) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples,
                ..Default::default()
            },
            key_overlap: 0.5,
            conflict_bias: 0.0,
        })
        .expect("valid config");
        let integrator = Integrator::new(std::sync::Arc::clone(a.schema()));
        group.throughput(Throughput::Elements(tuples as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tuples), &tuples, |bench, _| {
            bench.iter(|| integrator.run(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("endtoend/query");
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    for (name, query) in [
        (
            "table2-select",
            "SELECT * FROM ra WHERE speciality IS {si} WITH SN > 0",
        ),
        (
            "table3-compound",
            "SELECT * FROM ra WHERE speciality IS {mu} AND rating IS {ex} WITH SN > 0",
        ),
        ("table4-union", "SELECT * FROM ra UNION rb"),
        (
            "table5-project",
            "SELECT rname, phone, speciality, rating FROM ra",
        ),
        (
            "union-select-project",
            "SELECT rname, rating FROM ra UNION rb WHERE rating >= 'gd' WITH SN >= 0.5",
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &query, |bench, q| {
            bench.iter(|| execute(black_box(&catalog), q));
        });
    }
    group.finish();
}

fn bench_query_parsing(c: &mut Criterion) {
    let mut group = c.benchmark_group("endtoend/parse");
    let query = "SELECT rname, phone FROM ra UNION rb \
                 WHERE speciality IS {si, hu} AND rating >= 'gd' OR NOT rating IS {avg} \
                 WITH SN >= 0.25;";
    group.bench_function("parse-complex", |bench| {
        bench.iter(|| evirel_query::parse(black_box(query)));
    });
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("endtoend/storage");
    let rel = evirel_workload::generator::generate(
        "S",
        &GeneratorConfig {
            tuples: 2000,
            ..Default::default()
        },
    )
    .expect("valid config");
    let text = evirel_storage::write_relation(&rel);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("write-2k", |bench| {
        bench.iter(|| evirel_storage::write_relation(black_box(&rel)));
    });
    group.bench_function("read-2k", |bench| {
        bench.iter(|| evirel_storage::read_relation(black_box(&text)).expect("round trip"));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pipeline, bench_queries, bench_query_parsing, bench_storage
}
criterion_main!(benches);
