//! Planner benchmark: cost-based join ordering vs the left-deep
//! rule-based order on a skewed 3-way ⋈̃ chain.
//!
//! The chain is `A ⋈ B ON A.x = B.x ⋈ C ON B.y = C.y` with the skew
//! arranged so the orders diverge hard: `x` is drawn from a 4-value
//! domain on both big relations (A⋈B is a near-quadratic blowup),
//! while `y` is unique per B tuple and C is a handful of tuples — so
//! exploring from C touches a few hundred combinations where the
//! left-deep order materializes hundreds of thousands of intermediate
//! pairs. With statistics on, the chain operator starts from C
//! (cheapest, connected); under `EVIREL_NO_STATS=1` the same plan
//! lowers left-deep. The acceptance bar is cost-ordered ≥ 2× faster
//! at the measured sizes; results are asserted **bit-identical**
//! (tuples, insertion order, membership bits) before timing, at 1 and
//! 4 threads.
//!
//! Reference numbers live in `crates/bench/BASELINES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_algebra::{Operand, Predicate, ThetaOp, Threshold};
use evirel_plan::{execute_plan, scan, Bindings, ExecContext, LogicalPlan, NO_STATS_ENV};
use evirel_relation::{AttrDomain, ExtendedRelation, RelationBuilder, Schema, ValueKind};
use std::hint::black_box;
use std::sync::Arc;

fn measured() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// One chain input. Attribute names carry the relation's prefix
/// (`ax`, `bx`, `by`, `cy`, …) so no qualification ambiguity arises
/// in the 3-way product schema; memberships stay uncertain so the
/// chain multiplies support pairs end to end.
fn relation(
    name: &str,
    tuples: usize,
    attrs: [&str; 2],
    first_of: impl Fn(u64) -> i64,
    second_of: impl Fn(u64) -> i64,
) -> ExtendedRelation {
    let domain = Arc::new(AttrDomain::categorical("d", ["p", "q", "r"]).unwrap());
    let schema = Arc::new(
        Schema::builder(name)
            .key_str(format!("k{name}"))
            .definite(attrs[0], ValueKind::Int)
            .definite(attrs[1], ValueKind::Int)
            .evidential("d", domain)
            .build()
            .unwrap(),
    );
    let mut builder = RelationBuilder::new(schema);
    for i in 0..tuples as u64 {
        let label = ["p", "q", "r"][(i % 3) as usize];
        let weight = 0.4 + 0.05 * (i % 11) as f64;
        builder = builder
            .tuple(|t| {
                t.set_str(&format!("k{name}"), format!("{name}-{i}"))
                    .set_int(attrs[0], first_of(i))
                    .set_int(attrs[1], second_of(i))
                    .set_evidence_with_omega("d", [(&[label][..], weight)], 1.0 - weight)
                    .membership_pair(0.5 + 0.05 * (i % 9) as f64, 1.0)
            })
            .unwrap();
    }
    builder.build()
}

/// The skewed inputs: A and B share a dense 4-value `ax`/`bx`; B's
/// `by` is unique per tuple; C is `c_tuples` rows whose `cy` hits
/// distinct B tuples.
fn bindings(big: usize, c_tuples: usize) -> Bindings {
    let a = relation("A", big, ["ax", "az"], |i| (i % 4) as i64, |i| i as i64);
    let b = relation("B", big, ["bx", "by"], |i| (i * 7 % 4) as i64, |i| i as i64);
    let c = relation(
        "C",
        c_tuples,
        ["cy", "cz"],
        // Spread C's matches across B so no single x-class dominates.
        |i| (i * 37 % 512) as i64,
        |_| 0,
    );
    let mut bindings = Bindings::new();
    bindings.bind("a", a).bind("b", b).bind("c", c);
    bindings
}

fn chain_plan() -> LogicalPlan {
    scan("a")
        .join_where(
            scan("b"),
            Predicate::theta(Operand::attr("ax"), ThetaOp::Eq, Operand::attr("bx")),
            Threshold::POSITIVE,
        )
        .join_where(
            scan("c"),
            Predicate::theta(Operand::attr("by"), ThetaOp::Eq, Operand::attr("cy")),
            Threshold::POSITIVE,
        )
        .build()
}

fn run(bindings: &Bindings, plan: &LogicalPlan, threads: usize) -> ExtendedRelation {
    let mut ctx = ExecContext::with_parallelism(threads);
    execute_plan(plan, bindings, &mut ctx).expect("plan executes")
}

/// Run with statistics force-disabled — the left-deep rule-based
/// order, exactly what the CI `EVIREL_NO_STATS=1` mode executes.
fn run_no_stats(bindings: &Bindings, plan: &LogicalPlan, threads: usize) -> ExtendedRelation {
    std::env::set_var(NO_STATS_ENV, "1");
    let out = run(bindings, plan, threads);
    std::env::remove_var(NO_STATS_ENV);
    out
}

fn assert_identical(a: &ExtendedRelation, b: &ExtendedRelation) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.values(), y.values());
        assert_eq!(x.membership().sn().to_bits(), y.membership().sn().to_bits());
        assert_eq!(x.membership().sp().to_bits(), y.membership().sp().to_bits());
    }
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/chain3");
    // Smoke runs (cargo test --benches, CI) use a small size; full
    // measurement sweeps the sizes BASELINES.md reports.
    let sizes: &[usize] = if measured() { &[500, 1_500] } else { &[160] };
    for &big in sizes {
        let bindings = bindings(big, 6);
        let plan = chain_plan();
        // Sanity before timing: both orders must agree bit for bit at
        // 1 and 4 threads (the acceptance identity), and the output
        // must be non-trivial.
        let cost_ordered = run(&bindings, &plan, 1);
        assert!(!cost_ordered.is_empty(), "skew produced an empty join");
        assert_identical(&cost_ordered, &run_no_stats(&bindings, &plan, 1));
        assert_identical(&cost_ordered, &run(&bindings, &plan, 4));
        assert_identical(&cost_ordered, &run_no_stats(&bindings, &plan, 4));

        group.throughput(Throughput::Elements(2 * big as u64 + 6));
        group.bench_with_input(BenchmarkId::new("cost-ordered", big), &big, |bench, _| {
            bench.iter(|| run(black_box(&bindings), black_box(&plan), 1))
        });
        group.bench_with_input(BenchmarkId::new("left-deep", big), &big, |bench, _| {
            bench.iter(|| run_no_stats(black_box(&bindings), black_box(&plan), 1));
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(3000))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_planner
}
criterion_main!(benches);
