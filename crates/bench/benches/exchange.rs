//! Exchange-operator benchmark: the ∪̃ merge pipeline executed
//! through `evirel-plan` at 1/2/4/8 worker threads over 10^4–10^6
//! merged input tuples (sizes are *combined* input, half per
//! source — matching the acceptance sweep in the plan layer's
//! ROADMAP item).
//!
//! Thread count 1 is the plain streaming `MergeOp` (no exchange is
//! built); 2/4/8 wrap the same plan in an `ExchangeOp` over hash
//! shards. On a multi-core machine the 4-thread row should beat the
//! 1-thread row ≥ 2× at 10^5; on a single-vCPU container the sweep
//! instead measures partition/re-merge overhead (see BASELINES.md).
//!
//! Reference numbers live in `crates/bench/BASELINES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_algebra::union::UnionOptions;
use evirel_algebra::ConflictPolicy;
use evirel_plan::{execute_plan, scan, Bindings, ExecContext, LogicalPlan};
use evirel_relation::ExtendedRelation;
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use std::hint::black_box;

fn measured() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn pair(per_source: usize) -> (ExtendedRelation, ExtendedRelation) {
    generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples: per_source,
            ..Default::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.3,
    })
    .expect("generator config is valid")
}

fn options() -> UnionOptions {
    UnionOptions {
        on_total_conflict: ConflictPolicy::Vacuous,
        ..Default::default()
    }
}

fn run(bindings: &Bindings, plan: &LogicalPlan, threads: usize) -> ExtendedRelation {
    let mut ctx = ExecContext::with_options(options());
    ctx.parallelism = threads;
    execute_plan(plan, bindings, &mut ctx).expect("plan executes")
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange/merge");
    // Smoke runs (cargo test --benches, CI) use a small size; full
    // measurement sweeps 10^4–10^6 combined input tuples.
    let sizes: &[usize] = if measured() {
        &[5_000, 50_000, 500_000]
    } else {
        &[1_000]
    };
    for &per_source in sizes {
        let (a, b) = pair(per_source);
        let mut bindings = Bindings::new();
        bindings.bind("ga", a).bind("gb", b);
        let plan = scan("ga").union(scan("gb")).build();
        // Sanity before timing: every thread count must reproduce the
        // sequential result (insertion order included).
        let seq = run(&bindings, &plan, 1);
        for threads in [2usize, 4, 8] {
            let par = run(&bindings, &plan, threads);
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(par.iter()) {
                assert_eq!(s.key(seq.schema()), p.key(par.schema()));
            }
        }
        group.throughput(Throughput::Elements(2 * per_source as u64));
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}", 2 * per_source), threads),
                &threads,
                |bench, &threads| {
                    bench.iter(|| run(black_box(&bindings), black_box(&plan), threads));
                },
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(5)
        .measurement_time(std::time::Duration::from_millis(2000))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_exchange
}
criterion_main!(benches);
