//! Merge-approach comparison: evidential (Dempster) vs. DeMichiel
//! partial values vs. Tseng probabilistic partial values — the
//! executable version of the paper's §1.3 comparison.
//!
//! Timing aside, the interesting signal (information retention and
//! conflict-failure rates) is printed once per run by the
//! `conflict_analysis` example; here we measure raw merge throughput
//! over identical inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_baselines::{PartialValue, ProbValue};
use evirel_evidence::combine;
use evirel_relation::Value;
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use std::hint::black_box;

type MassPairs = Vec<(
    evirel_evidence::MassFunction<f64>,
    evirel_evidence::MassFunction<f64>,
)>;

/// Matched evidence pairs drawn from the generator (one per shared
/// key).
fn matched_pairs(tuples: usize, conflict_bias: f64) -> MassPairs {
    let (a, b) = generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples,
            evidential_attrs: 1,
            ..Default::default()
        },
        key_overlap: 1.0,
        conflict_bias,
    })
    .expect("valid config");
    a.iter_keyed()
        .filter_map(|(key, ta)| {
            let tb = b.get_by_key(&key)?;
            Some((
                ta.value(1).as_evidential()?.clone(),
                tb.value(1).as_evidential()?.clone(),
            ))
        })
        .collect()
}

fn bench_merge_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/merge-throughput");
    let pairs = matched_pairs(2000, 0.0);
    group.throughput(Throughput::Elements(pairs.len() as u64));

    group.bench_function("evidential-dempster", |bench| {
        bench.iter(|| {
            let mut survived = 0usize;
            for (a, b) in &pairs {
                if combine::dempster(black_box(a), black_box(b)).is_ok() {
                    survived += 1;
                }
            }
            survived
        })
    });

    group.bench_function("demichiel-partial", |bench| {
        bench.iter(|| {
            let mut survived = 0usize;
            for (a, b) in &pairs {
                let pa = PartialValue::from_evidence(black_box(a));
                let pb = PartialValue::from_evidence(black_box(b));
                if pa.combine(&pb).is_some() {
                    survived += 1;
                }
            }
            survived
        })
    });

    group.bench_function("tseng-prob-bayes", |bench| {
        bench.iter(|| {
            let mut survived = 0usize;
            for (a, b) in &pairs {
                let pa = ProbValue::from_evidence(black_box(a));
                let pb = ProbValue::from_evidence(black_box(b));
                if pa.combine_bayes(&pb).is_some() {
                    survived += 1;
                }
            }
            survived
        })
    });

    group.bench_function("tseng-prob-mixing", |bench| {
        bench.iter(|| {
            for (a, b) in &pairs {
                let pa = ProbValue::from_evidence(black_box(a));
                let pb = ProbValue::from_evidence(black_box(b));
                black_box(pa.combine_mixing(&pb));
            }
        })
    });
    group.finish();
}

fn bench_conflict_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/conflict-sweep");
    for bias in [0.0f64, 0.5, 1.0] {
        let pairs = matched_pairs(500, bias);
        group.bench_with_input(
            BenchmarkId::new("dempster", format!("{bias:.1}")),
            &pairs,
            |bench, pairs| {
                bench.iter(|| {
                    pairs
                        .iter()
                        .filter(|(a, b)| combine::dempster(a, b).is_ok())
                        .count()
                })
            },
        );
    }
    group.finish();
}

/// Dayal aggregates resolve numeric definite conflicts; measured on
/// plain numeric pairs for completeness of the §1.3 comparison.
fn bench_aggregates(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/dayal-aggregate");
    let values: Vec<(Value, Value)> = (0..2000)
        .map(|i| (Value::int(i), Value::int(i * 2 + 1)))
        .collect();
    for f in evirel_baselines::AggregateFn::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(f.to_string()),
            &f,
            |bench, f| {
                bench.iter(|| {
                    values
                        .iter()
                        .filter_map(|(a, b)| f.resolve_values(black_box(a), black_box(b)))
                        .count()
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_merge_throughput, bench_conflict_sensitivity, bench_aggregates
}
criterion_main!(benches);
