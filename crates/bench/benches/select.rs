//! Extended-selection benchmarks: predicate families and thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_algebra::{select, Operand, Predicate, ThetaOp, Threshold};
use evirel_relation::Value;
use evirel_workload::generator::{generate, GeneratorConfig};
use std::hint::black_box;

fn relation(tuples: usize) -> evirel_relation::ExtendedRelation {
    generate(
        "S",
        &GeneratorConfig {
            tuples,
            ..Default::default()
        },
    )
    .expect("generator config is valid")
}

fn bench_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("select/predicate");
    let rel = relation(5000);
    let is_pred = Predicate::is("e0", ["v0", "v1"]);
    let theta_pred = Predicate::theta(Operand::attr("e0"), ThetaOp::Ge, Operand::value("v8"));
    let compound = Predicate::is("e0", ["v0", "v1"])
        .and(Predicate::is("e1", ["v2", "v3"]))
        .and(Predicate::is("e2", ["v4"]));
    let theta_attr_attr = Predicate::theta(Operand::attr("e0"), ThetaOp::Le, Operand::attr("e1"));
    for (name, pred) in [
        ("is", &is_pred),
        ("theta-value", &theta_pred),
        ("compound-and3", &compound),
        ("theta-attr-attr", &theta_attr_attr),
    ] {
        group.throughput(Throughput::Elements(rel.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &pred, |bench, pred| {
            bench.iter(|| select(black_box(&rel), pred, &Threshold::POSITIVE));
        });
    }
    group.finish();
}

fn bench_thresholds(c: &mut Criterion) {
    let mut group = c.benchmark_group("select/threshold");
    let rel = relation(5000);
    let pred = Predicate::is("e0", ["v0", "v1", "v2"]);
    for (name, threshold) in [
        ("sn>0", Threshold::POSITIVE),
        ("sn>=0.5", Threshold::SnAtLeast(0.5)),
        ("definite", Threshold::Definite),
        ("sp>=0.8", Threshold::SpAtLeastPositive(0.8)),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &threshold,
            |bench, threshold| {
                bench.iter(|| select(black_box(&rel), &pred, threshold));
            },
        );
    }
    group.finish();
}

fn bench_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("select/size");
    let pred = Predicate::is("e0", ["v0"]);
    for tuples in [100usize, 1000, 10_000] {
        let rel = relation(tuples);
        group.throughput(Throughput::Elements(tuples as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tuples), &tuples, |bench, _| {
            bench.iter(|| select(black_box(&rel), &pred, &Threshold::POSITIVE));
        });
    }
    group.finish();
}

/// Selection over definite key attributes (crisp path) for contrast
/// with the evidential path.
fn bench_definite_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("select/definite-vs-evidential");
    let rel = relation(5000);
    let crisp = Predicate::theta(
        Operand::attr("k"),
        ThetaOp::Eq,
        Operand::Value(Value::str("k42")),
    );
    let fuzzy = Predicate::is("e0", ["v0"]);
    group.bench_function("definite-key-eq", |b| {
        b.iter(|| select(black_box(&rel), &crisp, &Threshold::POSITIVE))
    });
    group.bench_function("evidential-is", |b| {
        b.iter(|| select(black_box(&rel), &fuzzy, &Threshold::POSITIVE))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_predicates, bench_thresholds, bench_size_scaling, bench_definite_path
}
criterion_main!(benches);
