//! Dempster-combination microbenchmarks.
//!
//! The 1994 paper reports no wall-clock numbers; these benches
//! document the algorithmic cost profile of the combination engine:
//! scaling in focal-element count and domain size, the relative cost
//! of the alternative rules, and the effect of the summarization
//! approximation on long combination chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_evidence::{approx, combine, rules::CombinationRule, Frame, MassFunction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn frame(size: usize) -> Arc<Frame> {
    Arc::new(Frame::new("bench", (0..size).map(|i| format!("v{i}"))))
}

/// A random normalized mass function with `focal` focal elements over
/// a frame of `domain` values. `omega` reserves an ignorance floor,
/// which guarantees κ < 1 in arbitrarily long combination chains.
fn random_mass_with_omega(
    rng: &mut StdRng,
    frame: &Arc<Frame>,
    focal: usize,
    omega: f64,
) -> MassFunction<f64> {
    let n = frame.len();
    let mut sets = Vec::with_capacity(focal);
    while sets.len() < focal {
        let size = rng.gen_range(1..=3.min(n));
        let set = evirel_evidence::FocalSet::from_indices((0..size).map(|_| rng.gen_range(0..n)));
        if !sets.contains(&set) && set.len() < n {
            sets.push(set);
        }
    }
    let weights: Vec<f64> = (0..sets.len()).map(|_| rng.gen_range(0.05..1.0)).collect();
    let total: f64 = weights.iter().sum::<f64>() / (1.0 - omega);
    let mut entries: Vec<(evirel_evidence::FocalSet, f64)> = sets
        .into_iter()
        .zip(weights.into_iter().map(|w| w / total))
        .collect();
    if omega > 0.0 {
        entries.push((evirel_evidence::FocalSet::full(n), omega));
    }
    MassFunction::from_entries(Arc::clone(frame), entries).expect("normalized by construction")
}

fn random_mass(rng: &mut StdRng, frame: &Arc<Frame>, focal: usize) -> MassFunction<f64> {
    random_mass_with_omega(rng, frame, focal, 0.0)
}

/// A random singleton-only (Bayesian) mass function with `focal`
/// distinct focal elements. Element 0 is always focal so two such
/// functions can never be in total conflict — the bench must measure
/// the singleton fast path, not the error path.
fn random_bayesian(rng: &mut StdRng, frame: &Arc<Frame>, focal: usize) -> MassFunction<f64> {
    let n = frame.len();
    assert!(focal <= n);
    let mut members = vec![0usize];
    while members.len() < focal {
        let i = rng.gen_range(0..n);
        if !members.contains(&i) {
            members.push(i);
        }
    }
    let weights: Vec<f64> = (0..focal).map(|_| rng.gen_range(0.05..1.0)).collect();
    let total: f64 = weights.iter().sum();
    let entries = members
        .into_iter()
        .zip(weights.into_iter().map(|w| w / total))
        .map(|(i, w)| (evirel_evidence::FocalSet::singleton(i), w));
    MassFunction::from_entries(Arc::clone(frame), entries).expect("normalized by construction")
}

/// The focal-count sweep from ROADMAP's hot-path item: 2–64 focal
/// elements over a 64-value frame, mixed-cardinality vs
/// singleton-only operands. The mixed group keeps its historical name
/// so BASELINES.md before/after comparisons line up.
fn bench_focal_scaling(c: &mut Criterion) {
    let f = frame(64);
    let mut group = c.benchmark_group("dempster/focal-count");
    for focal in [2usize, 4, 8, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_mass(&mut rng, &f, focal);
        let b = random_mass(&mut rng, &f, focal);
        group.throughput(Throughput::Elements((focal * focal) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(focal), &focal, |bench, _| {
            bench.iter(|| combine::dempster(black_box(&a), black_box(&b)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dempster/focal-count-singleton");
    for focal in [2usize, 4, 8, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_bayesian(&mut rng, &f, focal);
        let b = random_bayesian(&mut rng, &f, focal);
        group.throughput(Throughput::Elements((focal * focal) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(focal), &focal, |bench, _| {
            bench.iter(|| combine::dempster(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_domain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dempster/domain-size");
    for size in [8usize, 64, 256, 1024] {
        let f = frame(size);
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_mass(&mut rng, &f, 8);
        let b = random_mass(&mut rng, &f, 8);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| combine::dempster(black_box(&a), black_box(&b)));
        });
    }
    group.finish();
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("rules");
    let f = frame(64);
    let mut rng = StdRng::seed_from_u64(3);
    let a = random_mass(&mut rng, &f, 8);
    let b = random_mass(&mut rng, &f, 8);
    for rule in CombinationRule::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(rule.name()),
            &rule,
            |bench, rule| {
                bench.iter(|| rule.combine(black_box(&a), black_box(&b)));
            },
        );
    }
    group.finish();
}

/// Chained combination of 16 sources, with and without focal-count
/// capping — the ablation DESIGN.md calls out for the `max_focal`
/// union option.
fn bench_chain_with_summarization(c: &mut Criterion) {
    let mut group = c.benchmark_group("dempster/chain16");
    let f = frame(32);
    let mut rng = StdRng::seed_from_u64(4);
    // Chained sources must genuinely overlap: focal elements all
    // contain a common core element, plus an Ω floor, so κ stays
    // bounded away from 1 over the whole chain.
    let sources: Vec<MassFunction<f64>> = (0..16)
        .map(|_| {
            let mut sets = Vec::new();
            while sets.len() < 6 {
                let size = rng.gen_range(1..=2);
                let mut members = vec![0usize]; // common core element
                for _ in 0..size {
                    members.push(rng.gen_range(0..f.len()));
                }
                let set = evirel_evidence::FocalSet::from_indices(members);
                if !sets.contains(&set) {
                    sets.push(set);
                }
            }
            let weights: Vec<f64> = (0..sets.len()).map(|_| rng.gen_range(0.05..1.0)).collect();
            let total: f64 = weights.iter().sum::<f64>() / 0.9;
            let mut entries: Vec<(evirel_evidence::FocalSet, f64)> = sets
                .into_iter()
                .zip(weights.into_iter().map(|w| w / total))
                .collect();
            entries.push((evirel_evidence::FocalSet::full(f.len()), 0.1));
            MassFunction::from_entries(Arc::clone(&f), entries).expect("normalized")
        })
        .collect();
    for cap in [None, Some(4usize), Some(8), Some(16)] {
        let name = cap.map_or("unbounded".to_owned(), |k| format!("cap{k}"));
        group.bench_with_input(BenchmarkId::from_parameter(name), &cap, |bench, cap| {
            bench.iter(|| {
                let mut acc = sources[0].clone();
                for s in &sources[1..] {
                    acc = combine::dempster(&acc, s).expect("no total conflict").mass;
                    if let Some(k) = cap {
                        acc = approx::summarize(&acc, *k).expect("cap >= 1");
                    }
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

/// Merge-pass allocation ablation: a batch of 256 combinations run
/// with a fresh memo table per call vs ONE shared `Scratch` for the
/// whole pass (the ROADMAP Dempster item's "reuse one BitsMemo across
/// a whole merge pass" headroom, now what `DempsterMerger` does).
/// Results are asserted bit-identical before timing.
fn bench_merge_pass_scratch(c: &mut Criterion) {
    let f = frame(64);
    let mut rng = StdRng::seed_from_u64(5);
    let pairs: Vec<(MassFunction<f64>, MassFunction<f64>)> = (0..256)
        .map(|_| {
            (
                random_mass_with_omega(&mut rng, &f, 8, 0.1),
                random_mass_with_omega(&mut rng, &f, 8, 0.1),
            )
        })
        .collect();
    let mut scratch = combine::Scratch::new();
    for (a, b) in &pairs {
        let fresh = combine::dempster(a, b).expect("omega floor");
        let reused = combine::dempster_with(a, b, &mut scratch).expect("omega floor");
        assert_eq!(fresh.mass, reused.mass, "scratch must be bit-invisible");
    }
    let mut group = c.benchmark_group("dempster/merge-pass");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.bench_function("fresh-memo", |bench| {
        bench.iter(|| {
            for (a, b) in &pairs {
                black_box(combine::dempster(black_box(a), black_box(b)).unwrap());
            }
        });
    });
    group.bench_function("shared-scratch", |bench| {
        let mut scratch = combine::Scratch::new();
        bench.iter(|| {
            for (a, b) in &pairs {
                black_box(
                    combine::dempster_with(black_box(a), black_box(b), &mut scratch).unwrap(),
                );
            }
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_focal_scaling, bench_domain_scaling, bench_rules, bench_chain_with_summarization, bench_merge_pass_scratch
}
criterion_main!(benches);
