//! Observability-layer benchmark: what instrumentation costs.
//!
//! Two layers of measurement:
//!
//! * `metrics/hot-path` — the primitive costs: a registry counter
//!   increment vs a raw relaxed `AtomicU64` (the floor), a histogram
//!   observation, and a full exposition render of a populated
//!   registry (the scrape cost, paid by `METRICS` callers, not by
//!   queries).
//! * `metrics/instrumented` — PING and warm-cached QUERY round-trips
//!   through a live instrumented server, measured exactly like
//!   `serve/roundtrip` measures them. Compare against the
//!   pre-instrumentation `serve/roundtrip` rows in BASELINES.md: the
//!   delta is the end-to-end overhead of per-verb counters, latency
//!   histograms, spans, and metered execution, and must stay < 2%.
//!
//! The smoke pass (`cargo test --benches`, CI) additionally asserts a
//! `METRICS` scrape round-trips and exposes the serve counters.
//!
//! Reference numbers live in `crates/bench/BASELINES.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use evirel_obs::{Histogram, MetricsRegistry};
use evirel_query::Catalog;
use evirel_serve::protocol::{read_frame, write_frame};
use evirel_serve::{start, ServeConfig, ServerHandle};
use evirel_workload::{restaurant_db_a, restaurant_db_b};
use std::hint::black_box;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

fn server() -> ServerHandle {
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    start(catalog, ServeConfig::default()).expect("server starts")
}

fn roundtrip(conn: &mut TcpStream, payload: &str) -> String {
    write_frame(conn, payload).expect("request writes");
    read_frame(conn)
        .expect("response reads")
        .expect("server replied")
}

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics/hot-path");

    let raw = AtomicU64::new(0);
    group.bench_function("raw-atomic-add", |b| {
        b.iter(|| black_box(raw.fetch_add(1, Ordering::Relaxed)))
    });

    let registry = MetricsRegistry::new();
    let counter = registry.counter("evirel_bench_total", "bench", &[]);
    group.bench_function("counter-inc", |b| b.iter(|| counter.inc()));

    let histogram = Histogram::default();
    let mut us = 0u64;
    group.bench_function("histogram-observe", |b| {
        b.iter(|| {
            us = (us + 997) % 2_000_000;
            histogram.observe_us(black_box(us));
        })
    });

    // Scrape cost over a registry shaped like a live server's: a few
    // dozen counter/gauge series plus latency histograms.
    let populated = MetricsRegistry::new();
    for verb in ["query", "merge", "ping", "stats", "explain", "metrics"] {
        populated
            .counter("evirel_serve_requests_total", "requests", &[("verb", verb)])
            .add(1234);
        let h = populated.histogram("evirel_serve_request_seconds", "latency", &[("verb", verb)]);
        for i in 0..64 {
            h.observe_us(i * 300);
        }
    }
    for name in [
        "evirel_serve_queue_depth",
        "evirel_serve_workers_busy",
        "evirel_store_pool_hits_total",
        "evirel_store_pool_misses_total",
        "evirel_query_cache_hits_total",
        "evirel_repl_generation_lag",
    ] {
        populated.gauge(name, "bench", &[]).set(42);
    }
    let text = populated.render();
    assert!(text.contains("# TYPE evirel_serve_requests_total counter"));
    group.bench_function("render", |b| b.iter(|| black_box(populated.render())));
    group.finish();
}

/// Instrumented server round-trips, measured exactly as the
/// pre-instrumentation `serve/roundtrip` bench measured them so the
/// BASELINES.md before/after rows are apples to apples.
fn bench_instrumented(c: &mut Criterion) {
    let handle = server();
    let mut conn = TcpStream::connect(handle.addr()).expect("connects");
    conn.set_nodelay(true).expect("nodelay");
    let query = "QUERY\nSELECT * FROM ra UNION rb WITH SN > 0.5";

    // Sanity before timing: warm the plan cache, then prove the
    // instrumentation is live — a METRICS scrape must expose the
    // request counters this very connection just incremented.
    let cold = roundtrip(&mut conn, query);
    assert!(cold.starts_with("OK"), "{cold}");
    let warm = roundtrip(&mut conn, query);
    assert!(warm.contains("cached=1"), "cache must engage: {warm}");
    let scrape = roundtrip(&mut conn, "METRICS");
    assert!(scrape.starts_with("OK"), "{scrape}");
    assert!(
        scrape.contains("# TYPE evirel_serve_requests_total counter"),
        "{scrape}"
    );
    assert!(
        scrape.contains("evirel_serve_requests_total{verb=\"query\"} 2"),
        "{scrape}"
    );

    let mut group = c.benchmark_group("metrics/instrumented");
    group.bench_function("ping", |b| {
        b.iter(|| black_box(roundtrip(&mut conn, "PING")))
    });
    group.bench_function("warm-query", |b| {
        b.iter(|| black_box(roundtrip(&mut conn, query)))
    });
    group.finish();

    drop(conn);
    handle.shutdown();
    let stats = handle.join();
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.errors, 0);
}

criterion_group!(benches, bench_hot_path, bench_instrumented);
criterion_main!(benches);
