//! Plan-layer benchmark: the same ∪̃ → σ̃ → π̃ pipeline executed two
//! ways — *materialized* (algebra free functions, a whole
//! `ExtendedRelation` built between every operator) vs *streaming*
//! (`evirel-plan` optimized logical plan over pull-based operators).
//!
//! Besides wall-clock, a counting global allocator reports the
//! allocation volume of one run of each path, since cutting
//! intermediate materialization is the point of the streaming
//! executor. Reference numbers live in `crates/bench/BASELINES.md`.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use evirel_algebra::union::{union_with, UnionOptions};
use evirel_algebra::{project, select, Predicate, Threshold};
use evirel_plan::{execute_plan, scan, Bindings, ExecContext, LogicalPlan};
use evirel_relation::ExtendedRelation;
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn measured() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn pair(tuples: usize) -> (ExtendedRelation, ExtendedRelation) {
    generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples,
            ..Default::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.0,
    })
    .expect("generator config is valid")
}

fn predicate() -> Predicate {
    Predicate::is("e0", ["v0", "v1", "v2", "v3"])
}

fn pipeline_plan() -> LogicalPlan {
    scan("ga")
        .union(scan("gb"))
        .select(predicate())
        .project(["k", "e0"])
        .build()
}

/// The naive path: every operator materializes its whole result.
fn run_materialized(a: &ExtendedRelation, b: &ExtendedRelation) -> ExtendedRelation {
    let union = union_with(a, b, &UnionOptions::default())
        .expect("no total conflict at bias 0")
        .relation;
    let selected = select(&union, &predicate(), &Threshold::POSITIVE).expect("valid predicate");
    project(&selected, &["k", "e0"]).expect("valid projection")
}

/// The streaming path: optimized plan over pull-based operators.
fn run_streaming(bindings: &Bindings, plan: &LogicalPlan) -> ExtendedRelation {
    let mut ctx = ExecContext::new();
    execute_plan(plan, bindings, &mut ctx).expect("plan executes")
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan/pipeline");
    // Smoke runs (cargo test --benches, CI) use a small size; full
    // measurement sweeps 10^4–10^5 tuples per source.
    let sizes: &[usize] = if measured() {
        &[10_000, 100_000]
    } else {
        &[2_000]
    };
    for &tuples in sizes {
        let (a, b) = pair(tuples);
        let mut bindings = Bindings::new();
        bindings.bind("ga", a.clone()).bind("gb", b.clone());
        let plan = pipeline_plan();
        // Sanity: both paths agree before we time them.
        assert!(run_materialized(&a, &b).approx_eq(&run_streaming(&bindings, &plan)));
        group.throughput(Throughput::Elements(tuples as u64));
        group.bench_with_input(
            BenchmarkId::new("materialized", tuples),
            &tuples,
            |bench, _| bench.iter(|| run_materialized(black_box(&a), black_box(&b))),
        );
        group.bench_with_input(
            BenchmarkId::new("streaming", tuples),
            &tuples,
            |bench, _| bench.iter(|| run_streaming(black_box(&bindings), black_box(&plan))),
        );
    }
    group.finish();
}

/// One instrumented run of each path: allocation count and bytes.
fn allocation_report() {
    let tuples = if measured() { 10_000 } else { 2_000 };
    let (a, b) = pair(tuples);
    let mut bindings = Bindings::new();
    bindings.bind("ga", a.clone()).bind("gb", b.clone());
    let plan = pipeline_plan();

    let measure = |label: &str, f: &mut dyn FnMut() -> ExtendedRelation| {
        let (a0, b0) = (
            ALLOCATIONS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        );
        let out = f();
        let allocs = ALLOCATIONS.load(Ordering::Relaxed) - a0;
        let bytes = BYTES.load(Ordering::Relaxed) - b0;
        println!(
            "plan/allocations/{label}/{tuples}: {allocs} allocations, {:.1} MiB ({} result tuples)",
            bytes as f64 / (1024.0 * 1024.0),
            out.len()
        );
    };
    measure("materialized", &mut || run_materialized(&a, &b));
    measure("streaming", &mut || run_streaming(&bindings, &plan));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(2000))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pipeline
}

fn main() {
    benches();
    allocation_report();
}
