//! Extended-union benchmarks: relation size, key overlap, conflict
//! bias, and the parallel executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evirel_algebra::par::par_union;
use evirel_algebra::union::{union_with, UnionOptions};
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use std::hint::black_box;

fn pair(
    tuples: usize,
    overlap: f64,
    conflict: f64,
) -> (
    evirel_relation::ExtendedRelation,
    evirel_relation::ExtendedRelation,
) {
    generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples,
            ..Default::default()
        },
        key_overlap: overlap,
        conflict_bias: conflict,
    })
    .expect("generator config is valid")
}

fn bench_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("union/size");
    for tuples in [100usize, 1000, 5000] {
        let (a, b) = pair(tuples, 0.5, 0.0);
        group.throughput(Throughput::Elements(tuples as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tuples), &tuples, |bench, _| {
            bench.iter(|| union_with(black_box(&a), black_box(&b), &UnionOptions::default()));
        });
    }
    group.finish();
}

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("union/overlap");
    for overlap in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let (a, b) = pair(2000, overlap, 0.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{overlap:.2}")),
            &overlap,
            |bench, _| {
                bench.iter(|| union_with(black_box(&a), black_box(&b), &UnionOptions::default()));
            },
        );
    }
    group.finish();
}

fn bench_conflict_bias(c: &mut Criterion) {
    let mut group = c.benchmark_group("union/conflict-bias");
    for bias in [0.0f64, 0.5, 1.0] {
        let (a, b) = pair(2000, 1.0, bias);
        // High bias can produce total conflicts; resolve vacuously so
        // the bench measures the full path.
        let options = UnionOptions {
            on_total_conflict: evirel_algebra::ConflictPolicy::Vacuous,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{bias:.1}")),
            &bias,
            |bench, _| {
                bench.iter(|| union_with(black_box(&a), black_box(&b), &options));
            },
        );
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("union/parallel");
    let (a, b) = pair(5000, 1.0, 0.0);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, threads| {
                bench.iter(|| {
                    par_union(
                        black_box(&a),
                        black_box(&b),
                        &UnionOptions::default(),
                        *threads,
                    )
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_size, bench_overlap, bench_conflict_bias, bench_parallel
}
criterion_main!(benches);
