//! Expected values for every table of the paper.
//!
//! Each constant mirrors the hand calculation of Dempster's rule on
//! Table 1's inputs, written as the same arithmetic expression so the
//! expectation is exact in `f64` up to association order (the paper
//! prints 2–3 decimal roundings of these; e.g. `si^0.655` is
//! `0.475/0.725 = 19/29`).

/// One expected evidential cell.
#[derive(Debug, Clone, Copy)]
pub struct ExpectedCell {
    /// Tuple key (rname).
    pub key: &'static str,
    /// Attribute name.
    pub attr: &'static str,
    /// Focal-set labels (`["Ω"]` denotes the full set).
    pub labels: &'static [&'static str],
    /// Expected mass.
    pub mass: f64,
}

/// One expected membership pair.
#[derive(Debug, Clone, Copy)]
pub struct ExpectedMembership {
    /// Tuple key (rname).
    pub key: &'static str,
    /// Expected sn.
    pub sn: f64,
    /// Expected sp.
    pub sp: f64,
}

// ---------------------------------------------------------------- Table 2
// σ̃_{sn>0, speciality is {si}}(R_A): garden (0.5, 0.75), wok (1,1);
// attribute values retained from R_A (footnote 4).

/// Expected evidential cells of Table 2.
pub const TABLE2_CELLS: &[ExpectedCell] = &[
    ExpectedCell {
        key: "garden",
        attr: "speciality",
        labels: &["si"],
        mass: 0.5,
    },
    ExpectedCell {
        key: "garden",
        attr: "speciality",
        labels: &["hu"],
        mass: 0.25,
    },
    ExpectedCell {
        key: "garden",
        attr: "speciality",
        labels: &["Ω"],
        mass: 0.25,
    },
    ExpectedCell {
        key: "garden",
        attr: "best-dish",
        labels: &["d31"],
        mass: 0.5,
    },
    ExpectedCell {
        key: "garden",
        attr: "best-dish",
        labels: &["d35", "d36"],
        mass: 0.5,
    },
    ExpectedCell {
        key: "wok",
        attr: "speciality",
        labels: &["si"],
        mass: 1.0,
    },
    ExpectedCell {
        key: "wok",
        attr: "rating",
        labels: &["gd"],
        mass: 0.25,
    },
    ExpectedCell {
        key: "wok",
        attr: "rating",
        labels: &["avg"],
        mass: 0.75,
    },
];

/// Expected memberships of Table 2 — garden: `(1,1)` membership times
/// `(Bel, Pls) = (0.5, 0.75)`.
pub const TABLE2_MEMBERSHIP: &[ExpectedMembership] = &[
    ExpectedMembership {
        key: "garden",
        sn: 0.5,
        sp: 0.75,
    },
    ExpectedMembership {
        key: "wok",
        sn: 1.0,
        sp: 1.0,
    },
];

// ---------------------------------------------------------------- Table 3
// σ̃_{sn>0, (speciality is {mu}) ∧ (rating is {ex})}(R_A):
// mehl (0.8·0.8 × 0.5 = 0.32, 0.32), ashiana (0.9, 1.0).

/// Expected evidential cells of Table 3 (values retained from R_A).
pub const TABLE3_CELLS: &[ExpectedCell] = &[
    ExpectedCell {
        key: "mehl",
        attr: "speciality",
        labels: &["mu"],
        mass: 0.8,
    },
    ExpectedCell {
        key: "mehl",
        attr: "speciality",
        labels: &["ta"],
        mass: 0.2,
    },
    ExpectedCell {
        key: "ashiana",
        attr: "speciality",
        labels: &["mu"],
        mass: 0.9,
    },
    ExpectedCell {
        key: "ashiana",
        attr: "speciality",
        labels: &["Ω"],
        mass: 0.1,
    },
    ExpectedCell {
        key: "ashiana",
        attr: "rating",
        labels: &["ex"],
        mass: 1.0,
    },
];

/// Expected memberships of Table 3.
pub const TABLE3_MEMBERSHIP: &[ExpectedMembership] = &[
    ExpectedMembership {
        key: "mehl",
        sn: 0.8 * 0.8 * 0.5,
        sp: 0.8 * 0.8 * 0.5,
    },
    ExpectedMembership {
        key: "ashiana",
        sn: 0.9,
        sp: 1.0,
    },
];

// ---------------------------------------------------------------- Table 4
// R_A ∪̃_(rname) R_B — Dempster's rule per attribute, the paper's F on
// memberships.

/// garden speciality: κ = 0.5·0.3 + 0.25·0.5 = 0.275.
const GARDEN_SPEC_DENOM: f64 = 1.0 - (0.5 * 0.3 + 0.25 * 0.5);
/// garden rating: κ = 0.33·0.8 + 0.5·0.2 + 0.17·0.2 + 0.17·0.8 = 0.534.
const GARDEN_RATING_DENOM: f64 = 1.0 - (0.33 * 0.8 + 0.5 * 0.2 + 0.17 * 0.2 + 0.17 * 0.8);
/// wok best-dish: κ = 1 − (0.33·0.5 + 0.33·0.25 + 0.34·0.25).
const WOK_DISH_DENOM: f64 = 0.33 * 0.5 + 0.33 * 0.25 + 0.34 * 0.25;
/// country best-dish: κ = 0.5·0.8 + 0.33·0.2 = 0.466.
const COUNTRY_DISH_DENOM: f64 = 1.0 - (0.5 * 0.8 + 0.33 * 0.2);
/// mehl best-dish: κ = 0.4·0.9 + 0.6·0.1 = 0.42.
const MEHL_DISH_DENOM: f64 = 1.0 - (0.4 * 0.9 + 0.6 * 0.1);

/// Expected evidential cells of Table 4 (the paper prints the
/// 3-decimal roundings: garden speciality `[si^0.655, hu^0.276,
/// Ω^0.069]`, etc.).
pub const TABLE4_CELLS: &[ExpectedCell] = &[
    // garden — speciality [si^0.655, hu^0.276, Ω^0.069]
    ExpectedCell {
        key: "garden",
        attr: "speciality",
        labels: &["si"],
        mass: (0.5 * 0.5 + 0.5 * 0.2 + 0.25 * 0.5) / GARDEN_SPEC_DENOM,
    },
    ExpectedCell {
        key: "garden",
        attr: "speciality",
        labels: &["hu"],
        mass: (0.25 * 0.3 + 0.25 * 0.2 + 0.25 * 0.3) / GARDEN_SPEC_DENOM,
    },
    ExpectedCell {
        key: "garden",
        attr: "speciality",
        labels: &["Ω"],
        mass: (0.25 * 0.2) / GARDEN_SPEC_DENOM,
    },
    // garden — best-dish [d31^0.7, d35^0.3]
    ExpectedCell {
        key: "garden",
        attr: "best-dish",
        labels: &["d31"],
        mass: 0.7,
    },
    ExpectedCell {
        key: "garden",
        attr: "best-dish",
        labels: &["d35"],
        mass: 0.3,
    },
    // garden — rating [ex^0.143, gd^0.857]
    ExpectedCell {
        key: "garden",
        attr: "rating",
        labels: &["ex"],
        mass: (0.33 * 0.2) / GARDEN_RATING_DENOM,
    },
    ExpectedCell {
        key: "garden",
        attr: "rating",
        labels: &["gd"],
        mass: (0.5 * 0.8) / GARDEN_RATING_DENOM,
    },
    // wok — speciality [si^1]
    ExpectedCell {
        key: "wok",
        attr: "speciality",
        labels: &["si"],
        mass: 1.0,
    },
    // wok — best-dish [d6^0.5, d7^0.25, d25^0.25] (printed rounding)
    ExpectedCell {
        key: "wok",
        attr: "best-dish",
        labels: &["d6"],
        mass: (0.33 * 0.5) / WOK_DISH_DENOM,
    },
    ExpectedCell {
        key: "wok",
        attr: "best-dish",
        labels: &["d7"],
        mass: (0.33 * 0.25) / WOK_DISH_DENOM,
    },
    ExpectedCell {
        key: "wok",
        attr: "best-dish",
        labels: &["d25"],
        mass: (0.34 * 0.25) / WOK_DISH_DENOM,
    },
    // wok — rating [gd^1]
    ExpectedCell {
        key: "wok",
        attr: "rating",
        labels: &["gd"],
        mass: 1.0,
    },
    // country — [am^1], [d1^0.25, d2^0.75], [ex^1]
    ExpectedCell {
        key: "country",
        attr: "speciality",
        labels: &["am"],
        mass: 1.0,
    },
    ExpectedCell {
        key: "country",
        attr: "best-dish",
        labels: &["d1"],
        mass: (0.5 * 0.2 + 0.17 * 0.2) / COUNTRY_DISH_DENOM,
    },
    ExpectedCell {
        key: "country",
        attr: "best-dish",
        labels: &["d2"],
        mass: (0.33 * 0.8 + 0.17 * 0.8) / COUNTRY_DISH_DENOM,
    },
    ExpectedCell {
        key: "country",
        attr: "rating",
        labels: &["ex"],
        mass: 1.0,
    },
    // olive — [it^1], [d1^1], [gd^0.8, avg^0.2]
    ExpectedCell {
        key: "olive",
        attr: "speciality",
        labels: &["it"],
        mass: 1.0,
    },
    ExpectedCell {
        key: "olive",
        attr: "best-dish",
        labels: &["d1"],
        mass: 1.0,
    },
    ExpectedCell {
        key: "olive",
        attr: "rating",
        labels: &["gd"],
        mass: 0.8,
    },
    ExpectedCell {
        key: "olive",
        attr: "rating",
        labels: &["avg"],
        mass: 0.2,
    },
    // mehl — [mu^1], [d24^0.069, d31^0.931], [ex^1]
    ExpectedCell {
        key: "mehl",
        attr: "speciality",
        labels: &["mu"],
        mass: 1.0,
    },
    ExpectedCell {
        key: "mehl",
        attr: "best-dish",
        labels: &["d24"],
        mass: (0.4 * 0.1) / MEHL_DISH_DENOM,
    },
    ExpectedCell {
        key: "mehl",
        attr: "best-dish",
        labels: &["d31"],
        mass: (0.6 * 0.9) / MEHL_DISH_DENOM,
    },
    ExpectedCell {
        key: "mehl",
        attr: "rating",
        labels: &["ex"],
        mass: 1.0,
    },
    // ashiana — retained from R_A (DB_B is totally ignorant of it)
    ExpectedCell {
        key: "ashiana",
        attr: "speciality",
        labels: &["mu"],
        mass: 0.9,
    },
    ExpectedCell {
        key: "ashiana",
        attr: "speciality",
        labels: &["Ω"],
        mass: 0.1,
    },
    ExpectedCell {
        key: "ashiana",
        attr: "best-dish",
        labels: &["d34"],
        mass: 0.8,
    },
    ExpectedCell {
        key: "ashiana",
        attr: "best-dish",
        labels: &["d25"],
        mass: 0.2,
    },
    ExpectedCell {
        key: "ashiana",
        attr: "rating",
        labels: &["ex"],
        mass: 1.0,
    },
];

/// Expected memberships of Table 4 — mehl is the paper's worked
/// combination `(0.5, 0.5) ⊕ (0.8, 1) = (0.83, 0.83)` (exactly 5/6).
pub const TABLE4_MEMBERSHIP: &[ExpectedMembership] = &[
    ExpectedMembership {
        key: "garden",
        sn: 1.0,
        sp: 1.0,
    },
    ExpectedMembership {
        key: "wok",
        sn: 1.0,
        sp: 1.0,
    },
    ExpectedMembership {
        key: "country",
        sn: 1.0,
        sp: 1.0,
    },
    ExpectedMembership {
        key: "olive",
        sn: 1.0,
        sp: 1.0,
    },
    ExpectedMembership {
        key: "mehl",
        sn: 5.0 / 6.0,
        sp: 5.0 / 6.0,
    },
    ExpectedMembership {
        key: "ashiana",
        sn: 1.0,
        sp: 1.0,
    },
];

// ---------------------------------------------------------------- Table 5
// π̃_{rname, phone, speciality, rating, (sn,sp)}(R_A): values and
// memberships carried over unchanged.

/// Expected evidential cells of Table 5.
pub const TABLE5_CELLS: &[ExpectedCell] = &[
    ExpectedCell {
        key: "garden",
        attr: "speciality",
        labels: &["si"],
        mass: 0.5,
    },
    ExpectedCell {
        key: "garden",
        attr: "rating",
        labels: &["gd"],
        mass: 0.5,
    },
    ExpectedCell {
        key: "wok",
        attr: "speciality",
        labels: &["si"],
        mass: 1.0,
    },
    ExpectedCell {
        key: "wok",
        attr: "rating",
        labels: &["avg"],
        mass: 0.75,
    },
    ExpectedCell {
        key: "country",
        attr: "speciality",
        labels: &["am"],
        mass: 1.0,
    },
    ExpectedCell {
        key: "olive",
        attr: "rating",
        labels: &["gd"],
        mass: 0.5,
    },
    ExpectedCell {
        key: "mehl",
        attr: "speciality",
        labels: &["mu"],
        mass: 0.8,
    },
    ExpectedCell {
        key: "ashiana",
        attr: "speciality",
        labels: &["mu"],
        mass: 0.9,
    },
];

/// Expected memberships of Table 5.
pub const TABLE5_MEMBERSHIP: &[ExpectedMembership] = &[
    ExpectedMembership {
        key: "garden",
        sn: 1.0,
        sp: 1.0,
    },
    ExpectedMembership {
        key: "wok",
        sn: 1.0,
        sp: 1.0,
    },
    ExpectedMembership {
        key: "country",
        sn: 1.0,
        sp: 1.0,
    },
    ExpectedMembership {
        key: "olive",
        sn: 1.0,
        sp: 1.0,
    },
    ExpectedMembership {
        key: "mehl",
        sn: 0.5,
        sp: 0.5,
    },
    ExpectedMembership {
        key: "ashiana",
        sn: 1.0,
        sp: 1.0,
    },
];
