//! Regenerate every table and worked example of the paper and check
//! the numbers.
//!
//! ```text
//! repro_tables              # everything
//! repro_tables --table 4    # one table
//! repro_tables --worked     # the §2.1 / §2.2 / §3.1.1 inline examples
//! ```
//!
//! Exit code 0 iff every check passes.

use evirel_algebra::support::theta_support_with_domain;
use evirel_algebra::ThetaOp;
use evirel_bench::{check_table, compute_table2, compute_table3, compute_table4, compute_table5};
use evirel_evidence::{combine, Frame, MassFunction, Ratio};
use evirel_relation::display::render_table;
use evirel_relation::{AttrDomain, Value};
use evirel_workload::{restaurant_db_a, restaurant_db_b};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = 0usize;
    let mut which_table: Option<u32> = None;
    let mut worked_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--table" => {
                which_table = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 2;
            }
            "--worked" => {
                worked_only = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let run_table = |n: u32| which_table.is_none_or(|w| w == n) && !worked_only;

    if run_table(1) {
        failures += table1();
    }
    if run_table(2) {
        failures += table(
            2,
            "σ̃_{sn>0, speciality is {si}}(R_A)",
            compute_table2(),
            evirel_bench::TABLE2_CELLS,
            evirel_bench::TABLE2_MEMBERSHIP,
        );
    }
    if run_table(3) {
        failures += table(
            3,
            "σ̃_{sn>0, (speciality is {mu}) ∧ (rating is {ex})}(R_A)",
            compute_table3(),
            evirel_bench::TABLE3_CELLS,
            evirel_bench::TABLE3_MEMBERSHIP,
        );
    }
    if run_table(4) {
        failures += table(
            4,
            "R_A ∪̃_(rname) R_B",
            compute_table4(),
            evirel_bench::TABLE4_CELLS,
            evirel_bench::TABLE4_MEMBERSHIP,
        );
    }
    if run_table(5) {
        failures += table(
            5,
            "π̃_{rname, phone, speciality, rating, (sn,sp)}(R_A)",
            compute_table5(),
            evirel_bench::TABLE5_CELLS,
            evirel_bench::TABLE5_MEMBERSHIP,
        );
    }
    if worked_only || which_table.is_none() {
        failures += worked_examples();
    }

    if failures == 0 {
        println!("\nALL CHECKS PASSED");
    } else {
        println!("\n{failures} CHECK(S) FAILED");
        std::process::exit(1);
    }
}

fn table1() -> usize {
    println!("== Table 1: source tables R_A (DB_A) and R_B (DB_B) ==\n");
    let a = restaurant_db_a().restaurants;
    let b = restaurant_db_b().restaurants;
    println!("{}", render_table(&a));
    println!("{}", render_table(&b));
    let ok = a.len() == 6 && b.len() == 5;
    report("Table 1 shape (6 + 5 tuples)", ok);
    usize::from(!ok)
}

fn table(
    n: u32,
    title: &str,
    computed: evirel_relation::ExtendedRelation,
    cells: &[evirel_bench::ExpectedCell],
    memberships: &[evirel_bench::ExpectedMembership],
) -> usize {
    println!("== Table {n}: {title} ==\n");
    println!("{}", render_table(&computed));
    let mut failures = 0;
    for check in check_table(&computed, cells, memberships) {
        if !check.passes() {
            println!(
                "  FAIL {}: expected {:.6}, measured {:.6}",
                check.label, check.expected, check.measured
            );
            failures += 1;
        }
    }
    report(
        &format!(
            "Table {n}: {} cell/membership checks",
            cells.len() + 2 * memberships.len()
        ),
        failures == 0,
    );
    failures
}

fn worked_examples() -> usize {
    let mut failures = 0usize;

    println!("== §2.1 worked example (wok speciality, exact rationals) ==\n");
    let frame = Arc::new(Frame::new(
        "speciality",
        [
            "american",
            "hunan",
            "sichuan",
            "cantonese",
            "mughalai",
            "italian",
        ],
    ));
    let r = |n, d| Ratio::new(n, d).expect("nonzero denominator");
    let m1 = MassFunction::<Ratio>::builder(Arc::clone(&frame))
        .add(["cantonese"], r(1, 2))
        .and_then(|b| b.add(["hunan", "sichuan"], r(1, 3)))
        .map(|b| b.add_omega(r(1, 6)))
        .and_then(|b| b.build())
        .expect("ES1 is well-formed");
    println!("ES1 = {m1}");
    let chs = frame
        .subset(["cantonese", "hunan", "sichuan"])
        .expect("labels in frame");
    let bel = m1.bel(&chs);
    let pls = m1.pls(&chs);
    println!("Bel({{ca,hu,si}}) = {bel}   Pls({{ca,hu,si}}) = {pls}");
    let ok = bel == r(5, 6) && pls == Ratio::ONE;
    report("§2.1: Bel = 5/6, Pls = 1", ok);
    failures += usize::from(!ok);

    println!("\n== §2.2 worked example (m1 ⊕ m2, exact rationals) ==\n");
    let m2 = MassFunction::<Ratio>::builder(Arc::clone(&frame))
        .add(["cantonese", "hunan"], r(1, 2))
        .and_then(|b| b.add(["hunan"], r(1, 4)))
        .map(|b| b.add_omega(r(1, 4)))
        .and_then(|b| b.build())
        .expect("m2 is well-formed");
    let c = combine::dempster(&m1, &m2).expect("not totally conflicting");
    println!("m1 ⊕ m2 = {}", c.mass);
    println!("κ = {}", c.conflict);
    let f = |labels: &[&str]| frame.subset(labels.iter().copied()).expect("labels");
    let checks = [
        ("κ = 1/8", c.conflict == r(1, 8)),
        (
            "m({cantonese}) = 3/7",
            c.mass.mass_of(&f(&["cantonese"])) == r(3, 7),
        ),
        (
            "m({hunan}) = 1/3",
            c.mass.mass_of(&f(&["hunan"])) == r(1, 3),
        ),
        (
            "m({cantonese, hunan}) = 2/21",
            c.mass.mass_of(&f(&["cantonese", "hunan"])) == r(2, 21),
        ),
        (
            "m({hunan, sichuan}) = 2/21",
            c.mass.mass_of(&f(&["hunan", "sichuan"])) == r(2, 21),
        ),
        ("m(Ω) = 1/21", c.mass.mass_of(&frame.omega()) == r(1, 21)),
    ];
    for (label, ok) in checks {
        report(label, ok);
        failures += usize::from(!ok);
    }

    println!("\n== §3.1.1 θ-predicate example ==\n");
    let domain = Arc::new(AttrDomain::integers("n", 1, 8).expect("static domain"));
    let left = vec![
        (vec![Value::int(1), Value::int(4)], 0.6),
        (vec![Value::int(2), Value::int(6)], 0.4),
    ];
    let printed = vec![
        (vec![Value::int(2), Value::int(4)], 0.8),
        (vec![Value::int(5)], 0.2),
    ];
    let sp = theta_support_with_domain(&domain, &left, ThetaOp::Le, &printed)
        .expect("well-formed operands");
    println!(
        "printed operands  [{{1,4}}^0.6, {{2,6}}^0.4] ≤ [{{2,4}}^0.8, 5^0.2]: (sn, sp) = ({}, {})",
        sp.sn(),
        sp.sp()
    );
    let ok = (sp.sn() - 0.12).abs() < 1e-12 && (sp.sp() - 1.0).abs() < 1e-12;
    report(
        "§3.1.1 as printed → (0.12, 1.0) under the paper's own definition",
        ok,
    );
    failures += usize::from(!ok);
    let corrected = vec![
        (vec![Value::int(4), Value::int(7)], 0.8),
        (vec![Value::int(5)], 0.2),
    ];
    let sp = theta_support_with_domain(&domain, &left, ThetaOp::Le, &corrected)
        .expect("well-formed operands");
    println!(
        "corrected operand [{{1,4}}^0.6, {{2,6}}^0.4] ≤ [{{4,7}}^0.8, 5^0.2]: (sn, sp) = ({}, {})",
        sp.sn(),
        sp.sp()
    );
    let ok = (sp.sn() - 0.6).abs() < 1e-12 && (sp.sp() - 1.0).abs() < 1e-12;
    report("§3.1.1 corrected → the paper's printed (0.6, 1.0)", ok);
    failures += usize::from(!ok);

    failures
}

fn report(label: &str, ok: bool) {
    println!("[{}] {label}", if ok { "PASS" } else { "FAIL" });
}
