//! Behavioural sweep series (CSV) — the figure-style counterpart of
//! `repro_tables`.
//!
//! The 1994 paper contains no measurement figures; these sweeps
//! document the *behaviour* of the reproduced system along the axes
//! its design exposes, ready for plotting:
//!
//! * `conflict` — mean Dempster κ and per-approach survival rate vs.
//!   generator conflict bias (the §1.3 comparison);
//! * `sharpening` — nonspecificity (bits) of an integrated attribute
//!   vs. number of combined sources (why integrating more databases
//!   helps);
//! * `overlap` — integrated-relation size and conflict count vs. key
//!   overlap between two sources;
//! * `discount` — post-combination conflict κ vs. source reliability
//!   α (how discounting defuses conflict).
//!
//! ```sh
//! repro_sweeps            # all series
//! repro_sweeps conflict   # one series
//! ```

use evirel_baselines::compare_merge;
use evirel_evidence::{combine, discount, measures, MassFunction};
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use std::sync::Arc;

fn main() {
    let which: Option<String> = std::env::args().nth(1);
    let run = |name: &str| which.as_deref().is_none_or(|w| w == name);
    if run("conflict") {
        conflict_sweep();
    }
    if run("sharpening") {
        sharpening_sweep();
    }
    if run("overlap") {
        overlap_sweep();
    }
    if run("discount") {
        discount_sweep();
    }
}

fn matched_evidence(bias: f64, tuples: usize) -> Vec<(MassFunction<f64>, MassFunction<f64>)> {
    let (a, b) = generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples,
            evidential_attrs: 1,
            omega_mass: 0.0,
            max_focal: 2,
            max_focal_size: 2,
            uncertain_membership: 0.0,
            ..Default::default()
        },
        key_overlap: 1.0,
        conflict_bias: bias,
    })
    .expect("valid generator config");
    a.iter_keyed()
        .filter_map(|(key, ta)| {
            let tb = b.get_by_key(&key)?;
            Some((
                ta.value(1).as_evidential()?.clone(),
                tb.value(1).as_evidential()?.clone(),
            ))
        })
        .collect()
}

/// Series: conflict bias → mean κ, survival rates.
fn conflict_sweep() {
    println!("# series: conflict");
    println!("bias,mean_kappa,evidential_survival,partial_survival,bayes_survival");
    for step in 0..=10 {
        let bias = step as f64 / 10.0;
        let pairs = matched_evidence(bias, 400);
        let mut kappa = 0.0;
        let (mut ev, mut pv, mut by) = (0usize, 0usize, 0usize);
        for (a, b) in &pairs {
            let cmp = compare_merge(a, b).expect("same frame");
            kappa += cmp.kappa;
            ev += usize::from(cmp.evidential.is_some());
            pv += usize::from(cmp.partial.is_some());
            by += usize::from(cmp.prob_bayes_entropy.is_some());
        }
        let n = pairs.len() as f64;
        println!(
            "{bias:.1},{:.4},{:.4},{:.4},{:.4}",
            kappa / n,
            ev as f64 / n,
            pv as f64 / n,
            by as f64 / n
        );
    }
}

/// Series: number of combined sources → mean nonspecificity (bits).
fn sharpening_sweep() {
    println!("# series: sharpening");
    println!("sources,mean_nonspecificity_bits,mean_specificity");
    // Independent overlapping surveys of the same ground truth.
    let domain = evirel_workload::generator::generated_domain(8);
    let mut surveys = Vec::new();
    for seed in 0..8u64 {
        let mut survey = evirel_workload::Survey::new(
            Arc::clone(&domain),
            evirel_workload::SurveyConfig {
                panel_size: 6,
                abstain_rate: 0.15,
                ambiguity_rate: 0.25,
                seed,
            },
        );
        let per_entity: Vec<MassFunction<f64>> = (0..50)
            .map(|e| {
                survey
                    .conduct(e % 8, 0.2)
                    .expect("valid survey")
                    .as_evidential()
                    .expect("survey yields evidence")
                    .clone()
            })
            .collect();
        surveys.push(per_entity);
    }
    for k in 1..=surveys.len() {
        let mut nonspec = 0.0;
        let mut spec = 0.0;
        let mut n = 0usize;
        for entity in 0..50 {
            let sources: Vec<&MassFunction<f64>> =
                surveys[..k].iter().map(|s| &s[entity]).collect();
            match combine::dempster_all(sources) {
                Ok(c) => {
                    nonspec += measures::nonspecificity(&c.mass);
                    spec += measures::specificity(&c.mass);
                    n += 1;
                }
                Err(_) => continue,
            }
        }
        println!("{k},{:.4},{:.4}", nonspec / n as f64, spec / n as f64);
    }
}

/// Series: key overlap → integrated size, matched count, conflicts.
fn overlap_sweep() {
    println!("# series: overlap");
    println!("overlap,integrated_tuples,matched,conflicts,mean_kappa");
    for step in 0..=10 {
        let overlap = step as f64 / 10.0;
        let (a, b) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples: 500,
                ..Default::default()
            },
            key_overlap: overlap,
            conflict_bias: 0.0,
        })
        .expect("valid generator config");
        let out = evirel_algebra::union_extended(&a, &b).expect("Ω floor prevents total conflict");
        let matched = a.keys().filter(|k| b.contains_key(k)).count();
        println!(
            "{overlap:.1},{},{},{},{:.4}",
            out.relation.len(),
            matched,
            out.report.len(),
            out.report.mean_kappa()
        );
    }
}

/// Series: reliability α → κ between two discounted contradicting
/// sources, and the resulting belief in the left source's value.
fn discount_sweep() {
    println!("# series: discount");
    println!("alpha,kappa,bel_left_value");
    let frame = Arc::new(evirel_evidence::Frame::new("d", ["x", "y", "z"]));
    let a = MassFunction::<f64>::certain(Arc::clone(&frame), "x").expect("label in frame");
    let b = MassFunction::<f64>::certain(Arc::clone(&frame), "y").expect("label in frame");
    let x = frame.subset(["x"]).expect("label in frame");
    for step in 0..=10 {
        let alpha = step as f64 / 10.0;
        let da = discount::discount(&a, &alpha).expect("alpha in range");
        let db = discount::discount(&b, &alpha).expect("alpha in range");
        match combine::dempster(&da, &db) {
            Ok(c) => println!("{alpha:.1},{:.4},{:.4}", c.conflict, c.mass.bel(&x)),
            Err(_) => println!("{alpha:.1},1.0000,NaN"),
        }
    }
}
