//! # evirel-bench — expected paper values and reproduction checks
//!
//! The expected numbers from every table and worked example of
//! Lim, Srivastava & Shekhar (ICDE 1994), plus checker functions the
//! `repro_tables` binary and the integration tests share. Values are
//! stated exactly as derivable from Dempster's rule (the paper prints
//! 3-decimal roundings of these).

pub mod expected;

pub use expected::*;

use evirel_algebra::{select, union_extended, Predicate, Threshold};
use evirel_relation::{ExtendedRelation, Value};
use evirel_workload::{restaurant_db_a, restaurant_db_b};

/// Tolerance used when comparing measured f64 values against the
/// exact expectations.
pub const TOL: f64 = 1e-9;

/// One per-cell check result.
#[derive(Debug, Clone)]
pub struct Check {
    /// What was checked, e.g. `"garden.speciality[si]"`.
    pub label: String,
    /// Expected value.
    pub expected: f64,
    /// Measured value.
    pub measured: f64,
}

impl Check {
    /// `true` when measured matches expected within [`TOL`].
    pub fn passes(&self) -> bool {
        (self.expected - self.measured).abs() < TOL
    }
}

/// Compute the paper's Table 2: σ̃_{sn>0, speciality is {si}}(R_A).
pub fn compute_table2() -> ExtendedRelation {
    let ra = restaurant_db_a().restaurants;
    select(
        &ra,
        &Predicate::is("speciality", ["si"]),
        &Threshold::POSITIVE,
    )
    .expect("table 2 selection")
}

/// Compute the paper's Table 3:
/// σ̃_{sn>0, (speciality is {mu}) ∧ (rating is {ex})}(R_A).
pub fn compute_table3() -> ExtendedRelation {
    let ra = restaurant_db_a().restaurants;
    select(
        &ra,
        &Predicate::is("speciality", ["mu"]).and(Predicate::is("rating", ["ex"])),
        &Threshold::POSITIVE,
    )
    .expect("table 3 selection")
}

/// Compute the paper's Table 4: R_A ∪̃_(rname) R_B.
pub fn compute_table4() -> ExtendedRelation {
    let ra = restaurant_db_a().restaurants;
    let rb = restaurant_db_b().restaurants;
    union_extended(&ra, &rb).expect("table 4 union").relation
}

/// Compute the paper's Table 5:
/// π̃_{rname, phone, speciality, rating, (sn,sp)}(R_A).
pub fn compute_table5() -> ExtendedRelation {
    let ra = restaurant_db_a().restaurants;
    evirel_algebra::project(&ra, &["rname", "phone", "speciality", "rating"])
        .expect("table 5 projection")
}

/// Extract the mass of a (speciality/best-dish/rating) focal set from
/// a relation cell, by attribute name and labels.
pub fn mass_in(rel: &ExtendedRelation, key: &str, attr: &str, labels: &[&str]) -> f64 {
    let tuple = rel
        .get_by_key(&[Value::str(key)])
        .unwrap_or_else(|| panic!("tuple {key} missing"));
    let pos = rel.schema().position(attr).expect("attribute exists");
    let m = tuple
        .value(pos)
        .as_evidential()
        .unwrap_or_else(|| panic!("{key}.{attr} is not evidential"));
    let domain = rel.schema().attr(pos).ty().domain().expect("evidential");
    if labels == ["Ω"] {
        return m.mass_of(&domain.frame().omega());
    }
    let values: Vec<Value> = labels.iter().map(|l| Value::str(*l)).collect();
    let set = domain
        .subset_of_values(values.iter())
        .expect("labels in domain");
    m.mass_of(&set)
}

/// Membership pair of a keyed tuple.
pub fn membership_of(rel: &ExtendedRelation, key: &str) -> (f64, f64) {
    let t = rel
        .get_by_key(&[Value::str(key)])
        .unwrap_or_else(|| panic!("tuple {key} missing"));
    (t.membership().sn(), t.membership().sp())
}

/// Run every expectation of one table against a computed relation.
pub fn check_table(
    computed: &ExtendedRelation,
    cells: &[ExpectedCell],
    memberships: &[ExpectedMembership],
) -> Vec<Check> {
    let mut out = Vec::new();
    for cell in cells {
        out.push(Check {
            label: format!("{}.{}{:?}", cell.key, cell.attr, cell.labels),
            expected: cell.mass,
            measured: mass_in(computed, cell.key, cell.attr, cell.labels),
        });
    }
    for m in memberships {
        let (sn, sp) = membership_of(computed, m.key);
        out.push(Check {
            label: format!("{}.(sn)", m.key),
            expected: m.sn,
            measured: sn,
        });
        out.push(Check {
            label: format!("{}.(sp)", m.key),
            expected: m.sp,
            measured: sp,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_table_checks_pass() {
        for (cells, members, compute) in [
            (
                expected::TABLE2_CELLS,
                expected::TABLE2_MEMBERSHIP,
                compute_table2 as fn() -> ExtendedRelation,
            ),
            (
                expected::TABLE3_CELLS,
                expected::TABLE3_MEMBERSHIP,
                compute_table3,
            ),
            (
                expected::TABLE4_CELLS,
                expected::TABLE4_MEMBERSHIP,
                compute_table4,
            ),
            (
                expected::TABLE5_CELLS,
                expected::TABLE5_MEMBERSHIP,
                compute_table5,
            ),
        ] {
            let rel = compute();
            for check in check_table(&rel, cells, members) {
                assert!(
                    check.passes(),
                    "{}: expected {}, measured {}",
                    check.label,
                    check.expected,
                    check.measured
                );
            }
        }
    }

    #[test]
    fn table_shapes() {
        assert_eq!(compute_table2().len(), 2);
        assert_eq!(compute_table3().len(), 2);
        assert_eq!(compute_table4().len(), 6);
        assert_eq!(compute_table5().len(), 6);
        assert_eq!(compute_table5().schema().arity(), 4);
    }
}
