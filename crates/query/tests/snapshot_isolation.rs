//! Concurrency properties of the epoch-snapshot catalog.
//!
//! 1. **No half-swapped reads** (proptest): writers republish a
//!    *pair* of bindings (`left`, `right`) derived from one version
//!    number in a single [`SharedCatalog::update`]; concurrent
//!    readers union both sides and must only ever observe tuples of
//!    a single version. Seeing version i on one side and j ≠ i on the
//!    other would mean a reader caught the catalog mid-swap — the
//!    exact anomaly the RCU-style generation publish forbids.
//! 2. **Pool sharing**: 8 sessions hammer one 4 KiB
//!    [`evirel_store::BufferPool`] through disk-backed bindings;
//!    every session's result must bit-match the sequential reference
//!    no matter how the (tiny) pool thrashes underneath them.

use evirel_query::{Catalog, PlanCache, Session, SessionBudget, SharedCatalog};
use evirel_relation::{AttrDomain, ExtendedRelation, RelationBuilder, Schema};
use evirel_store::BufferPool;
use evirel_workload::generator::{generate, GeneratorConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One side of a versioned binding pair. Keys are `v<version>-<side>-<i>`
/// so a result's version set is readable straight off its keys.
fn versioned(version: u64, side: &str) -> ExtendedRelation {
    let domain = Arc::new(AttrDomain::categorical("d", ["a", "b", "c"]).expect("static domain"));
    let schema = Arc::new(
        Schema::builder(format!("V{side}"))
            .key_str("k")
            .evidential("e", domain)
            .build()
            .expect("static schema"),
    );
    let mut builder = RelationBuilder::new(schema);
    for i in 0..4 {
        builder = builder
            .tuple(|t| {
                t.set_str("k", format!("v{version}-{side}-{i}"))
                    .set_evidence("e", [(&["a"][..], 1.0)])
            })
            .expect("tuple is valid");
    }
    builder.build()
}

/// Every distinct version number appearing in the relation's keys.
fn observed_versions(rel: &ExtendedRelation) -> BTreeSet<u64> {
    let mut versions = BTreeSet::new();
    for key in rel.keys() {
        let rendered = format!("{key:?}");
        let start = rendered.find('v').expect("versioned key") + 1;
        let digits: String = rendered[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        versions.insert(digits.parse::<u64>().expect("versioned key"));
    }
    versions
}

proptest! {
    // Each case spins up real threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn readers_never_observe_a_half_swapped_catalog(
        writers in 1usize..4,
        updates_per_writer in 2u64..6,
        readers in 2usize..6,
        reads_per_reader in 4usize..12,
    ) {
        let mut catalog = Catalog::new();
        catalog.register("left", versioned(0, "l"));
        catalog.register("right", versioned(0, "r"));
        let shared = Arc::new(SharedCatalog::new(catalog));
        let cache = Arc::new(PlanCache::default());
        let next_version = AtomicU64::new(1);

        let observed: Vec<BTreeSet<u64>> = std::thread::scope(|scope| {
            for _ in 0..writers {
                let shared = Arc::clone(&shared);
                let next_version = &next_version;
                scope.spawn(move || {
                    for _ in 0..updates_per_writer {
                        let v = next_version.fetch_add(1, Ordering::Relaxed);
                        shared
                            .update(|c| {
                                // Both sides replaced in ONE publish:
                                // this is the atomicity the readers
                                // assert on.
                                c.register("left", versioned(v, "l"));
                                c.register("right", versioned(v, "r"));
                                Ok(())
                            })
                            .expect("writer publishes");
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..readers {
                let session =
                    Session::new(Arc::clone(&shared), Arc::clone(&cache));
                handles.push(scope.spawn(move || {
                    let mut seen = Vec::new();
                    for _ in 0..reads_per_reader {
                        let out = session
                            .query("SELECT * FROM left UNION right")
                            .expect("reads never fail mid-swap");
                        seen.push(observed_versions(&out.outcome.relation));
                    }
                    seen
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("reader thread"))
                .collect()
        });

        for versions in &observed {
            prop_assert_eq!(
                versions.len(),
                1,
                "a read observed tuples from {} catalog versions at once: {:?}",
                versions.len(),
                versions
            );
        }
    }
}

proptest! {
    // Each case spins up real threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two catalogs, one generation stream: a primary writer
    /// republishes the versioned pair with explicit stamps, a mirror
    /// thread subscribes via [`SharedCatalog::wait_newer`] and
    /// republishes every snapshot it observes into a **follower**
    /// `SharedCatalog` at the primary's generation — exactly the
    /// subscribe/apply shape of `evirel-serve`'s replication path.
    /// Readers pinned to the follower must (a) never observe a
    /// mixed-version pair (the stamped publish is as atomic as the
    /// auto-incremented one) and (b) never travel backwards in time
    /// across consecutive reads, even while the mirror is applying.
    #[test]
    fn follower_readers_never_observe_mixed_versions_or_time_travel(
        updates in 4u64..16,
        readers in 2usize..5,
        reads_per_reader in 6usize..16,
    ) {
        let mut primary_catalog = Catalog::new();
        primary_catalog.register("left", versioned(0, "l"));
        primary_catalog.register("right", versioned(0, "r"));
        let primary = Arc::new(SharedCatalog::new(primary_catalog));
        let mut follower_catalog = Catalog::new();
        follower_catalog.register("left", versioned(0, "l"));
        follower_catalog.register("right", versioned(0, "r"));
        let follower = Arc::new(SharedCatalog::new(follower_catalog));
        let cache = Arc::new(PlanCache::default());

        let observed: Vec<Vec<BTreeSet<u64>>> = std::thread::scope(|scope| {
            scope.spawn({
                let primary = Arc::clone(&primary);
                move || {
                    for v in 1..=updates {
                        primary
                            .update_stamped(v, |c| {
                                c.register("left", versioned(v, "l"));
                                c.register("right", versioned(v, "r"));
                                Ok(())
                            })
                            .expect("primary publishes");
                    }
                }
            });
            scope.spawn({
                let primary = Arc::clone(&primary);
                let follower = Arc::clone(&follower);
                move || {
                    // The mirror may observe only a subset of the
                    // primary's generations (wait_newer hands back the
                    // *latest* snapshot) — stamped publishes tolerate
                    // skips, just never regressions.
                    let mut seen = 0;
                    while seen < updates {
                        let snapshot = primary
                            .wait_newer(seen, std::time::Duration::from_secs(10))
                            .expect("publish signal arrives");
                        let g = snapshot.generation();
                        follower
                            .update_stamped(g, |c| {
                                c.register("left", versioned(g, "l"));
                                c.register("right", versioned(g, "r"));
                                Ok(())
                            })
                            .expect("mirror publishes");
                        seen = g;
                    }
                }
            });
            let mut handles = Vec::new();
            for _ in 0..readers {
                let session =
                    Session::new(Arc::clone(&follower), Arc::clone(&cache));
                handles.push(scope.spawn(move || {
                    let mut seen = Vec::new();
                    for _ in 0..reads_per_reader {
                        let out = session
                            .query("SELECT * FROM left UNION right")
                            .expect("follower reads never fail mid-apply");
                        seen.push(observed_versions(&out.outcome.relation));
                    }
                    seen
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("reader thread"))
                .collect()
        });

        for reader in &observed {
            let mut last = 0u64;
            for versions in reader {
                prop_assert_eq!(
                    versions.len(),
                    1,
                    "a follower read observed tuples from {} versions at once: {:?}",
                    versions.len(),
                    versions
                );
                let v = *versions.iter().next().expect("non-empty");
                prop_assert!(
                    v >= last,
                    "a follower reader travelled backwards in time: \
                     version {v} after {last}"
                );
                last = v;
            }
        }
        // The mirror drained the whole stream: both catalogs end on
        // the same generation.
        prop_assert_eq!(follower.generation(), primary.generation());
    }
}

#[test]
fn eight_sessions_share_one_4k_buffer_pool() {
    const SESSIONS: usize = 8;
    const POOL_BYTES: usize = 4096;

    // Disk-backed bindings over a deliberately starved pool: the
    // segments are far bigger than 4 KiB, so concurrent scans evict
    // each other's pages constantly.
    let mut catalog = Catalog::new();
    catalog.pool = Arc::new(BufferPool::new(POOL_BYTES));
    let rel_a = generate(
        "SA",
        &GeneratorConfig {
            tuples: 256,
            seed: 11,
            ..GeneratorConfig::default()
        },
    )
    .expect("generator config is valid");
    let rel_b = generate(
        "SB",
        &GeneratorConfig {
            tuples: 256,
            seed: 12,
            ..GeneratorConfig::default()
        },
    )
    .expect("generator config is valid");
    let path_a = evirel_store::spill_path("snap-pool-a");
    let path_b = evirel_store::spill_path("snap-pool-b");
    evirel_store::write_segment(&rel_a, &path_a, 512).expect("segment writes");
    evirel_store::write_segment(&rel_b, &path_b, 512).expect("segment writes");
    catalog.attach_stored("sa", &path_a).expect("attach sa");
    catalog.attach_stored("sb", &path_b).expect("attach sb");

    let shared = Arc::new(SharedCatalog::new(catalog));
    let cache = Arc::new(PlanCache::default());
    let queries = [
        "SELECT * FROM sa WITH SN > 0",
        "SELECT * FROM sb WITH SN > 0",
        "SELECT * FROM sa UNION sb WITH SN > 0.3",
    ];

    // Sequential reference results, computed before the stampede.
    let reference_session = Session::new(Arc::clone(&shared), Arc::clone(&cache));
    let reference: Vec<ExtendedRelation> = queries
        .iter()
        .map(|q| {
            reference_session
                .query(q)
                .expect("reference run")
                .outcome
                .relation
        })
        .collect();

    std::thread::scope(|scope| {
        for sid in 0..SESSIONS {
            let shared = Arc::clone(&shared);
            let cache = Arc::clone(&cache);
            let reference = &reference;
            scope.spawn(move || {
                // Every session gets its carved share of the (tiny)
                // budgets — the serve worker-pool configuration.
                let session = Session::with_budget(
                    shared,
                    cache,
                    SessionBudget::share_of(SESSIONS, POOL_BYTES, SESSIONS),
                );
                for round in 0..6 {
                    let qi = (sid + round) % queries.len();
                    let out = session.query(queries[qi]).expect("pool-starved query");
                    assert!(
                        out.outcome.relation.approx_eq(&reference[qi]),
                        "session {sid} round {round}: result diverged under pool pressure"
                    );
                }
            });
        }
    });

    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}
