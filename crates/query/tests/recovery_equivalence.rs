//! Recovery equivalence: for any sequence of journaled catalog
//! mutations, replaying the data directory from disk must produce
//! exactly the catalog an in-memory application of the same mutations
//! produces — same binding set, same schemas, same tuples bit for
//! bit, same generation counter — including when the sequence is
//! interrupted by a simulated restart (close + reopen) mid-way.

use evirel_query::{Catalog, DurableCatalog, SharedCatalog};
use evirel_relation::ExtendedRelation;
use evirel_workload::generator::{generate, GeneratorConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "evirel-recoveq-{}-{label}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// One scripted mutation. `Restart` closes the durable handle and
/// shared catalog and reopens both from disk — the crash/reboot
/// boundary under test (with a clean journal tail; torn tails are the
/// store crash-injection suite's job).
#[derive(Debug, Clone)]
enum Op {
    Bind {
        name: String,
        seed: u64,
        tuples: usize,
    },
    Drop {
        name: String,
    },
    Checkpoint,
    Restart,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..40, 1usize..10).prop_map(|(seed, tuples)| Op::Bind {
            name: format!("r{}", seed % 4),
            seed,
            tuples,
        }),
        (0u64..40, 2usize..12).prop_map(|(seed, tuples)| Op::Bind {
            name: format!("r{}", seed % 4),
            seed,
            tuples,
        }),
        (0u64..4).prop_map(|n| Op::Drop {
            name: format!("r{n}")
        }),
        Just(Op::Checkpoint),
        Just(Op::Restart),
    ]
}

fn rel(seed: u64, tuples: usize) -> ExtendedRelation {
    generate(
        "R",
        &GeneratorConfig {
            tuples,
            domain_size: 5,
            evidential_attrs: 1,
            max_focal: 2,
            max_focal_size: 2,
            omega_mass: 0.2,
            uncertain_membership: 0.25,
            seed,
        },
    )
    .expect("generator config is valid")
}

/// Bit-for-bit relation equality: values plus raw membership bits.
fn assert_rel_eq(name: &str, a: &ExtendedRelation, b: &ExtendedRelation) {
    assert_eq!(a.len(), b.len(), "{name}: tuple count");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.values(), y.values(), "{name}[{i}]: values");
        assert_eq!(
            x.membership().sn().to_bits(),
            y.membership().sn().to_bits(),
            "{name}[{i}]: sn bits"
        );
        assert_eq!(
            x.membership().sp().to_bits(),
            y.membership().sp().to_bits(),
            "{name}[{i}]: sp bits"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Disk replay ≡ fresh in-memory application, at every prefix the
    /// `Restart` boundaries cut the script into.
    #[test]
    fn disk_replay_equals_in_memory_catalog(
        script in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let dir = fresh_dir("script");

        // Durable side: a SharedCatalog + DurableCatalog pair driven
        // exactly the way evirel-serve drives them (record inside the
        // update_at closure, before registering in the clone).
        let (mut durable, recovered) = DurableCatalog::open(&dir).unwrap();
        let mut shared = SharedCatalog::with_generation(recovered, 0);

        // Oracle side: a plain in-memory catalog + generation counter.
        let mut oracle = Catalog::new();
        let mut oracle_generation = 0u64;

        for op in &script {
            match op {
                Op::Bind { name, seed, tuples } => {
                    let r = rel(*seed, *tuples);
                    let d = &mut durable;
                    shared
                        .update_at(|catalog, generation| {
                            let path = d.record_bind(name, &r, generation)?;
                            catalog.attach_stored(name.clone(), path)?;
                            Ok(())
                        })
                        .unwrap();
                    oracle.register(name.clone(), r);
                    oracle_generation += 1;
                }
                Op::Drop { name } => {
                    let d = &mut durable;
                    shared
                        .update_at(|catalog, generation| {
                            d.record_drop(name, generation)?;
                            catalog.deregister(name);
                            Ok(())
                        })
                        .unwrap();
                    oracle.deregister(name);
                    oracle_generation += 1;
                }
                Op::Checkpoint => {
                    durable.checkpoint().unwrap();
                }
                Op::Restart => {
                    // Close everything and recover purely from disk.
                    drop(durable);
                    let (d2, catalog) = DurableCatalog::open(&dir).unwrap();
                    prop_assert_eq!(
                        d2.recovered_generation(),
                        oracle_generation,
                        "generation counter must survive the restart"
                    );
                    durable = d2;
                    shared = SharedCatalog::with_generation(
                        catalog,
                        durable.recovered_generation(),
                    );
                }
            }

            // Invariant after every op: live view ≡ oracle, and the
            // published generation tracks the mutation count.
            let pinned = shared.pin();
            prop_assert_eq!(pinned.generation(), oracle_generation);
            prop_assert_eq!(pinned.catalog().names(), oracle.names());
        }

        // Final restart: the recovered catalog equals the oracle bit
        // for bit.
        drop(durable);
        let (durable, catalog) = DurableCatalog::open(&dir).unwrap();
        prop_assert_eq!(durable.recovered_generation(), oracle_generation);
        prop_assert_eq!(catalog.names(), oracle.names());
        for name in oracle.names() {
            let got = catalog.materialize(name).unwrap();
            let want = oracle.materialize(name).unwrap();
            assert_rel_eq(name, &want, &got);
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The serve-shaped happy path, spelled out once without proptest:
/// bind → checkpoint → bind → reopen recovers both bindings and the
/// exact generation, and stats counters move.
#[test]
fn open_bind_checkpoint_reopen_roundtrip() {
    let dir = fresh_dir("roundtrip");
    {
        let (mut durable, recovered) = DurableCatalog::open(&dir).unwrap();
        assert_eq!(durable.recovered_generation(), 0);
        assert!(recovered.is_empty());
        let shared = SharedCatalog::with_generation(recovered, 0);

        let ra = rel(7, 6);
        let d = &mut durable;
        shared
            .update_at(|catalog, generation| {
                let path = d.record_bind("ra", &ra, generation)?;
                catalog.attach_stored("ra", path)?;
                Ok(())
            })
            .unwrap();
        assert_eq!(durable.stats().journal_records, 1);

        durable.checkpoint().unwrap();
        assert_eq!(durable.stats().journal_records, 0);
        assert_eq!(durable.stats().checkpoints, 1);

        let rb = rel(9, 4);
        let d = &mut durable;
        shared
            .update_at(|catalog, generation| {
                let path = d.record_bind("rb", &rb, generation)?;
                catalog.attach_stored("rb", path)?;
                Ok(())
            })
            .unwrap();
        assert_eq!(durable.committed_generation(), 2);
    }
    // "Crash" (drop without checkpoint) and recover: the manifest has
    // generation 1, the journal supplies generation 2.
    let (durable, catalog) = DurableCatalog::open(&dir).unwrap();
    assert_eq!(durable.recovered_generation(), 2);
    assert_eq!(catalog.names(), vec!["ra", "rb"]);
    assert_eq!(catalog.materialize("ra").unwrap().len(), 6);
    assert_eq!(catalog.materialize("rb").unwrap().len(), 4);
    // Planner statistics survive checkpoint → kill → recover: the
    // recovered attachments expose the stats section persisted at
    // segment-write time, byte-identical to stats recomputed from the
    // recovered extension.
    for name in ["ra", "rb"] {
        let stats = catalog
            .stats_for(name)
            .unwrap_or_else(|| panic!("{name}: no stats after recovery"));
        let recomputed = evirel_store::compute_stats(&catalog.materialize(name).unwrap());
        let mut a = Vec::new();
        let mut b = Vec::new();
        stats.encode(&mut a);
        recomputed.encode(&mut b);
        assert_eq!(a, b, "{name}: recovered stats diverge from recomputed");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A recovered stored binding is queryable through the normal session
/// path, and checkpoint GC leaves exactly the referenced segments.
#[test]
fn recovered_bindings_are_queryable_and_gc_prunes() {
    let dir = fresh_dir("query");
    {
        let (mut durable, recovered) = DurableCatalog::open(&dir).unwrap();
        let shared = SharedCatalog::with_generation(recovered, 0);
        // Rebind the same name three times: two segments become
        // garbage for the checkpoint to collect.
        for seed in [1u64, 2, 3] {
            let r = rel(seed, 5);
            let d = &mut durable;
            shared
                .update_at(|catalog, generation| {
                    let path = d.record_bind("g", &r, generation)?;
                    catalog.attach_stored("g", path)?;
                    Ok(())
                })
                .unwrap();
        }
        let outcome = durable.checkpoint().unwrap();
        assert_eq!(outcome.files_removed, 2, "two superseded segments GC'd");
    }
    let (_durable, catalog) = DurableCatalog::open(&dir).unwrap();
    let segs: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(str::to_owned))
        .filter(|n| n.ends_with(".evb"))
        .collect();
    assert_eq!(segs.len(), 1, "exactly the live segment survives: {segs:?}");
    let got = evirel_query::execute(&catalog, "SELECT * FROM g WITH SN > 0").unwrap();
    let want = evirel_query::execute(
        &{
            let mut c = Catalog::new();
            c.register("g", rel(3, 5));
            c
        },
        "SELECT * FROM g WITH SN > 0",
    )
    .unwrap();
    assert!(got.approx_eq(&want));
    std::fs::remove_dir_all(&dir).ok();
}
