//! Replication equivalence, proptest-driven: for any sequence of
//! durable catalog mutations on a primary, any pattern of replication
//! round timing, and any crash cut-point on the follower, applying
//! the primary's generation stream (tail records and/or full-state
//! resyncs) must leave the follower **bit-for-bit** equal to the
//! primary — same committed generation, same manifest entries, same
//! segment bytes, same materialized tuples — at every synchronized
//! point, with no replicated record ever applied twice or skipped.
//!
//! This is the wire-free half of the replication test stack: it
//! drives [`DurableCatalog::stream_plan`] /
//! [`DurableCatalog::apply_replicated`] /
//! [`DurableCatalog::install_snapshot`] and
//! [`SharedCatalog::update_stamped`] directly, exactly the way
//! `evirel-serve`'s replication module does. The socket framing,
//! torn-frame, and kill-mid-apply variants live in the serve crate's
//! `replication_faults` suite.

use evirel_query::{DurableCatalog, SharedCatalog, StreamPlan};
use evirel_relation::ExtendedRelation;
use evirel_store::JournalRecord;
use evirel_workload::generator::{generate, GeneratorConfig};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "evirel-repleq-{}-{label}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[derive(Debug, Clone)]
enum Op {
    Bind {
        name: String,
        seed: u64,
        tuples: usize,
    },
    Drop {
        name: String,
    },
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! is unweighted; bias toward binds by
    // listing the strategy twice.
    prop_oneof![
        (0u64..40, 1usize..10).prop_map(|(seed, tuples)| Op::Bind {
            name: format!("r{}", seed % 4),
            seed,
            tuples,
        }),
        (10u64..40, 2usize..8).prop_map(|(seed, tuples)| Op::Bind {
            name: format!("r{}", seed % 4),
            seed,
            tuples,
        }),
        (0u64..4).prop_map(|n| Op::Drop {
            name: format!("r{n}")
        }),
        Just(Op::Checkpoint),
    ]
}

fn rel(seed: u64, tuples: usize) -> ExtendedRelation {
    generate(
        "R",
        &GeneratorConfig {
            tuples,
            domain_size: 5,
            evidential_attrs: 1,
            max_focal: 2,
            max_focal_size: 2,
            omega_mass: 0.2,
            uncertain_membership: 0.25,
            seed,
        },
    )
    .expect("generator config is valid")
}

/// The follower half: its own directory, durable catalog, and
/// published catalog.
struct Follower {
    dir: PathBuf,
    durable: DurableCatalog,
    shared: SharedCatalog,
}

impl Follower {
    fn open(dir: PathBuf) -> Follower {
        let (durable, recovered) = DurableCatalog::open(&dir).expect("follower dir recovers");
        let generation = durable.recovered_generation();
        Follower {
            dir,
            durable,
            shared: SharedCatalog::with_generation(recovered, generation),
        }
    }

    /// Crash (drop everything in memory) and reboot from disk alone.
    fn crash_and_reopen(self) -> Follower {
        let dir = self.dir.clone();
        drop(self);
        Follower::open(dir)
    }

    /// Apply one record the way the serve replication module does:
    /// durable journal + fsync first, catalog publish at the
    /// primary's generation second.
    fn apply(&mut self, primary_dir: &Path, record: &JournalRecord) {
        if let JournalRecord::Bind { file, .. } = record {
            std::fs::copy(primary_dir.join(file), self.dir.join(file)).expect("segment ships");
        }
        self.durable
            .apply_replicated(record)
            .expect("replicated record applies");
        let generation = record.generation();
        match record {
            JournalRecord::Bind { name, file, .. } => {
                let path = self.dir.join(file);
                self.shared
                    .update_stamped(generation, |catalog| {
                        catalog.attach_stored(name.clone(), &path)
                    })
                    .expect("bind publishes");
            }
            JournalRecord::Drop { name, .. } => {
                self.shared
                    .update_stamped(generation, |catalog| {
                        catalog.deregister(name);
                        Ok(())
                    })
                    .expect("drop publishes");
            }
        }
    }

    /// One full replication round: plan from the current cursor and
    /// apply everything. `partial` limits how many tail records are
    /// applied (a crash mid-round); `None` applies the whole plan.
    fn sync(&mut self, primary: &DurableCatalog, primary_dir: &Path, partial: Option<usize>) {
        let cursor = self.durable.committed_generation();
        match primary.stream_plan(cursor) {
            StreamPlan::Tail(records) => {
                let take = partial.unwrap_or(records.len());
                for record in records.iter().take(take) {
                    self.apply(primary_dir, record);
                }
            }
            StreamPlan::Resync {
                generation,
                entries,
            } => {
                for entry in &entries {
                    if entry.generation > cursor {
                        std::fs::copy(primary_dir.join(&entry.file), self.dir.join(&entry.file))
                            .expect("resync segment ships");
                    }
                }
                let stale: Vec<String> = self
                    .durable
                    .entries()
                    .map(|e| e.name.clone())
                    .filter(|n| !entries.iter().any(|e| &e.name == n))
                    .collect();
                self.durable
                    .install_snapshot(generation, entries.clone())
                    .expect("snapshot installs");
                self.shared
                    .update_stamped(generation, |catalog| {
                        for name in &stale {
                            catalog.deregister(name);
                        }
                        for entry in &entries {
                            catalog
                                .attach_stored(entry.name.clone(), self.dir.join(&entry.file))?;
                        }
                        Ok(())
                    })
                    .expect("snapshot publishes");
            }
        }
    }
}

/// Bit-for-bit equality of primary and follower: committed
/// generation, manifest entries, raw segment bytes, published
/// catalog generation, and materialized tuples.
fn assert_converged(
    primary: &DurableCatalog,
    primary_dir: &Path,
    primary_shared: &SharedCatalog,
    follower: &Follower,
) {
    assert_eq!(
        follower.durable.committed_generation(),
        primary.committed_generation(),
        "committed generations diverge"
    );
    let p_entries: Vec<_> = primary.entries().cloned().collect();
    let f_entries: Vec<_> = follower.durable.entries().cloned().collect();
    assert_eq!(p_entries, f_entries, "manifest entries diverge");
    for entry in &p_entries {
        let want = std::fs::read(primary_dir.join(&entry.file)).expect("primary segment reads");
        let got = std::fs::read(follower.dir.join(&entry.file)).expect("follower segment reads");
        assert_eq!(want, got, "segment {} bytes diverge", entry.file);
    }
    assert_eq!(
        follower.shared.generation(),
        primary_shared.generation(),
        "published generations diverge"
    );
    let p_pin = primary_shared.pin();
    let f_pin = follower.shared.pin();
    for entry in &p_entries {
        let want = p_pin
            .catalog()
            .materialize(&entry.name)
            .expect("primary materializes");
        let got = f_pin
            .catalog()
            .materialize(&entry.name)
            .expect("follower materializes");
        assert_eq!(want.len(), got.len(), "{}: tuple count", entry.name);
        for (i, (x, y)) in want.iter().zip(got.iter()).enumerate() {
            assert_eq!(x.values(), y.values(), "{}[{i}]: values", entry.name);
            assert_eq!(
                x.membership().sn().to_bits(),
                y.membership().sn().to_bits(),
                "{}[{i}]: sn bits",
                entry.name
            );
            assert_eq!(
                x.membership().sp().to_bits(),
                y.membership().sp().to_bits(),
                "{}[{i}]: sp bits",
                entry.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any script, any sync cadence, any crash cut → the follower
    /// converges bit-for-bit at every synchronized point and never
    /// double-applies or skips a generation across its crash.
    #[test]
    fn follower_converges_bit_for_bit_across_any_cut(
        script in proptest::collection::vec(op_strategy(), 1..10),
        sync_bits in 0u32..1024,
        cut in 0usize..10,
        partial in 0usize..3,
    ) {
        let pdir = fresh_dir("primary");
        let fdir = fresh_dir("follower");
        let (mut primary, recovered) = DurableCatalog::open(&pdir).unwrap();
        let primary_shared = SharedCatalog::with_generation(recovered, 0);
        let mut follower = Some(Follower::open(fdir));

        for (i, op) in script.iter().enumerate() {
            match op {
                Op::Bind { name, seed, tuples } => {
                    let r = rel(*seed, *tuples);
                    let d = &mut primary;
                    primary_shared
                        .update_at(|catalog, generation| {
                            let path = d.record_bind(name, &r, generation)?;
                            catalog.attach_stored(name.clone(), path)?;
                            Ok(())
                        })
                        .unwrap();
                }
                Op::Drop { name } => {
                    let d = &mut primary;
                    primary_shared
                        .update_at(|catalog, generation| {
                            d.record_drop(name, generation)?;
                            catalog.deregister(name);
                            Ok(())
                        })
                        .unwrap();
                }
                Op::Checkpoint => {
                    primary.checkpoint().unwrap();
                }
            }

            if i == cut {
                // Crash the follower mid-round: apply only a prefix
                // of the pending tail, drop every in-memory handle,
                // and reboot from the follower's own disk.
                let mut f = follower.take().unwrap();
                f.sync(&primary, &pdir, Some(partial));
                follower = Some(f.crash_and_reopen());
            }
            if sync_bits >> (i % 10) & 1 == 1 {
                let f = follower.as_mut().unwrap();
                f.sync(&primary, &pdir, None);
                assert_converged(&primary, &pdir, &primary_shared, f);
            }
        }

        // Whatever the cadence left behind, one final round converges.
        let f = follower.as_mut().unwrap();
        f.sync(&primary, &pdir, None);
        assert_converged(&primary, &pdir, &primary_shared, f);

        std::fs::remove_dir_all(&pdir).ok();
        std::fs::remove_dir_all(follower.unwrap().dir).ok();
    }
}

/// The resync path, spelled out once without proptest: a follower
/// whose cursor predates the primary's checkpoint floor takes the
/// snapshot path (tail records are gone), installs atomically, and
/// subsequent rounds degrade to ordinary tailing.
#[test]
fn checkpoint_floor_forces_resync_then_tailing_resumes() {
    let pdir = fresh_dir("floor-p");
    let fdir = fresh_dir("floor-f");
    let (mut primary, recovered) = DurableCatalog::open(&pdir).unwrap();
    let primary_shared = SharedCatalog::with_generation(recovered, 0);

    for (name, seed) in [("a", 1u64), ("b", 2), ("a", 3)] {
        let r = rel(seed, 4);
        let d = &mut primary;
        primary_shared
            .update_at(|catalog, generation| {
                let path = d.record_bind(name, &r, generation)?;
                catalog.attach_stored(name.to_owned(), path)?;
                Ok(())
            })
            .unwrap();
    }
    primary.checkpoint().unwrap();

    let mut follower = Follower::open(fdir);
    assert!(
        matches!(primary.stream_plan(0), StreamPlan::Resync { .. }),
        "a cursor below the checkpoint floor must resync"
    );
    follower.sync(&primary, &pdir, None);
    assert_converged(&primary, &pdir, &primary_shared, &follower);

    // Post-resync the follower tails.
    let r = rel(9, 6);
    let d = &mut primary;
    primary_shared
        .update_at(|catalog, generation| {
            let path = d.record_bind("c", &r, generation)?;
            catalog.attach_stored("c", path)?;
            Ok(())
        })
        .unwrap();
    assert!(matches!(
        primary.stream_plan(follower.durable.committed_generation()),
        StreamPlan::Tail(_)
    ));
    follower.sync(&primary, &pdir, None);
    assert_converged(&primary, &pdir, &primary_shared, &follower);

    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&follower.dir).ok();
}
