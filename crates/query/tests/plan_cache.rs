//! Regression: a cached plan must not execute after `\load` has
//! replaced the relation binding it was prepared against.
//!
//! The hazard (this is the failing-first scenario the generation
//! keying fixes): a plan prepared at catalog generation G bakes in
//! G's schemas — projection lists, rewrite decisions. If the cache
//! keyed on query text alone, a `\load` that rebinds the name to a
//! relation with a different schema would leave the old plan live,
//! and re-execution would fail deep inside the executor (or worse,
//! silently apply stale rewrite decisions). With (text, generation)
//! keying the stale entry can never be returned: the lookup records a
//! stale invalidation and re-prepares against the new binding.

use evirel_query::{Catalog, PlanCache, Session, SharedCatalog};
use evirel_workload::generator::{generate, GeneratorConfig};
use evirel_workload::restaurant_db_a;
use std::sync::Arc;

const QUERY_OLD_SCHEMA: &str = "SELECT rname, speciality FROM t WITH SN > 0";
const QUERY_NEW_SCHEMA: &str = "SELECT k, e0 FROM t WITH SN > 0";

/// A session whose catalog binds `t` to the restaurant relation
/// (schema: rname, speciality, …), plus the path of a binary segment
/// holding a *generated* relation (schema: k, e0, e1, e2) ready to be
/// `\load`-ed over the same name.
fn session_and_segment() -> (Session, std::path::PathBuf) {
    let mut catalog = Catalog::new();
    catalog.register("t", restaurant_db_a().restaurants);
    let generated = generate(
        "G",
        &GeneratorConfig {
            tuples: 64,
            seed: 7,
            ..GeneratorConfig::default()
        },
    )
    .expect("generator config is valid");
    let path = evirel_store::spill_path("plan-cache-regress");
    evirel_store::write_segment(&generated, &path, 512).expect("segment writes");
    let session = Session::new(
        Arc::new(SharedCatalog::new(catalog)),
        Arc::new(PlanCache::default()),
    );
    (session, path)
}

#[test]
fn load_replacing_a_binding_invalidates_the_cached_plan() {
    let (session, segment) = session_and_segment();

    // Warm the cache at generation 0 and prove it's being reused.
    let first = session.query(QUERY_OLD_SCHEMA).expect("valid at gen 0");
    assert!(!first.cached_plan);
    let second = session.query(QUERY_OLD_SCHEMA).expect("still valid");
    assert!(second.cached_plan, "second execution must hit the cache");
    assert_eq!(first.generation, second.generation);

    // Hold onto the stale plan the way a text-keyed cache would: this
    // is the plan prepared against the *restaurant* schema.
    let snapshot_old = session.pin();
    let (stale_plan, hit) = session
        .cache()
        .prepare_or_cached(&snapshot_old, QUERY_OLD_SCHEMA)
        .expect("cached");
    assert!(hit);

    // `\load`: rebind `t` to the on-disk generated segment — a
    // completely different schema. Publishes generation 1.
    session
        .update(|c| c.attach_stored("t", &segment))
        .expect("attach replaces the binding");

    // THE HAZARD: executing the stale plan against the new catalog is
    // exactly what an unkeyed cache would do. The projection
    // references `rname`, which the new binding does not have — this
    // fails at *execution* time, after the query was supposedly
    // planned. (Before the generation keying, this error — or a stale
    // rewrite decision — is what clients would see.)
    let snapshot_new = session.pin();
    let mut ctx =
        evirel_plan::ExecContext::with_options(snapshot_new.catalog().union_options.clone());
    ctx.pool = Arc::clone(&snapshot_new.catalog().pool);
    let stale_exec =
        evirel_plan::execute_optimized(stale_plan.optimized(), snapshot_new.catalog(), &mut ctx);
    assert!(
        stale_exec.is_err(),
        "executing the generation-0 plan against generation 1 must fail — \
         this is the bug an unkeyed cache ships to clients"
    );

    // THE FIX: the session's lookup keys on (text, generation), so it
    // refuses the stale entry, re-prepares against the new binding,
    // and surfaces a *plan-time* typed error instead.
    let err = session
        .query(QUERY_OLD_SCHEMA)
        .expect_err("rname is unknown in the new schema");
    assert_eq!(err.kind(), "unknown-attribute");
    assert!(
        session.cache().stats().stale >= 1,
        "the stale entry must be recorded as an invalidation"
    );

    // And queries phrased for the new schema both plan and execute —
    // the session genuinely sees the new binding, not a cached ghost
    // of the old one.
    let new_schema = session.query(QUERY_NEW_SCHEMA).expect("valid at gen 1");
    assert!(!new_schema.cached_plan);
    assert_eq!(new_schema.outcome.relation.len(), 64);

    std::fs::remove_file(&segment).ok();
}

#[test]
fn rebinding_back_reprepares_rather_than_resurrecting() {
    let (session, segment) = session_and_segment();
    let gen0 = session.query(QUERY_OLD_SCHEMA).expect("valid at gen 0");

    // t → generated segment (gen 1), then back to the restaurant
    // relation (gen 2). Same text as gen 0, but generation 2 ≠ 0, so
    // the cache must re-prepare — old entries are never resurrected
    // across rebinds, even to "the same" relation.
    session
        .update(|c| c.attach_stored("t", &segment))
        .expect("attach");
    session
        .update(|c| {
            c.register("t", restaurant_db_a().restaurants);
            Ok(())
        })
        .expect("re-register");

    let gen2 = session
        .query(QUERY_OLD_SCHEMA)
        .expect("valid again at gen 2");
    assert!(!gen2.cached_plan, "generation 2 must prepare fresh");
    assert_eq!(gen2.generation, gen0.generation + 2);
    assert!(gen0.outcome.relation.approx_eq(&gen2.outcome.relation));

    // From here the gen-2 entry is reused normally.
    assert!(session.query(QUERY_OLD_SCHEMA).expect("cached").cached_plan);

    std::fs::remove_file(&segment).ok();
}
