//! Heuristic-fallback coverage: a pre-v3 segment carries no stats
//! section, so the catalog publishes no statistics for it and the
//! cost model declines to estimate — the planner must fall back to
//! its fixed heuristics and still produce correct results. (The other
//! half of the fallback matrix — statistics globally disabled — is
//! the CI `EVIREL_NO_STATS=1` re-run of the plan/query suites.)

use evirel_query::Catalog;
use std::path::PathBuf;

fn v2_fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../store/tests/fixtures/v2-restaurants.evb")
}

/// Attaching a v2 segment yields no stats entry; queries against it
/// still run, and they match the same query over the materialized
/// relation registered in memory (which *does* have stats) — the two
/// planning modes agree on results.
#[test]
fn v2_segment_plans_and_queries_via_heuristics() {
    let mut disk = Catalog::new();
    disk.attach_stored("ra", v2_fixture()).unwrap();
    assert!(
        disk.stats_for("ra").is_none(),
        "v2 attachment must publish no stats"
    );
    assert!(
        disk.stats_summary().contains("no statistics"),
        "\\stats must flag the fallback: {}",
        disk.stats_summary()
    );

    let mut mem = Catalog::new();
    mem.register("ra", disk.materialize("ra").unwrap());
    assert!(mem.stats_for("ra").is_some(), "register computes stats");

    for query in [
        "SELECT * FROM ra WITH SN > 0",
        "SELECT rname, spec FROM ra WHERE spec IS {siam} WITH SN >= 0.5",
        "SELECT rname FROM ra WHERE spec IS {hunan, canton} WITH SP >= 0.5",
    ] {
        let without_stats = match evirel_query::execute(&disk, query) {
            Ok(rel) => Ok(rel),
            Err(e) => Err(e.to_string()),
        };
        let with_stats = match evirel_query::execute(&mem, query) {
            Ok(rel) => Ok(rel),
            Err(e) => Err(e.to_string()),
        };
        match (without_stats, with_stats) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len(), "{query}");
                assert!(a.approx_eq(&b), "{query}");
                assert_eq!(
                    a.keys().collect::<Vec<_>>(),
                    b.keys().collect::<Vec<_>>(),
                    "{query}: insertion order"
                );
            }
            (a, b) => assert_eq!(a.map(|_| "ok"), b.map(|_| "ok"), "{query}"),
        }
    }

    // EXPLAIN-analyze renders `est=?` for the stats-less scan —
    // actuals still appear — while the in-memory catalog estimates.
    let text = evirel_query::explain_analyze_with(&disk, "SELECT * FROM ra WITH SN > 0").unwrap();
    assert!(text.contains("act="), "{text}");
    if evirel_plan::stats_enabled() {
        assert!(text.contains("est=?"), "{text}");
        let text =
            evirel_query::explain_analyze_with(&mem, "SELECT * FROM ra WITH SN > 0").unwrap();
        assert!(text.contains("est≈"), "{text}");
    }
}
