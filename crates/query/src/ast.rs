//! Abstract syntax of EQL queries.
//!
//! The `WHERE` grammar mirrors [`evirel_algebra::Predicate`] directly;
//! the AST keeps source offsets out (errors carry offsets instead) and
//! converts losslessly into algebra predicates during planning.

use evirel_relation::Value;

/// A literal value in a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Quoted string or bare identifier used as a domain value.
    Str(String),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
}

impl Literal {
    /// Convert to a relational value.
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Str(s) => Value::str(s.as_str()),
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(x) => Value::Float(*x),
        }
    }
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprOperand {
    /// An attribute reference (possibly qualified, e.g. `RA.rname`).
    Attr(String),
    /// A literal value.
    Literal(Literal),
    /// An evidence-set literal `[si^0.5, {hu, ca}^0.5]`.
    Evidence(Vec<(Vec<Literal>, f64)>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A boolean condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `attr IS {v1, …, vn}`
    Is {
        /// Attribute name.
        attr: String,
        /// Target values.
        values: Vec<Literal>,
    },
    /// `left op right`
    Cmp {
        /// Left operand.
        left: ExprOperand,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: ExprOperand,
    },
    /// `a AND b`
    And(Box<Condition>, Box<Condition>),
    /// `a OR b` (extension)
    Or(Box<Condition>, Box<Condition>),
    /// `NOT a` (extension)
    Not(Box<Condition>),
}

/// Membership threshold clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdClause {
    /// `WITH SN > c`
    SnGreater(f64),
    /// `WITH SN >= c`
    SnAtLeast(f64),
    /// `WITH SN = 1`
    Definite,
    /// `WITH SP >= c`
    SpAtLeast(f64),
}

/// A source expression in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// A named relation.
    Relation(String),
    /// `left UNION right` — the extended union ∪̃.
    Union(Box<Source>, Box<Source>),
    /// `left JOIN right ON condition` — the extended join ⋈̃.
    Join {
        /// Left source.
        left: Box<Source>,
        /// Right source.
        right: Box<Source>,
        /// Join condition.
        on: Condition,
    },
}

/// A full `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `None` means `*`.
    pub projection: Option<Vec<String>>,
    /// The source expression.
    pub source: Source,
    /// Optional `WHERE` condition.
    pub predicate: Option<Condition>,
    /// Optional `WITH` threshold (defaults to `SN > 0`).
    pub threshold: Option<ThresholdClause>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_conversion() {
        assert_eq!(Literal::Str("si".into()).to_value(), Value::str("si"));
        assert_eq!(Literal::Int(5).to_value(), Value::int(5));
        assert_eq!(Literal::Float(0.5).to_value(), Value::float(0.5));
    }
}
