//! `eql` — an interactive shell for extended relations.
//!
//! ```text
//! eql ra.evr rb.evr              # load stored relations, start a REPL
//! eql -e "SELECT * FROM ra" ra.evr
//! ```
//!
//! Relations load under the basename of their file (`ra.evr` → `ra`).
//! The shell runs on the same epoch-snapshot machinery as the
//! `evirel-serve` query service: every query pins one catalog
//! generation, plans resolve through a prepared-plan cache keyed by
//! (normalized text, generation), and meta-commands that change
//! bindings (`\load`) publish a new generation — which invalidates
//! affected cached plans automatically.
//!
//! Meta-commands inside the REPL:
//!
//! * `\d` — list relations and schemas;
//! * `\explain <query>` — logical plan, fired rewrites, optimized
//!   plan, physical operator tree with estimated vs actual rows per
//!   operator (the query executes; its result is discarded),
//!   plan-cache state;
//! * `\conflicts` — the ∪̃ conflict report of the last query;
//! * `\rank` — render the next query's result ranked by `sn`;
//! * `\set threads <N>` — worker threads for query execution (plan
//!   fragments run through the parallel exchange operator when > 1;
//!   the initial value comes from `EVIREL_THREADS`, default 1);
//! * `\save <name> <path>` — write a relation back to disk (text
//!   notation);
//! * `\store <name> <path>` — write a relation to a paged binary
//!   segment (the storage engine's format);
//! * `\load <name> <path>` — attach a binary segment as a *stored*
//!   relation: queries stream its pages through the buffer pool
//!   (budget: `EVIREL_BUFFER_BYTES`) instead of loading it into
//!   memory;
//! * `\open <dir>` — open a durable data directory: recover its
//!   committed bindings (manifest + write-ahead journal replay) and
//!   publish them into the catalog; subsequent `\checkpoint`s persist
//!   into this directory;
//! * `\checkpoint` — durably persist every current relation into the
//!   open data directory (checksummed segments + manifest swap) and
//!   truncate the journal;
//! * `\stats` — per-relation statistics (tuple count, distinct-key
//!   estimate, average focal width, observed κ) as the planner's cost
//!   model sees them; relations without statistics (pre-v3 segments)
//!   are flagged as planning via heuristics;
//! * `\pool` — buffer-pool statistics (hits/misses/evictions/bytes),
//!   read from the shared metrics registry;
//! * `\cache` — prepared-plan cache statistics (hits = re-executions
//!   that skipped lowering/rewrite) and the current generation, read
//!   from the shared metrics registry;
//! * `\metrics` — every counter/gauge/histogram in Prometheus text
//!   exposition (what the query service's `METRICS` verb returns);
//! * `\q` — quit.
//!
//! Files ending in `.evb` on the command line are attached as stored
//! relations; anything else is parsed as the text notation.

use evirel_algebra::ConflictReport;
use evirel_query::{Catalog, DurableCatalog, PlanCache, QueryError, Session, SharedCatalog};
use evirel_relation::Value;
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let mut catalog = Catalog::new();
    let mut inline_query: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    let mut loaded = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--execute" => match args.next() {
                Some(q) => inline_query = Some(q),
                None => {
                    eprintln!("-e requires a query argument");
                    std::process::exit(2);
                }
            },
            "-h" | "--help" => {
                println!("usage: eql [-e QUERY] [file.evr ...]");
                return;
            }
            path => match load(&mut catalog, path) {
                Ok(name) => loaded.push(name),
                Err(e) => {
                    eprintln!("error loading {path}: {e}");
                    std::process::exit(1);
                }
            },
        }
    }

    let shared = Arc::new(SharedCatalog::new(catalog));
    let cache = Arc::new(PlanCache::default());
    // The REPL shares the server's collector wiring against the
    // process-global registry: `\pool`, `\cache` and `\metrics` read
    // the exact series the `METRICS` verb would expose.
    evirel_query::register_query_collectors(evirel_obs::global(), &shared, &cache);
    let session = Session::new(shared, cache);

    if let Some(q) = inline_query {
        run_query(&session, &q, false);
        return;
    }

    eprintln!(
        "eql — evidential query shell ({} relation(s) loaded: {})",
        loaded.len(),
        loaded.join(", ")
    );
    eprintln!(
        "type \\q to quit, \\d to describe relations, \\explain <query> for plans, \
         \\conflicts for the last query's ∪̃ report, \\set threads N for parallel execution"
    );
    let stdin = std::io::stdin();
    let mut ranked = false;
    let mut last_report: Option<ConflictReport> = None;
    let mut durable: Option<DurableCatalog> = None;
    loop {
        eprint!("eql> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('\\') {
            let mut parts = meta.split_whitespace();
            match parts.next() {
                Some("q") => break,
                Some("d") => {
                    let snapshot = session.pin();
                    let catalog = snapshot.catalog();
                    for name in catalog.names() {
                        if let Some(rel) = catalog.get(name) {
                            println!("{name}: {} ({} tuples)", rel.schema(), rel.len());
                        } else if let Some(stored) = catalog.get_stored(name) {
                            println!(
                                "{name}: {} ({} tuples, stored: {} pages on disk)",
                                stored.schema(),
                                stored.len(),
                                stored.segment().page_count(),
                            );
                        }
                    }
                }
                Some("explain") => {
                    let rest = meta.strip_prefix("explain").unwrap_or("").trim();
                    if rest.is_empty() {
                        println!("usage: \\explain <query>");
                    } else {
                        // Full optimizer/physical explain against the
                        // pinned snapshot (with the plan-cache line).
                        // When the plan cannot be built (unknown
                        // relation/attribute, …), report the error —
                        // and still show the bare logical tree for
                        // context if the query at least parses.
                        match session.explain(rest) {
                            Ok(plan) => print!("{plan}"),
                            Err(e) => {
                                println!("error: {e}");
                                if let Ok(logical) = evirel_query::explain(rest) {
                                    print!("logical (unvalidated):\n{logical}");
                                }
                            }
                        }
                    }
                }
                Some("conflicts") => match &last_report {
                    None => println!("no report (no query has run yet, or the last one failed)"),
                    Some(report) => print_report(report),
                },
                Some("rank") => {
                    ranked = !ranked;
                    println!("ranked output {}", if ranked { "on" } else { "off" });
                }
                Some("set") => match (parts.next(), parts.next()) {
                    (Some("threads"), Some(n)) => match n.parse::<usize>() {
                        Ok(n) if (1..=evirel_plan::MAX_PARALLELISM).contains(&n) => {
                            let set = session.update(|c| {
                                c.parallelism = n;
                                Ok(())
                            });
                            match set {
                                Ok(()) => println!(
                                    "execution threads set to {n}{}",
                                    if n == 1 { " (sequential)" } else { "" }
                                ),
                                Err(e) => println!("error: {e}"),
                            }
                        }
                        _ => println!(
                            "threads must be an integer in 1..={}, got {n:?}",
                            evirel_plan::MAX_PARALLELISM
                        ),
                    },
                    (Some("threads"), None) => {
                        println!("execution threads: {}", session.pin().catalog().parallelism);
                    }
                    _ => println!("usage: \\set threads <N>"),
                },
                Some("save") => match (parts.next(), parts.next()) {
                    // `materialize` covers stored attachments too, so
                    // everything \d lists can be saved as text.
                    (Some(name), Some(path)) => match session.pin().catalog().materialize(name) {
                        Ok(rel) => {
                            let text = evirel_storage::write_relation(&rel);
                            match std::fs::write(path, text) {
                                Ok(()) => println!("wrote {name} to {path}"),
                                Err(e) => println!("write failed: {e}"),
                            }
                        }
                        Err(e) => println!("save failed: {e}"),
                    },
                    _ => println!("usage: \\save <name> <path>"),
                },
                Some("store") => match (parts.next(), parts.next()) {
                    (Some(name), Some(path)) => {
                        match session.pin().catalog().store_segment(name, path) {
                            Ok(()) => println!("wrote {name} to binary segment {path}"),
                            Err(e) => println!("store failed: {e}"),
                        }
                    }
                    _ => println!("usage: \\store <name> <path>"),
                },
                Some("load") => match (parts.next(), parts.next()) {
                    (Some(name), Some(path)) => {
                        // The attach publishes a new catalog
                        // generation; cached plans over the old
                        // binding go stale automatically.
                        let attached = session.update(|c| {
                            c.attach_stored(name.to_owned(), path)?;
                            c.get_stored(name).ok_or_else(|| QueryError::Execution {
                                message: format!("{name} vanished during attach"),
                            })
                        });
                        match attached {
                            Ok(stored) => println!(
                                "attached {name} from {path} ({} tuples, {} pages; \
                                 queries stream through the buffer pool)",
                                stored.len(),
                                stored.segment().page_count(),
                            ),
                            Err(e) => println!("load failed: {e}"),
                        }
                    }
                    _ => println!("usage: \\load <name> <path>"),
                },
                Some("open") => match parts.next() {
                    Some(dir) => match DurableCatalog::open(dir) {
                        Ok((d, recovered)) => {
                            // Publish every recovered binding into the
                            // live catalog as one new generation; the
                            // attachments were checksum-verified during
                            // recovery, so republish the open handles
                            // instead of reopening the files.
                            let names: Vec<String> =
                                recovered.names().iter().map(|s| (*s).to_owned()).collect();
                            let published = session.update(|c| {
                                for name in &names {
                                    if let Some(stored) = recovered.get_stored(name) {
                                        c.attach(name.clone(), stored);
                                    }
                                }
                                Ok(())
                            });
                            match published {
                                Ok(()) => {
                                    println!(
                                        "opened {dir}: recovered generation {}, {} binding(s){}{}",
                                        d.recovered_generation(),
                                        names.len(),
                                        if names.is_empty() { "" } else { ": " },
                                        names.join(", "),
                                    );
                                    durable = Some(d);
                                }
                                Err(e) => println!("open failed: {e}"),
                            }
                        }
                        Err(e) => println!("open failed: {e}"),
                    },
                    None => println!("usage: \\open <dir>"),
                },
                Some("checkpoint") => match durable.as_mut() {
                    Some(d) => {
                        let pinned = session.pin();
                        match d.checkpoint_full(pinned.catalog()) {
                            Ok(persisted) => {
                                let stats = d.stats();
                                println!(
                                    "checkpointed {persisted} binding(s) into {} \
                                     (durable generation {})",
                                    d.dir().display(),
                                    stats.committed_generation,
                                );
                            }
                            Err(e) => println!("checkpoint failed: {e}"),
                        }
                    }
                    None => println!("no data directory open — \\open <dir> first"),
                },
                Some("stats") => {
                    print!("{}", session.pin().catalog().stats_summary());
                }
                // `\pool` and `\cache` read the shared metrics
                // registry — the same series `\metrics` renders —
                // not the subsystems directly, so every surface
                // reports identical numbers.
                Some("pool") => {
                    let registry = evirel_obs::global();
                    registry.refresh();
                    let v = |name: &str| registry.value(name, &[]).unwrap_or(0);
                    println!(
                        "buffer pool: budget {} B, cached {} B in {} page(s); \
                         {} hit(s), {} miss(es), {} eviction(s), {} overcommit(s)",
                        session.pin().catalog().pool.budget_bytes(),
                        v("evirel_store_pool_cached_bytes"),
                        v("evirel_store_pool_cached_pages"),
                        v("evirel_store_pool_hits_total"),
                        v("evirel_store_pool_misses_total"),
                        v("evirel_store_pool_evictions_total"),
                        v("evirel_store_pool_overcommits_total"),
                    );
                }
                Some("cache") => {
                    let registry = evirel_obs::global();
                    registry.refresh();
                    let v = |name: &str| registry.value(name, &[]).unwrap_or(0);
                    println!(
                        "plan cache: {} entries, generation {}; {} hit(s) \
                         (lowering/rewrite skipped), {} miss(es), {} stale \
                         (invalidated by generation bump), {} eviction(s)",
                        v("evirel_query_cache_entries"),
                        v("evirel_catalog_generation"),
                        v("evirel_query_cache_hits_total"),
                        v("evirel_query_cache_misses_total"),
                        v("evirel_query_cache_stale_total"),
                        v("evirel_query_cache_evictions_total"),
                    );
                }
                Some("metrics") => {
                    // Full Prometheus-style exposition — everything
                    // the server's METRICS verb would return for this
                    // process.
                    print!("{}", evirel_obs::global().render());
                }
                other => println!("unknown meta-command {other:?}"),
            }
            continue;
        }
        // A failed query clears the report — \conflicts always refers
        // to the *last* statement, never a stale earlier one.
        last_report = run_query(&session, line, ranked);
    }
}

fn load(catalog: &mut Catalog, path: &str) -> Result<String, Box<dyn std::error::Error>> {
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation")
        .to_owned();
    // Binary segments attach as stored relations (paged, never fully
    // in memory); everything else is the text notation.
    if path.ends_with(".evb") {
        catalog.attach_stored(name.clone(), path)?;
        return Ok(name);
    }
    let text = std::fs::read_to_string(path)?;
    let rel = evirel_storage::read_relation(&text)?;
    catalog.register(name.clone(), rel);
    Ok(name)
}

fn run_query(session: &Session, query: &str, ranked: bool) -> Option<ConflictReport> {
    match session.query(query) {
        Ok(out) => {
            if ranked {
                print!(
                    "{}",
                    evirel_query::format::render_ranked(&out.outcome.relation)
                );
            } else {
                print!("{}", out.outcome.relation);
            }
            let cached = if out.cached_plan { ", cached plan" } else { "" };
            if out.outcome.report.is_empty() {
                println!("({} tuple(s){cached})", out.outcome.relation.len());
            } else {
                println!(
                    "({} tuple(s), {} conflict(s) — \\conflicts for the report{cached})",
                    out.outcome.relation.len(),
                    out.outcome.report.len()
                );
            }
            Some(out.outcome.report)
        }
        Err(e) => {
            println!("error: {e}");
            None
        }
    }
}

/// Print a conflict report, one observation per line.
fn print_report(report: &ConflictReport) {
    if report.is_empty() {
        println!("no conflicts observed in the last query");
        return;
    }
    println!(
        "{} conflict(s), max κ = {:.3}, mean κ = {:.3}:",
        report.len(),
        report.max_kappa(),
        report.mean_kappa()
    );
    for c in report.conflicts() {
        println!(
            "  key={} attr={} κ={:.3}{}",
            Value::render_key(&c.key),
            c.attr,
            c.kappa,
            if c.total {
                " (TOTAL — policy applied)"
            } else {
                ""
            }
        );
    }
}
