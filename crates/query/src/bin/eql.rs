//! `eql` — an interactive shell for extended relations.
//!
//! ```text
//! eql ra.evr rb.evr              # load stored relations, start a REPL
//! eql -e "SELECT * FROM ra" ra.evr
//! ```
//!
//! Relations load under the basename of their file (`ra.evr` → `ra`).
//! Meta-commands inside the REPL:
//!
//! * `\d` — list relations and schemas;
//! * `\rank` — render the next query's result ranked by `sn`;
//! * `\save <name> <path>` — write a relation back to disk;
//! * `\q` — quit.

use evirel_query::{execute, Catalog};
use std::io::{BufRead, Write};

fn main() {
    let mut catalog = Catalog::new();
    let mut inline_query: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    let mut loaded = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" | "--execute" => match args.next() {
                Some(q) => inline_query = Some(q),
                None => {
                    eprintln!("-e requires a query argument");
                    std::process::exit(2);
                }
            },
            "-h" | "--help" => {
                println!("usage: eql [-e QUERY] [file.evr ...]");
                return;
            }
            path => match load(&mut catalog, path) {
                Ok(name) => loaded.push(name),
                Err(e) => {
                    eprintln!("error loading {path}: {e}");
                    std::process::exit(1);
                }
            },
        }
    }

    if let Some(q) = inline_query {
        run_query(&catalog, &q, false);
        return;
    }

    eprintln!(
        "eql — evidential query shell ({} relation(s) loaded: {})",
        loaded.len(),
        loaded.join(", ")
    );
    eprintln!("type \\q to quit, \\d to describe relations, \\explain <query> for plans");
    let stdin = std::io::stdin();
    let mut ranked = false;
    loop {
        eprint!("eql> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('\\') {
            let mut parts = meta.split_whitespace();
            match parts.next() {
                Some("q") => break,
                Some("d") => {
                    for name in catalog.names() {
                        if let Some(rel) = catalog.get(name) {
                            println!("{name}: {} ({} tuples)", rel.schema(), rel.len());
                        }
                    }
                }
                Some("explain") => {
                    let rest = meta.strip_prefix("explain").unwrap_or("").trim();
                    if rest.is_empty() {
                        println!("usage: \\explain <query>");
                    } else {
                        match evirel_query::explain(rest) {
                            Ok(plan) => print!("{plan}"),
                            Err(e) => println!("error: {e}"),
                        }
                    }
                }
                Some("rank") => {
                    ranked = !ranked;
                    println!("ranked output {}", if ranked { "on" } else { "off" });
                }
                Some("save") => match (parts.next(), parts.next()) {
                    (Some(name), Some(path)) => match catalog.get(name) {
                        Some(rel) => {
                            let text = evirel_storage::write_relation(rel);
                            match std::fs::write(path, text) {
                                Ok(()) => println!("wrote {name} to {path}"),
                                Err(e) => println!("write failed: {e}"),
                            }
                        }
                        None => println!("no relation named {name:?}"),
                    },
                    _ => println!("usage: \\save <name> <path>"),
                },
                other => println!("unknown meta-command {other:?}"),
            }
            continue;
        }
        run_query(&catalog, line, ranked);
    }
}

fn load(catalog: &mut Catalog, path: &str) -> Result<String, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let rel = evirel_storage::read_relation(&text)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation")
        .to_owned();
    catalog.register(name.clone(), rel);
    Ok(name)
}

fn run_query(catalog: &Catalog, query: &str, ranked: bool) {
    match execute(catalog, query) {
        Ok(result) => {
            if ranked {
                print!("{}", evirel_query::format::render_ranked(&result));
            } else {
                print!("{result}");
            }
            println!("({} tuple(s))", result.len());
        }
        Err(e) => println!("error: {e}"),
    }
}
