//! Result formatting for query answers.
//!
//! Builds on the relation display (paper-style tables) and adds a
//! ranked view: tuples sorted by necessary support `sn`, the natural
//! presentation of the paper's "full range of certainty" result sets
//! (§1.3: a single result set replaces DeMichiel's true/may-be split).

use evirel_relation::display::{format_attr_value, render_table};
use evirel_relation::ExtendedRelation;

/// Render the result as a paper-style table.
pub fn render_result(rel: &ExtendedRelation) -> String {
    render_table(rel)
}

/// Render tuples ranked by descending `sn` (ties by descending `sp`),
/// one line each: `1. (key) (sn,sp) | attr values…`.
pub fn render_ranked(rel: &ExtendedRelation) -> String {
    let schema = rel.schema();
    let mut rows: Vec<_> = rel.iter_keyed().collect();
    rows.sort_by(|(_, a), (_, b)| {
        b.membership()
            .sn()
            .partial_cmp(&a.membership().sn())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                b.membership()
                    .sp()
                    .partial_cmp(&a.membership().sp())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    });
    let mut out = String::new();
    for (rank, (key, tuple)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{}. {} {}",
            rank + 1,
            evirel_relation::Value::render_key(key),
            tuple.membership()
        ));
        for (pos, v) in tuple.values().iter().enumerate() {
            if schema.attr(pos).is_key() {
                continue;
            }
            out.push_str(&format!(
                " | {}={}",
                schema.attr(pos).name(),
                format_attr_value(v)
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema};
    use std::sync::Arc;

    fn rel() -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("r")
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("k", "low")
                    .set_evidence("d", [(&["x"][..], 1.0)])
                    .membership_pair(0.2, 0.4)
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("k", "high")
                    .set_evidence("d", [(&["y"][..], 1.0)])
                    .membership_pair(0.9, 1.0)
            })
            .unwrap()
            .build()
    }

    #[test]
    fn ranked_orders_by_sn() {
        let text = render_ranked(&rel());
        let high_pos = text.find("(high)").unwrap();
        let low_pos = text.find("(low)").unwrap();
        assert!(high_pos < low_pos, "{text}");
        assert!(text.starts_with("1. (high) (0.9,1)"), "{text}");
        assert!(text.contains("d=[y^1]"), "{text}");
    }

    #[test]
    fn table_rendering_delegates() {
        let text = render_result(&rel());
        assert!(text.contains("†d"));
        assert!(text.contains("(0.2,0.4)"));
    }
}
