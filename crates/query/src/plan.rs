//! Lowering the AST into algebra operations.
//!
//! [`lower`] turns a parsed statement into a [`Plan`];
//! [`Plan::to_logical`] converts that into an `evirel-plan`
//! [`LogicalPlan`] for the streaming executor, and [`Plan::validate`]
//! performs the plan-time semantic checks (unknown attributes in
//! `WHERE`/`ON`/projection lists error here, not mid-execution).

use crate::ast::{CmpOp, Condition, ExprOperand, SelectStmt, Source, ThresholdClause};
use crate::catalog::Catalog;
use crate::error::QueryError;
use evirel_algebra::{Operand, Predicate, ThetaOp, Threshold};
use evirel_plan::LogicalPlan;

/// A lowered query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The source-expression plan.
    pub source: SourcePlan,
    /// The selection predicate, if any.
    pub predicate: Option<Predicate>,
    /// The membership threshold (`SN > 0` when the query omits `WITH`).
    pub threshold: Threshold,
    /// Projection attribute list (`None` = all).
    pub projection: Option<Vec<String>>,
}

/// A lowered source expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SourcePlan {
    /// Scan a catalog relation.
    Scan(String),
    /// Extended union of two sources.
    Union(Box<SourcePlan>, Box<SourcePlan>),
    /// Extended join.
    Join {
        /// Left input.
        left: Box<SourcePlan>,
        /// Right input.
        right: Box<SourcePlan>,
        /// Join predicate.
        on: Predicate,
    },
}

/// Lower a parsed statement into a [`Plan`]. This is the pure
/// syntactic lowering; semantic checks against a catalog live in
/// [`Plan::validate`] (and [`lower_validated`] runs both).
///
/// # Errors
/// Infallible once parsed; the `Result` mirrors the executor's needs
/// and the validated entry points.
pub fn lower(stmt: &SelectStmt) -> Result<Plan, QueryError> {
    Ok(Plan {
        source: lower_source(&stmt.source)?,
        predicate: stmt.predicate.as_ref().map(lower_condition).transpose()?,
        threshold: stmt
            .threshold
            .map(lower_threshold)
            .unwrap_or(Threshold::POSITIVE),
        projection: stmt.projection.clone(),
    })
}

/// Lower and semantically validate against `catalog`: unknown
/// relations, and attributes in `WHERE`, `ON`, or the projection list
/// that do not exist in the (possibly derived) source schema, error
/// here — at plan time, with the attribute name — rather than at
/// execution.
///
/// # Errors
/// [`QueryError::UnknownRelation`], [`QueryError::UnknownAttribute`].
pub fn lower_validated(stmt: &SelectStmt, catalog: &Catalog) -> Result<Plan, QueryError> {
    let plan = lower(stmt)?;
    plan.validate(catalog)?;
    Ok(plan)
}

fn lower_source(source: &Source) -> Result<SourcePlan, QueryError> {
    Ok(match source {
        Source::Relation(name) => SourcePlan::Scan(name.clone()),
        Source::Union(l, r) => {
            SourcePlan::Union(Box::new(lower_source(l)?), Box::new(lower_source(r)?))
        }
        Source::Join { left, right, on } => SourcePlan::Join {
            left: Box::new(lower_source(left)?),
            right: Box::new(lower_source(right)?),
            on: lower_condition(on)?,
        },
    })
}

fn lower_condition(c: &Condition) -> Result<Predicate, QueryError> {
    Ok(match c {
        Condition::Is { attr, values } => Predicate::Is {
            attr: attr.clone(),
            values: values.iter().map(|l| l.to_value()).collect(),
        },
        Condition::Cmp { left, op, right } => Predicate::Theta {
            left: lower_operand(left),
            op: lower_cmp(*op),
            right: lower_operand(right),
        },
        Condition::And(a, b) => {
            Predicate::And(Box::new(lower_condition(a)?), Box::new(lower_condition(b)?))
        }
        Condition::Or(a, b) => {
            Predicate::Or(Box::new(lower_condition(a)?), Box::new(lower_condition(b)?))
        }
        Condition::Not(a) => Predicate::Not(Box::new(lower_condition(a)?)),
    })
}

fn lower_operand(o: &ExprOperand) -> Operand {
    match o {
        ExprOperand::Attr(name) => Operand::Attr(name.clone()),
        ExprOperand::Literal(l) => Operand::Value(l.to_value()),
        ExprOperand::Evidence(entries) => Operand::Evidence(
            entries
                .iter()
                .map(|(vals, w)| (vals.iter().map(|l| l.to_value()).collect(), *w))
                .collect(),
        ),
    }
}

fn lower_cmp(op: CmpOp) -> ThetaOp {
    match op {
        CmpOp::Eq => ThetaOp::Eq,
        CmpOp::Ne => ThetaOp::Ne,
        CmpOp::Lt => ThetaOp::Lt,
        CmpOp::Le => ThetaOp::Le,
        CmpOp::Gt => ThetaOp::Gt,
        CmpOp::Ge => ThetaOp::Ge,
    }
}

fn lower_threshold(t: ThresholdClause) -> Threshold {
    match t {
        ThresholdClause::SnGreater(c) => Threshold::SnGreater(c),
        ThresholdClause::SnAtLeast(c) => Threshold::SnAtLeast(c),
        ThresholdClause::Definite => Threshold::Definite,
        ThresholdClause::SpAtLeast(c) => Threshold::SpAtLeastPositive(c),
    }
}

impl Plan {
    /// Convert to an `evirel-plan` [`LogicalPlan`] for the streaming
    /// executor. The conversion is deliberately mechanical — `WHERE`
    /// becomes a default-threshold σ̃ and `WITH` a separate membership
    /// filter — so the optimizer's rewrite rules (threshold fusion,
    /// pushdown, ∪̃ distribution) do the composition and `EXPLAIN` can
    /// show them firing.
    pub fn to_logical(&self) -> LogicalPlan {
        let mut plan = source_logical(&self.source);
        if let Some(predicate) = &self.predicate {
            plan = LogicalPlan::Select {
                input: Box::new(plan),
                predicate: predicate.clone(),
                threshold: Threshold::POSITIVE,
            };
        }
        if self.threshold != Threshold::POSITIVE {
            plan = LogicalPlan::ThresholdFilter {
                input: Box::new(plan),
                threshold: self.threshold,
            };
        }
        if let Some(attrs) = &self.projection {
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                attrs: attrs.clone(),
            };
        }
        plan
    }

    /// Semantic validation against `catalog` — see [`lower_validated`].
    ///
    /// # Errors
    /// [`QueryError::UnknownRelation`], [`QueryError::UnknownAttribute`],
    /// and incompatibility errors from schema derivation.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), QueryError> {
        evirel_plan::validate_plan(&self.to_logical(), catalog)?;
        Ok(())
    }

    /// Render the plan as an indented operator tree — the `EXPLAIN`
    /// output:
    ///
    /// ```text
    /// π̃[rname, rating]
    ///   σ̃[rating is {ex}] with sn >= 0.5
    ///     ∪̃
    ///       scan ra
    ///       scan rb
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut depth = 0usize;
        if let Some(attrs) = &self.projection {
            out.push_str(&format!("π̃[{}]\n", attrs.join(", ")));
            depth += 1;
        }
        match &self.predicate {
            Some(pred) => {
                out.push_str(&format!(
                    "{}σ̃[{}] with {}\n",
                    "  ".repeat(depth),
                    pred,
                    self.threshold
                ));
                depth += 1;
            }
            None if self.threshold != Threshold::POSITIVE => {
                out.push_str(&format!(
                    "{}σ̃[membership] with {}\n",
                    "  ".repeat(depth),
                    self.threshold
                ));
                depth += 1;
            }
            None => {}
        }
        render_source(&self.source, depth, &mut out);
        out
    }
}

fn source_logical(source: &SourcePlan) -> LogicalPlan {
    match source {
        SourcePlan::Scan(name) => LogicalPlan::Scan { name: name.clone() },
        SourcePlan::Union(l, r) => LogicalPlan::Union {
            left: Box::new(source_logical(l)),
            right: Box::new(source_logical(r)),
        },
        SourcePlan::Join { left, right, on } => LogicalPlan::Join {
            left: Box::new(source_logical(left)),
            right: Box::new(source_logical(right)),
            on: on.clone(),
            threshold: Threshold::POSITIVE,
        },
    }
}

fn render_source(source: &SourcePlan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match source {
        SourcePlan::Scan(name) => out.push_str(&format!("{pad}scan {name}\n")),
        SourcePlan::Union(l, r) => {
            out.push_str(&format!("{pad}∪̃\n"));
            render_source(l, depth + 1, out);
            render_source(r, depth + 1, out);
        }
        SourcePlan::Join { left, right, on } => {
            out.push_str(&format!("{pad}⋈̃[{on}]\n"));
            render_source(left, depth + 1, out);
            render_source(right, depth + 1, out);
        }
    }
}

/// Parse and lower a query, returning the rendered plan tree without
/// executing it — the catalog-free `EXPLAIN` (no rewrites fire, since
/// schema-aware rules need the catalog; see [`explain_with`]).
///
/// # Errors
/// Lex/parse errors.
pub fn explain(query: &str) -> Result<String, QueryError> {
    Ok(lower(&crate::parser::parse(query)?)?.render())
}

/// Full `EXPLAIN` against a catalog: the logical plan, every rewrite
/// rule that fired, the optimized plan, and the physical operator
/// tree that would execute it (exchange nodes included when
/// [`Catalog::parallelism`] > 1).
///
/// # Errors
/// Lex/parse errors, unknown relations/attributes, plan-build errors.
pub fn explain_with(catalog: &Catalog, query: &str) -> Result<String, QueryError> {
    let plan = lower_validated(&crate::parser::parse(query)?, catalog)?;
    Ok(evirel_plan::explain_plan_with(
        &plan.to_logical(),
        catalog,
        &catalog.union_options,
        catalog.parallelism,
    )?)
}

/// `EXPLAIN` **with execution**: like [`explain_with`], but the
/// physical tree actually runs (result discarded) and every operator
/// line carries `[est≈N act=M]` — the cost model's row estimate next
/// to the true row count from execution, so mis-estimates are visible
/// at a glance. Estimates render as `est=?` where no statistics apply
/// (non-relation-rooted operators under `EVIREL_NO_STATS=1`, pre-v3
/// stored segments).
///
/// # Errors
/// As [`explain_with`], plus execution errors — though an execution
/// failure after a successful plan build is folded into the rendered
/// text rather than returned, so the plan itself is still shown.
pub fn explain_analyze_with(catalog: &Catalog, query: &str) -> Result<String, QueryError> {
    let plan = lower_validated(&crate::parser::parse(query)?, catalog)?;
    let mut ctx = evirel_plan::ExecContext::with_options(catalog.union_options.clone());
    ctx.parallelism = catalog.parallelism.max(1);
    ctx.pool = std::sync::Arc::clone(&catalog.pool);
    ctx.spill_threshold_bytes = catalog.pool.budget_bytes();
    Ok(evirel_plan::explain_analyze_with(
        &plan.to_logical(),
        catalog,
        &mut ctx,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn lowers_paper_query() {
        let plan =
            lower(&parse("SELECT rname FROM ra WHERE speciality IS {si} WITH SN > 0").unwrap())
                .unwrap();
        assert_eq!(plan.source, SourcePlan::Scan("ra".into()));
        assert_eq!(plan.threshold, Threshold::SnGreater(0.0));
        assert_eq!(plan.projection, Some(vec!["rname".to_owned()]));
        match plan.predicate.unwrap() {
            Predicate::Is { attr, values } => {
                assert_eq!(attr, "speciality");
                assert_eq!(values, vec![evirel_relation::Value::str("si")]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn default_threshold_is_positive() {
        let plan = lower(&parse("SELECT * FROM ra").unwrap()).unwrap();
        assert_eq!(plan.threshold, Threshold::POSITIVE);
        assert!(plan.predicate.is_none());
        assert!(plan.projection.is_none());
    }

    #[test]
    fn lowers_union_and_join() {
        let plan = lower(&parse("SELECT * FROM ra UNION rb").unwrap()).unwrap();
        assert!(matches!(plan.source, SourcePlan::Union(_, _)));
        let plan = lower(&parse("SELECT * FROM r JOIN rm ON R.k = RM.k").unwrap()).unwrap();
        assert!(matches!(plan.source, SourcePlan::Join { .. }));
    }

    #[test]
    fn explain_renders_plan_tree() {
        let text =
            explain("SELECT rname, rating FROM ra UNION rb WHERE rating IS {ex} WITH SN >= 0.5")
                .unwrap();
        assert!(text.contains("π̃[rname, rating]"), "{text}");
        assert!(text.contains("σ̃[rating is {ex}] with sn >= 0.5"), "{text}");
        assert!(text.contains("∪̃"), "{text}");
        assert!(text.contains("scan ra"), "{text}");
        // Indentation increases down the tree.
        let union_line = text.lines().find(|l| l.trim_start() == "∪̃").unwrap();
        let scan_line = text.lines().find(|l| l.contains("scan ra")).unwrap();
        assert!(
            scan_line.len() - scan_line.trim_start().len()
                > union_line.len() - union_line.trim_start().len()
        );
        // Bare WITH renders as a membership filter.
        let text = explain("SELECT * FROM r WITH SN >= 0.9").unwrap();
        assert!(text.contains("σ̃[membership]"), "{text}");
        // Join condition is shown.
        let text = explain("SELECT * FROM a JOIN b ON a.k = b.k").unwrap();
        assert!(text.contains("⋈̃[(a.k = b.k)]"), "{text}");
        // Parse errors propagate.
        assert!(explain("SELEC").is_err());
    }

    #[test]
    fn lowers_all_cmp_ops() {
        for (text, op) in [
            ("=", ThetaOp::Eq),
            ("!=", ThetaOp::Ne),
            ("<", ThetaOp::Lt),
            ("<=", ThetaOp::Le),
            (">", ThetaOp::Gt),
            (">=", ThetaOp::Ge),
        ] {
            let q = format!("SELECT * FROM r WHERE a {text} 1");
            let plan = lower(&parse(&q).unwrap()).unwrap();
            match plan.predicate.unwrap() {
                Predicate::Theta { op: got, .. } => assert_eq!(got, op),
                other => panic!("{other:?}"),
            }
        }
    }
}
