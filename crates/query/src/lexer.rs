//! Tokenizer for the EQL surface syntax.

use crate::error::QueryError;
use std::fmt;

/// One token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset into the query text.
    pub offset: usize,
}

/// EQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Keywords (case-insensitive in the source).
    /// `SELECT`
    Select,
    /// `FROM`
    From,
    /// `WHERE`
    Where,
    /// `WITH`
    With,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `IS`
    Is,
    /// `UNION`
    Union,
    /// `JOIN`
    Join,
    /// `ON`
    On,
    /// `SN`
    Sn,
    /// `SP`
    Sp,
    /// Identifier (relation/attribute name; may contain `-`, `.`).
    Ident(String),
    /// Quoted string literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `^`
    Caret,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl Token {
    /// Canonical source rendering: keywords uppercase, strings
    /// single-quoted with `\`-escaped quotes/backslashes, floats
    /// always carrying a decimal point. Re-lexing the rendering
    /// yields this token back, and joining renderings with single
    /// spaces is injective over token streams — which is exactly what
    /// the plan cache's normalizer ([`crate::normalize_eql`]) needs
    /// for collision-free keys.
    pub fn canonical(&self) -> String {
        match self {
            Token::Select => "SELECT".into(),
            Token::From => "FROM".into(),
            Token::Where => "WHERE".into(),
            Token::With => "WITH".into(),
            Token::And => "AND".into(),
            Token::Or => "OR".into(),
            Token::Not => "NOT".into(),
            Token::Is => "IS".into(),
            Token::Union => "UNION".into(),
            Token::Join => "JOIN".into(),
            Token::On => "ON".into(),
            Token::Sn => "SN".into(),
            Token::Sp => "SP".into(),
            Token::Ident(s) => s.clone(),
            Token::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('\'');
                for c in s.chars() {
                    if c == '\'' || c == '\\' {
                        out.push('\\');
                    }
                    out.push(c);
                }
                out.push('\'');
                out
            }
            Token::Int(i) => i.to_string(),
            // Debug always renders a decimal point (`1.0`), keeping
            // floats distinct from integers.
            Token::Float(x) => format!("{x:?}"),
            Token::Star => "*".into(),
            Token::Comma => ",".into(),
            Token::Semicolon => ";".into(),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::LBrace => "{".into(),
            Token::RBrace => "}".into(),
            Token::LBracket => "[".into(),
            Token::RBracket => "]".into(),
            Token::Caret => "^".into(),
            Token::Eq => "=".into(),
            Token::Ne => "!=".into(),
            Token::Lt => "<".into(),
            Token::Le => "<=".into(),
            Token::Gt => ">".into(),
            Token::Ge => ">=".into(),
            Token::Eof => String::new(),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier {s:?}"),
            Token::Str(s) => write!(f, "string {s:?}"),
            Token::Int(i) => write!(f, "integer {i}"),
            Token::Float(x) => write!(f, "float {x}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// Tokenize a query string.
///
/// # Errors
/// [`QueryError::Lex`] on unrecognized characters or unterminated
/// strings.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, QueryError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let token = match c {
            '*' => {
                i += 1;
                Token::Star
            }
            ',' => {
                i += 1;
                Token::Comma
            }
            ';' => {
                i += 1;
                Token::Semicolon
            }
            '(' => {
                i += 1;
                Token::LParen
            }
            ')' => {
                i += 1;
                Token::RParen
            }
            '{' => {
                i += 1;
                Token::LBrace
            }
            '}' => {
                i += 1;
                Token::RBrace
            }
            '[' => {
                i += 1;
                Token::LBracket
            }
            ']' => {
                i += 1;
                Token::RBracket
            }
            '^' => {
                i += 1;
                Token::Caret
            }
            '=' => {
                i += 1;
                Token::Eq
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Token::Ne
                } else {
                    return Err(QueryError::Lex {
                        offset: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Token::Le
                } else {
                    i += 1;
                    Token::Lt
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Token::Ge
                } else {
                    i += 1;
                    Token::Gt
                }
            }
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(QueryError::Lex {
                                offset: start,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(&b) if b as char == quote => {
                            i += 1;
                            break;
                        }
                        Some(&b'\\') => match bytes.get(i + 1) {
                            Some(&e) => {
                                s.push(e as char);
                                i += 2;
                            }
                            None => {
                                return Err(QueryError::Lex {
                                    offset: i,
                                    message: "dangling escape".into(),
                                })
                            }
                        },
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                Token::Str(s)
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let mut end = i + 1;
                let mut is_float = false;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_digit() {
                        end += 1;
                    } else if b == '.' && !is_float {
                        is_float = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..end];
                i = end;
                if is_float {
                    Token::Float(text.parse().map_err(|_| QueryError::Lex {
                        offset: start,
                        message: format!("bad float {text:?}"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| QueryError::Lex {
                        offset: start,
                        message: format!("bad integer {text:?}"),
                    })?)
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i + 1;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    // Identifiers may contain '-' (bldg-no) and '.'
                    // (qualified names like RA.rname); a '-' must be
                    // followed by an alphanumeric to avoid eating
                    // comments.
                    let ok = b.is_ascii_alphanumeric()
                        || b == '_'
                        || b == '.'
                        || (b == '-'
                            && bytes
                                .get(end + 1)
                                .is_some_and(|n| (*n as char).is_ascii_alphanumeric()));
                    if ok {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..end];
                i = end;
                keyword_or_ident(text)
            }
            other => {
                return Err(QueryError::Lex {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        };
        out.push(Spanned {
            token,
            offset: start,
        });
    }
    out.push(Spanned {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(out)
}

fn keyword_or_ident(text: &str) -> Token {
    match text.to_ascii_uppercase().as_str() {
        "SELECT" => Token::Select,
        "FROM" => Token::From,
        "WHERE" => Token::Where,
        "WITH" => Token::With,
        "AND" => Token::And,
        "OR" => Token::Or,
        "NOT" => Token::Not,
        "IS" => Token::Is,
        "UNION" => Token::Union,
        "JOIN" => Token::Join,
        "ON" => Token::On,
        "SN" => Token::Sn,
        "SP" => Token::Sp,
        _ => Token::Ident(text.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select From WHERE with"),
            vec![
                Token::Select,
                Token::From,
                Token::Where,
                Token::With,
                Token::Eof
            ]
        );
    }

    #[test]
    fn identifiers_with_dashes_and_dots() {
        assert_eq!(
            toks("bldg-no RA.rname best-dish"),
            vec![
                Token::Ident("bldg-no".into()),
                Token::Ident("RA.rname".into()),
                Token::Ident("best-dish".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 -7 0.5"),
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(0.5),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#"'si' "a\"b""#),
            vec![
                Token::Str("si".into()),
                Token::Str("a\"b".into()),
                Token::Eof
            ]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators_and_punct() {
        assert_eq!(
            toks("= != < <= > >= { } [ ] ^ ( ) , ; *"),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::LBrace,
                Token::RBrace,
                Token::LBracket,
                Token::RBracket,
                Token::Caret,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Semicolon,
                Token::Star,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("select -- this is a comment\nfrom"),
            vec![Token::Select, Token::From, Token::Eof]
        );
    }

    #[test]
    fn offsets_recorded() {
        let spanned = tokenize("select x").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 7);
    }

    #[test]
    fn canonical_round_trips_through_the_lexer() {
        let src = r#"select * FROM ra WHERE rname = 'don\'t  stop' AND x != "a\\b" WITH SN > 0.5 AND SP <= 1"#;
        let original = toks(src);
        let rendered = original
            .iter()
            .map(Token::canonical)
            .collect::<Vec<_>>()
            .join(" ");
        assert_eq!(toks(rendered.trim_end()), original, "{rendered}");
    }

    #[test]
    fn bad_characters_rejected() {
        assert!(tokenize("select @").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
