//! Prepared plans and the generation-keyed plan cache.
//!
//! Parsing is cheap; lowering, semantic validation, and the rewrite
//! optimizer are the per-query costs worth amortizing when the same
//! EQL text executes many times (the common shape of service
//! traffic). A [`PreparedPlan`] captures the *optimized* logical plan
//! once; re-execution goes straight to physical planning via
//! [`evirel_plan::execute_optimized`], skipping lowering and every
//! rewrite pass.
//!
//! **Staleness is the hazard**: a plan prepared against catalog
//! generation G bakes in G's schemas and rewrite decisions. If a
//! `\load` or merge-write has since replaced a relation binding, the
//! plan may reference attributes that no longer exist or distribute
//! predicates the new schema does not support. The cache therefore
//! keys every entry on **(normalized text, catalog generation)** —
//! see [`crate::snapshot::SharedCatalog`] — and a lookup against any
//! other generation is a miss (counted as a stale invalidation). The
//! regression test `tests/plan_cache.rs` pins the failure mode.

use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::lexer::Token;
use crate::plan::lower_validated;
use crate::snapshot::CatalogSnapshot;
use evirel_obs::Trace;
use evirel_plan::LogicalPlan;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default number of cached plans before FIFO eviction.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Normalize EQL text for cache keying by rendering the **lexer's
/// token stream** canonically ([`Token::canonical`], space-joined,
/// trailing `;` dropped) — so formatting variants, comments, keyword
/// case, and quote style collapse to one key while every semantic
/// difference survives. Keying on tokens rather than re-implementing
/// the lexer textually is what makes string literals safe: the lexer
/// accepts single- *and* double-quoted strings with `\`-escapes, and
/// any hand-rolled whitespace collapser that guesses at quoting
/// (treating `"a  b"` as outside a string, say) would merge queries
/// with different literals into one cache entry — wrong results, not
/// just a wasted slot. Identifiers and string literal *contents*
/// stay case-sensitive; only keywords fold (they are case-insensitive
/// in the lexer already).
///
/// Text the lexer rejects is keyed as its raw trimmed self: it can
/// never equal a canonical rendering (those re-lex cleanly), and
/// preparation fails with the lex error anyway — errors are not
/// cached.
pub fn normalize_eql(text: &str) -> String {
    let Ok(spanned) = crate::lexer::tokenize(text) else {
        return text.trim().to_owned();
    };
    let mut tokens: Vec<Token> = spanned.into_iter().map(|s| s.token).collect();
    while matches!(tokens.last(), Some(Token::Eof | Token::Semicolon)) {
        tokens.pop();
    }
    tokens
        .iter()
        .map(Token::canonical)
        .collect::<Vec<_>>()
        .join(" ")
}

/// A query prepared against one catalog generation: parsed, lowered,
/// validated, and rewritten exactly once.
#[derive(Debug)]
pub struct PreparedPlan {
    normalized: String,
    generation: u64,
    optimized: LogicalPlan,
    rewrites: Vec<String>,
}

impl PreparedPlan {
    /// Parse, lower, validate, and optimize `text` against `catalog`
    /// as it stands at `generation`.
    ///
    /// # Errors
    /// Lex/parse errors, unknown relations/attributes — exactly the
    /// plan-time errors of [`crate::execute`].
    pub fn prepare(
        catalog: &Catalog,
        generation: u64,
        text: &str,
    ) -> Result<PreparedPlan, QueryError> {
        let stmt = crate::parser::parse(text)?;
        let plan = lower_validated(&stmt, catalog)?;
        let logical = plan.to_logical();
        // Deriving the output schema forces every scan leaf to
        // resolve, so a query over an unregistered relation fails
        // *here* — at prepare time, with a typed error — instead of
        // caching a plan that can only fail at execution.
        evirel_plan::schema_of(&logical, catalog)?;
        let (optimized, fired) = evirel_plan::optimize(&logical, catalog);
        Ok(PreparedPlan {
            normalized: normalize_eql(text),
            generation,
            optimized,
            rewrites: fired.iter().map(|r| r.to_string()).collect(),
        })
    }

    /// The normalized text this plan was prepared from.
    pub fn normalized(&self) -> &str {
        &self.normalized
    }

    /// The catalog generation this plan is valid for.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The optimized logical plan (rewrites already applied).
    pub fn optimized(&self) -> &LogicalPlan {
        &self.optimized
    }

    /// The rewrite rules that fired during preparation, rendered.
    pub fn rewrites(&self) -> &[String] {
        &self.rewrites
    }
}

/// Counters describing cache effectiveness — `hits` is the
/// observable "lowering/rewrite was skipped" signal the service's
/// `STATS` command and the eql shell's `\cache` expose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from cache (same text, same generation).
    pub hits: u64,
    /// Lookups that had to prepare (no entry at all).
    pub misses: u64,
    /// Lookups that found the text but at an older generation — the
    /// stale-plan hazard, detected and re-prepared.
    pub stale: u64,
    /// Entries dropped by capacity eviction.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    plans: HashMap<String, Arc<PreparedPlan>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
    stats: CacheStats,
}

/// A shared, bounded cache of [`PreparedPlan`]s keyed by normalized
/// EQL text, validated against the catalog generation on every
/// lookup. Thread-safe; one instance serves every session of a
/// query service.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (≥ 1 enforced).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// The plan for `text` under `snapshot`'s generation, preparing
    /// and caching it on a miss. Returns the plan and whether it was
    /// a cache hit (`true` = lowering/rewrite were skipped).
    ///
    /// # Errors
    /// Preparation errors on a miss; errors are **not** cached.
    pub fn prepare_or_cached(
        &self,
        snapshot: &CatalogSnapshot,
        text: &str,
    ) -> Result<(Arc<PreparedPlan>, bool), QueryError> {
        let mut trace = Trace::new();
        self.prepare_or_cached_traced(snapshot, text, &mut trace)
    }

    /// [`PlanCache::prepare_or_cached`], recording stage timings into
    /// `trace`: `parse` (tokenize + canonical key), `cache_lookup`
    /// (the locked map probe), and — on a miss — `lower_rewrite` (the
    /// full prepare). On a hit, `lower_rewrite` is absent: that is
    /// the skipped work the cache exists to amortize, and its absence
    /// in a slow-query event is itself a signal.
    ///
    /// # Errors
    /// As [`PlanCache::prepare_or_cached`].
    pub fn prepare_or_cached_traced(
        &self,
        snapshot: &CatalogSnapshot,
        text: &str,
        trace: &mut Trace,
    ) -> Result<(Arc<PreparedPlan>, bool), QueryError> {
        let normalized = trace.time("parse", || normalize_eql(text));
        let lookup_started = Instant::now();
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let fresh = inner
                .plans
                .get(&normalized)
                .filter(|p| p.generation() == snapshot.generation())
                .cloned();
            let outcome = match fresh {
                Some(plan) => {
                    inner.stats.hits += 1;
                    Some(plan)
                }
                None if inner.plans.contains_key(&normalized) => {
                    inner.stats.stale += 1;
                    None
                }
                None => {
                    inner.stats.misses += 1;
                    None
                }
            };
            drop(inner);
            trace.record("cache_lookup", lookup_started.elapsed());
            if let Some(plan) = outcome {
                return Ok((plan, true));
            }
        }
        // Prepare outside the lock: planning is the expensive part,
        // and concurrent sessions preparing different queries should
        // not serialize. Two sessions racing on the *same* text both
        // prepare; the newest-generation plan wins the slot — wasted
        // work, never wrong results.
        let prepare_started = Instant::now();
        let plan = Arc::new(PreparedPlan::prepare(
            snapshot.catalog(),
            snapshot.generation(),
            text,
        )?);
        trace.record("lower_rewrite", prepare_started.elapsed());
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.plans.get(&normalized).map(|p| p.generation()) {
            // A racing session already cached a *fresher* plan for
            // this text; keep it — overwriting with the older one
            // would make every current-generation lookup count as
            // stale and re-prepare until the next insert.
            Some(existing) if existing > plan.generation() => {}
            Some(_) => {
                inner.plans.insert(normalized, Arc::clone(&plan));
            }
            None => {
                inner.plans.insert(normalized.clone(), Arc::clone(&plan));
                inner.order.push_back(normalized);
                while inner.plans.len() > self.capacity {
                    if let Some(oldest) = inner.order.pop_front() {
                        if inner.plans.remove(&oldest).is_some() {
                            inner.stats.evictions += 1;
                        }
                    } else {
                        break;
                    }
                }
            }
        }
        inner.stats.entries = inner.plans.len();
        Ok((plan, false))
    }

    /// Whether `text` would hit the cache at `generation`, without
    /// touching the statistics — for `EXPLAIN`-style observability.
    pub fn peek(&self, text: &str, generation: u64) -> bool {
        let normalized = normalize_eql(text);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .plans
            .get(&normalized)
            .is_some_and(|p| p.generation() == generation)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            entries: inner.plans.len(),
            ..inner.stats
        }
    }

    /// Drop every cached plan (stats are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.plans.clear();
        inner.order.clear();
        inner.stats.entries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SharedCatalog;
    use evirel_workload::restaurant_db_a;

    fn shared() -> SharedCatalog {
        let mut c = Catalog::new();
        c.register("ra", restaurant_db_a().restaurants);
        SharedCatalog::new(c)
    }

    #[test]
    fn normalization_collapses_whitespace_not_strings() {
        assert_eq!(
            normalize_eql("  SELECT *\n  FROM   ra ;  "),
            "SELECT * FROM ra"
        );
        // Whitespace inside string literals is preserved.
        assert_eq!(
            normalize_eql("SELECT * FROM ra WHERE rname = 'two  words'"),
            "SELECT * FROM ra WHERE rname = 'two  words'"
        );
        // Keywords fold (the lexer is case-insensitive for them)…
        assert_eq!(normalize_eql("select * from ra"), "SELECT * FROM ra");
        // …identifiers do not.
        assert_ne!(normalize_eql("SELECT * FROM RA"), "SELECT * FROM ra");
        // Comments are not query text.
        assert_eq!(
            normalize_eql("SELECT * -- pick everything\nFROM ra"),
            "SELECT * FROM ra"
        );
    }

    #[test]
    fn normalization_keys_literals_exactly_as_the_lexer_does() {
        // Double-quoted literals keep their interior whitespace: the
        // keys for "a  b" and "a b" must differ (a shared key would
        // let the second query replay the first one's cached plan).
        assert_ne!(
            normalize_eql(r#"SELECT * FROM ra WHERE rname = "a  b""#),
            normalize_eql(r#"SELECT * FROM ra WHERE rname = "a b""#)
        );
        // Same for whitespace after an escaped quote.
        assert_ne!(
            normalize_eql(r"SELECT * FROM ra WHERE rname = 'don\'t  stop'"),
            normalize_eql(r"SELECT * FROM ra WHERE rname = 'don\'t stop'")
        );
        // Quote style is spelling, not semantics: 'si' and "si" are
        // the same literal token, so they share one key.
        assert_eq!(
            normalize_eql(r#"SELECT * FROM ra WHERE rname = "si""#),
            normalize_eql("SELECT * FROM ra WHERE rname = 'si'")
        );
        // A literal never collides with the identifier it spells.
        assert_ne!(
            normalize_eql("SELECT * FROM ra WHERE rname = 'si'"),
            normalize_eql("SELECT * FROM ra WHERE rname = si")
        );
        // The canonical key re-lexes to the same token stream.
        let key = normalize_eql(r#"SELECT * FROM ra WHERE rname = "don't  stop""#);
        assert_eq!(normalize_eql(&key), key);
        // Unlexable text keys as raw trimmed text (and never collides
        // with a canonical key, which always re-lexes cleanly).
        assert_eq!(
            normalize_eql("  SELECT 'unterminated "),
            "SELECT 'unterminated"
        );
    }

    #[test]
    fn racing_insert_keeps_the_fresher_generation() {
        let shared = shared();
        let cache = PlanCache::new(8);
        let q = "SELECT * FROM ra WITH SN > 0";
        let old = shared.pin();
        shared
            .update(|c| {
                c.register("ra", restaurant_db_a().restaurants);
                Ok(())
            })
            .unwrap();
        let new = shared.pin();
        let (_, hit) = cache.prepare_or_cached(&new, q).unwrap();
        assert!(!hit);
        // A straggler session still pinned at the old generation
        // re-prepares (stale lookup) but must NOT clobber the
        // current-generation entry…
        let (_, hit) = cache.prepare_or_cached(&old, q).unwrap();
        assert!(!hit);
        assert!(cache.peek(q, new.generation()), "fresher entry survives");
        // …so current-generation sessions keep hitting.
        let (_, hit) = cache.prepare_or_cached(&new, q).unwrap();
        assert!(hit);
    }

    #[test]
    fn same_text_hits_different_generation_reprepares() {
        let shared = shared();
        let cache = PlanCache::new(8);
        let snap = shared.pin();
        let (_, hit) = cache
            .prepare_or_cached(&snap, "SELECT * FROM ra WITH SN > 0")
            .unwrap();
        assert!(!hit);
        let (_, hit) = cache
            .prepare_or_cached(&snap, "SELECT   * FROM ra   WITH SN > 0 ;")
            .unwrap();
        assert!(hit, "formatting variants share an entry");
        assert_eq!(cache.stats().hits, 1);

        shared
            .update(|c| {
                c.register("ra", restaurant_db_a().restaurants);
                Ok(())
            })
            .unwrap();
        let snap = shared.pin();
        let (_, hit) = cache
            .prepare_or_cached(&snap, "SELECT * FROM ra WITH SN > 0")
            .unwrap();
        assert!(!hit, "generation bump invalidates");
        assert_eq!(cache.stats().stale, 1);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let shared = shared();
        let cache = PlanCache::new(2);
        let snap = shared.pin();
        for q in [
            "SELECT * FROM ra",
            "SELECT * FROM ra WITH SN > 0.5",
            "SELECT * FROM ra WITH SN > 0.7",
        ] {
            cache.prepare_or_cached(&snap, q).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // The oldest entry is gone, the newest two still hit.
        assert!(!cache.peek("SELECT * FROM ra", snap.generation()));
        assert!(cache.peek("SELECT * FROM ra WITH SN > 0.7", snap.generation()));
    }

    #[test]
    fn errors_are_not_cached() {
        let shared = shared();
        let cache = PlanCache::new(8);
        let snap = shared.pin();
        assert!(cache
            .prepare_or_cached(&snap, "SELECT * FROM ghost")
            .is_err());
        assert_eq!(cache.stats().entries, 0);
        // Two misses recorded, no entry left behind.
        assert!(cache
            .prepare_or_cached(&snap, "SELECT * FROM ghost")
            .is_err());
        assert_eq!(cache.stats().misses, 2);
    }
}
