//! Epoch-snapshot isolation over the [`Catalog`].
//!
//! The concurrent query service runs N sessions over one shared
//! catalog. Readers must never observe a *half-swapped* catalog — a
//! `\load` that has replaced one relation binding but not yet the
//! other, or a merge-write applied to one of two relations a query
//! scans. This module formalizes the RCU-style publish/retire
//! discipline the `Arc`-based bindings already make nearly free:
//!
//! * The current catalog lives behind an immutable, generation-
//!   stamped [`CatalogSnapshot`] inside an `Arc`. **Readers pin** a
//!   snapshot ([`SharedCatalog::pin`]) — one `Arc` clone under a
//!   briefly-held lock — and execute entirely against it; nothing a
//!   concurrent writer does can change what they see.
//! * **Writers publish** ([`SharedCatalog::update`]): clone the
//!   current catalog (cheap — maps of `Arc` handles), apply the
//!   mutation to the clone, bump the generation counter, and swap the
//!   new snapshot in atomically. A failed mutation publishes nothing.
//! * **Retirement is automatic**: the old generation's `Arc` drops
//!   when the last pinned reader finishes — no epoch bookkeeping
//!   thread, no grace periods.
//!
//! The generation number doubles as the invalidation key for the
//! prepared-plan cache ([`crate::prepare::PlanCache`]): a plan
//! prepared against generation G is only replayed against generation
//! G.

use crate::catalog::Catalog;
use crate::error::QueryError;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// One immutable, generation-stamped published catalog state.
///
/// Snapshots are only constructed by [`SharedCatalog`]; holding an
/// `Arc<CatalogSnapshot>` pins every relation binding (and the shared
/// buffer pool handle) exactly as they were at publish time.
#[derive(Debug)]
pub struct CatalogSnapshot {
    generation: u64,
    catalog: Catalog,
}

impl CatalogSnapshot {
    /// The epoch this snapshot was published at. Strictly increasing
    /// across [`SharedCatalog::update`] calls; generation 0 is the
    /// initial catalog.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The pinned catalog state.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

/// A catalog shared by many sessions, read through pinned snapshots
/// and written through atomic generation swaps. See the module docs.
#[derive(Debug)]
pub struct SharedCatalog {
    current: RwLock<Arc<CatalogSnapshot>>,
    /// Publish signal: paired with `publish_cv` so subscribers
    /// ([`SharedCatalog::wait_newer`]) block instead of spinning.
    /// Publishers release the `current` write lock *before* taking
    /// this mutex (lock order: never both), then notify.
    publish_lock: Mutex<()>,
    publish_cv: Condvar,
}

impl SharedCatalog {
    /// Publish `catalog` as generation 0.
    pub fn new(catalog: Catalog) -> SharedCatalog {
        SharedCatalog::with_generation(catalog, 0)
    }

    /// Publish `catalog` at an explicit starting generation — the
    /// durable-recovery boot path uses this so the in-memory
    /// generation counter continues from the last committed
    /// generation instead of restarting at 0 (clients comparing STATS
    /// generations across a restart must see monotonicity).
    pub fn with_generation(catalog: Catalog, generation: u64) -> SharedCatalog {
        SharedCatalog {
            current: RwLock::new(Arc::new(CatalogSnapshot {
                generation,
                catalog,
            })),
            publish_lock: Mutex::new(()),
            publish_cv: Condvar::new(),
        }
    }

    /// Pin the current snapshot: the returned handle keeps every
    /// binding of this generation alive and unchanged for as long as
    /// it is held, no matter what writers publish meanwhile.
    pub fn pin(&self) -> Arc<CatalogSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The current generation number (advances on every successful
    /// [`SharedCatalog::update`]).
    pub fn generation(&self) -> u64 {
        self.pin().generation
    }

    /// Apply a mutation and publish it as the next generation.
    ///
    /// The closure runs on a private clone of the current catalog;
    /// concurrent readers keep seeing the old generation until the
    /// swap, and an `Err` from the closure publishes **nothing** —
    /// there is no observable half-applied state, ever. Writers
    /// serialize against each other (the closure runs under the write
    /// lock), so read-modify-write sequences like "execute this merge
    /// query, then register the result" are atomic when expressed as
    /// one `update` call.
    ///
    /// # Errors
    /// Whatever the closure returns; the catalog is unchanged then.
    pub fn update<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog) -> Result<T, QueryError>,
    ) -> Result<T, QueryError> {
        self.update_with_generation(mutate).map(|(value, _)| value)
    }

    /// [`SharedCatalog::update`], additionally returning the
    /// generation this mutation was published at. Use this when
    /// reporting the write: with concurrent writers, reading
    /// [`SharedCatalog::generation`] after `update` returns may
    /// already observe a *later* writer's bump.
    ///
    /// # Errors
    /// As [`SharedCatalog::update`].
    pub fn update_with_generation<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog) -> Result<T, QueryError>,
    ) -> Result<(T, u64), QueryError> {
        self.update_at(|catalog, _| mutate(catalog))
    }

    /// As [`SharedCatalog::update_with_generation`], but the closure
    /// also receives the generation the mutation will publish as.
    ///
    /// This is the durability hook: the closure can write a journal
    /// record stamped with that generation and fsync it *before*
    /// returning — because the closure runs under the write lock, the
    /// record is durable before any reader can observe the new
    /// generation, and writers (hence journal appends) are totally
    /// ordered with strictly increasing generations. An `Err` from
    /// the closure publishes nothing, exactly as in `update`.
    ///
    /// # Errors
    /// Whatever the closure returns; the catalog is unchanged then.
    pub fn update_at<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog, u64) -> Result<T, QueryError>,
    ) -> Result<(T, u64), QueryError> {
        let result = {
            let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
            let mut next = slot.catalog.clone();
            let generation = slot.generation + 1;
            let value = mutate(&mut next, generation)?;
            *slot = Arc::new(CatalogSnapshot {
                generation,
                catalog: next,
            });
            (value, generation)
        };
        self.notify_publish();
        Ok(result)
    }

    /// Publish a mutation at an **explicit** generation instead of
    /// `current + 1`. This is the replication-apply hook: a follower
    /// replays the primary's journal records and must publish each one
    /// at the generation the *primary* stamped it with, so pinned
    /// snapshots on the standby carry the same generation numbers as
    /// on the primary and STATS/plan-cache keys line up across
    /// failover. Generations may skip (the primary's counter also
    /// advances on mutations that never reach this follower's catalog,
    /// e.g. drops of unknown names) but must strictly increase.
    ///
    /// # Errors
    /// Whatever the closure returns, or [`QueryError::Execution`] when
    /// `generation` does not advance past the published one; nothing
    /// is published in either case.
    pub fn update_stamped<T>(
        &self,
        generation: u64,
        mutate: impl FnOnce(&mut Catalog) -> Result<T, QueryError>,
    ) -> Result<T, QueryError> {
        let value = {
            let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
            if generation <= slot.generation {
                return Err(QueryError::Execution {
                    message: format!(
                        "stamped publish must advance the generation \
                         (current {}, stamped {generation})",
                        slot.generation
                    ),
                });
            }
            let mut next = slot.catalog.clone();
            let value = mutate(&mut next)?;
            *slot = Arc::new(CatalogSnapshot {
                generation,
                catalog: next,
            });
            value
        };
        self.notify_publish();
        Ok(value)
    }

    /// Block until a generation **newer than** `seen` is published,
    /// returning the freshly pinned snapshot, or `None` on timeout.
    /// This is the replication sender's subscription hook: instead of
    /// polling [`SharedCatalog::generation`], the sender parks here
    /// and wakes exactly when a writer publishes.
    pub fn wait_newer(&self, seen: u64, timeout: Duration) -> Option<Arc<CatalogSnapshot>> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.publish_lock.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // Checking under `publish_lock` closes the missed-wakeup
            // window: a publisher that swaps after this check cannot
            // notify until `wait_timeout` releases the mutex.
            let snapshot = self.pin();
            if snapshot.generation > seen {
                return Some(snapshot);
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (next, result) = self
                .publish_cv
                .wait_timeout(guard, remaining)
                .unwrap_or_else(|e| e.into_inner());
            guard = next;
            if result.timed_out() {
                let snapshot = self.pin();
                return (snapshot.generation > seen).then_some(snapshot);
            }
        }
    }

    fn notify_publish(&self) {
        // Taking the mutex (even empty-handed) orders this notify
        // after any in-flight waiter's condition check.
        drop(self.publish_lock.lock().unwrap_or_else(|e| e.into_inner()));
        self.publish_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, ExtendedRelation, RelationBuilder, Schema};
    use std::sync::Arc;

    fn rel(mass: f64) -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("r")
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("k", "a")
                    .set_evidence_with_omega("d", [(&["x"][..], mass)], 1.0 - mass)
            })
            .unwrap()
            .build()
    }

    #[test]
    fn pinned_snapshot_survives_updates() {
        let shared = SharedCatalog::new({
            let mut c = Catalog::new();
            c.register("r", rel(0.25));
            c
        });
        let pinned = shared.pin();
        assert_eq!(pinned.generation(), 0);

        shared
            .update(|c| {
                c.register("r", rel(0.75));
                Ok(())
            })
            .unwrap();
        assert_eq!(shared.generation(), 1);

        // The pinned reader still sees generation 0's binding…
        let old = pinned.catalog().get("r").unwrap();
        let new = shared.pin();
        let new = new.catalog().get("r").unwrap();
        assert!(!std::ptr::eq(old, new));
        // …and a fresh pin sees the new one.
        assert_eq!(new.len(), 1);
    }

    #[test]
    fn failed_update_publishes_nothing() {
        let shared = SharedCatalog::new(Catalog::new());
        let err = shared.update(|c| {
            c.register("ghost", rel(0.5));
            Err::<(), _>(QueryError::Execution {
                message: "boom".into(),
            })
        });
        assert!(err.is_err());
        assert_eq!(shared.generation(), 0);
        assert!(shared.pin().catalog().get("ghost").is_none());
    }

    #[test]
    fn updates_serialize_and_bump_generations() {
        let shared = Arc::new(SharedCatalog::new(Catalog::new()));
        std::thread::scope(|s| {
            for i in 0..8 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    shared
                        .update(|c| {
                            c.register(format!("r{i}"), rel(0.5));
                            Ok(())
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(shared.generation(), 8);
        assert_eq!(shared.pin().catalog().len(), 8);
    }

    #[test]
    fn stamped_publish_carries_explicit_generations() {
        let shared = SharedCatalog::new(Catalog::new());
        shared
            .update_stamped(7, |c| {
                c.register("r", rel(0.5));
                Ok(())
            })
            .unwrap();
        assert_eq!(shared.generation(), 7);
        // Generations may skip but never stall or regress.
        for stale in [0, 3, 7] {
            let err = shared.update_stamped(stale, |_| Ok(()));
            assert!(err.is_err(), "stamped {stale} after 7 must fail");
            assert_eq!(shared.generation(), 7);
        }
        shared.update_stamped(9, |_| Ok(())).unwrap();
        assert_eq!(shared.generation(), 9);
        // A failed mutation publishes nothing, as with `update`.
        let err = shared.update_stamped(12, |c| {
            c.register("ghost", rel(0.5));
            Err::<(), _>(QueryError::Execution {
                message: "boom".into(),
            })
        });
        assert!(err.is_err());
        assert_eq!(shared.generation(), 9);
        assert!(shared.pin().catalog().get("ghost").is_none());
    }

    #[test]
    fn wait_newer_wakes_on_publish_and_times_out_without_one() {
        use std::time::Duration;
        let shared = Arc::new(SharedCatalog::new(Catalog::new()));
        // No publish: times out empty-handed.
        assert!(shared.wait_newer(0, Duration::from_millis(20)).is_none());
        // Already-newer generation: returns immediately.
        shared.update(|_| Ok(())).unwrap();
        let snap = shared.wait_newer(0, Duration::from_secs(5)).unwrap();
        assert_eq!(snap.generation(), 1);
        // A publish from another thread wakes a parked waiter.
        std::thread::scope(|s| {
            let waiter = {
                let shared = Arc::clone(&shared);
                s.spawn(move || shared.wait_newer(1, Duration::from_secs(30)))
            };
            std::thread::sleep(Duration::from_millis(30));
            shared.update(|_| Ok(())).unwrap();
            let snap = waiter.join().unwrap().expect("waiter sees the publish");
            assert_eq!(snap.generation(), 2);
        });
    }

    #[test]
    fn each_writer_learns_its_own_published_generation() {
        let shared = Arc::new(SharedCatalog::new(Catalog::new()));
        let published = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for i in 0..8 {
                let shared = Arc::clone(&shared);
                let published = &published;
                s.spawn(move || {
                    let ((), generation) = shared
                        .update_with_generation(|c| {
                            c.register(format!("r{i}"), rel(0.5));
                            Ok(())
                        })
                        .unwrap();
                    published.lock().unwrap().push(generation);
                });
            }
        });
        // Every writer saw a distinct generation — exactly 1..=8, not
        // whatever the counter happened to read after later bumps.
        let mut published = published.into_inner().unwrap();
        published.sort_unstable();
        assert_eq!(published, (1..=8).collect::<Vec<u64>>());
    }
}
