//! # evirel-query — a query language over extended relations
//!
//! The paper closes §3 with query processing over the integrated
//! relation; this crate provides a small SQL-flavoured surface
//! language (EQL) whose `WHERE` clause is exactly the paper's
//! selection-condition language and whose `WITH` clause is the
//! membership threshold condition `Q`:
//!
//! ```text
//! SELECT rname, phone, speciality
//! FROM ra UNION rb
//! WHERE speciality IS {si} AND rating >= 'gd'
//! WITH SN > 0.5;
//! ```
//!
//! * is-predicates:    `attr IS {v1, v2}`
//! * θ-predicates:     `attr >= 'gd'`, `a.k = b.k`,
//!   `n <= [{1,4}^0.6, {2,6}^0.4]` (evidence literals)
//! * compound:         `AND` (paper), `OR` / `NOT` (documented
//!   extensions)
//! * sources:          a named relation, `UNION` chains (the extended
//!   union ∪̃), and binary `JOIN … ON …` (⋈̃)
//! * thresholds:       `WITH SN > c`, `WITH SN >= c`, `WITH SN = 1`,
//!   `WITH SP >= c`
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → [`plan`] → [`exec`]
//! against a [`catalog::Catalog`] of named extended relations.
//!
//! ```
//! use evirel_query::{Catalog, execute};
//! use evirel_workload::restaurant_db_a;
//!
//! let mut catalog = Catalog::new();
//! catalog.register("ra", restaurant_db_a().restaurants);
//! let result = execute(&catalog, "SELECT * FROM ra WHERE speciality IS {si} WITH SN > 0;")
//!     .unwrap();
//! assert_eq!(result.len(), 2); // garden and wok — the paper's Table 2
//! ```

pub mod ast;
pub mod catalog;
pub mod durable;
pub mod error;
pub mod exec;
pub mod format;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod prepare;
pub mod session;
pub mod snapshot;

pub use catalog::Catalog;
pub use durable::{
    parse_retain_records, retain_records_cap, DurabilityStats, DurableCatalog, DurableMetrics,
    StreamPlan, MAX_RETAIN_RECORDS, RETAINED_RECORDS_CAP,
};
pub use error::QueryError;
pub use exec::{execute, execute_parsed, execute_with_report, QueryOutcome};
pub use parser::parse;
pub use plan::{explain, explain_analyze_with, explain_with};
pub use prepare::{normalize_eql, CacheStats, PlanCache, PreparedPlan};
pub use session::{
    register_query_collectors, slow_query_ms_from_env, Session, SessionBudget, SessionOutcome,
    DEFAULT_SLOW_QUERY_MS, SLOW_QUERY_ENV,
};
pub use snapshot::{CatalogSnapshot, SharedCatalog};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, QueryError>;
