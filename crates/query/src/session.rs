//! One query session over a shared catalog: snapshot-pinned reads,
//! cached prepared plans, and per-session resource budgets.
//!
//! A [`Session`] is what a server worker (or the eql shell) holds per
//! connection. Every query pins one catalog generation
//! ([`crate::snapshot::SharedCatalog::pin`]), resolves its plan
//! through the shared [`crate::prepare::PlanCache`], and executes
//! under this session's slice of the process-wide resources: the
//! thread budget (`EVIREL_THREADS`) and spill budget
//! (`EVIREL_BUFFER_BYTES`) are carved per session so N concurrent
//! sessions cannot multiply them by N.

use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::exec::QueryOutcome;
use crate::prepare::{PlanCache, PreparedPlan};
use crate::snapshot::{CatalogSnapshot, SharedCatalog};
use evirel_obs::{Counter, Event, Histogram, MetricsRegistry, Trace};
use evirel_plan::{ExecContext, OpMeter};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Environment knob: queries whose wall-clock time meets or exceeds
/// this many milliseconds emit one structured `slow_query` event (to
/// the registry's event log and stderr) with per-stage span timings
/// and the plan's est-vs-actual row counts. `0` logs every query —
/// useful for smoke tests and load drills. Invalid values warn once
/// on stderr and fall back to [`DEFAULT_SLOW_QUERY_MS`].
pub const SLOW_QUERY_ENV: &str = "EVIREL_SLOW_QUERY_MS";

/// Default slow-query threshold when [`SLOW_QUERY_ENV`] is unset.
pub const DEFAULT_SLOW_QUERY_MS: u64 = 500;

/// The slow-query threshold from [`SLOW_QUERY_ENV`], reject-loudly:
/// an unparsable value warns once on stderr (naming the value, the
/// accepted form, and the default used) rather than silently changing
/// what gets logged.
pub fn slow_query_ms_from_env() -> u64 {
    let Ok(raw) = std::env::var(SLOW_QUERY_ENV) else {
        return DEFAULT_SLOW_QUERY_MS;
    };
    match raw.trim().parse::<u64>() {
        Ok(ms) => ms,
        Err(_) => {
            static WARNED: Once = Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "evirel: ignoring invalid {SLOW_QUERY_ENV}={raw:?}: expected a \
                     non-negative integer of milliseconds (0 logs every query); \
                     using default {DEFAULT_SLOW_QUERY_MS}"
                );
            });
            DEFAULT_SLOW_QUERY_MS
        }
    }
}

/// Pre-registered handles for the per-query hot path, so executing a
/// query touches only atomics — the registry's map lock is paid once
/// per session, not once per query.
#[derive(Debug, Clone)]
struct QueryMetrics {
    executions: Counter,
    slow_queries: Counter,
    total_seconds: Histogram,
    stage_parse: Histogram,
    stage_cache_lookup: Histogram,
    stage_lower_rewrite: Histogram,
    stage_execute: Histogram,
    tuples_scanned: Counter,
    tuples_emitted: Counter,
    pairs_merged: Counter,
    conflicts: Counter,
}

impl QueryMetrics {
    fn new(registry: &MetricsRegistry) -> QueryMetrics {
        let stage = |name: &str| {
            registry.histogram(
                "evirel_query_stage_seconds",
                "Per-stage query lifecycle latency",
                &[("stage", name)],
            )
        };
        QueryMetrics {
            executions: registry.counter(
                "evirel_query_executions_total",
                "Queries executed to completion",
                &[],
            ),
            slow_queries: registry.counter(
                "evirel_query_slow_total",
                "Queries at or over the EVIREL_SLOW_QUERY_MS threshold",
                &[],
            ),
            total_seconds: registry.histogram(
                "evirel_query_seconds",
                "End-to-end query latency (prepare + execute)",
                &[],
            ),
            stage_parse: stage("parse"),
            stage_cache_lookup: stage("cache_lookup"),
            stage_lower_rewrite: stage("lower_rewrite"),
            stage_execute: stage("execute"),
            tuples_scanned: registry.counter(
                "evirel_exec_tuples_scanned_total",
                "Tuples pulled out of scan leaves",
                &[],
            ),
            tuples_emitted: registry.counter(
                "evirel_exec_tuples_emitted_total",
                "Tuples emitted by plan roots",
                &[],
            ),
            pairs_merged: registry.counter(
                "evirel_exec_pairs_merged_total",
                "Tuple pairs combined by \u{222a}\u{303}/\u{2229}\u{303} merges",
                &[],
            ),
            conflicts: registry.counter(
                "evirel_exec_conflicts_total",
                "Conflict-report entries recorded during execution",
                &[],
            ),
        }
    }

    fn stage_histogram(&self, stage: &str) -> Option<&Histogram> {
        match stage {
            "parse" => Some(&self.stage_parse),
            "cache_lookup" => Some(&self.stage_cache_lookup),
            "lower_rewrite" => Some(&self.stage_lower_rewrite),
            "execute" => Some(&self.stage_execute),
            _ => None,
        }
    }
}

/// Per-session resource limits, carved from the process budgets.
/// `None` fields fall back to the pinned catalog's own settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionBudget {
    /// Worker threads this session's queries may use (caps
    /// [`ExecContext::parallelism`]).
    pub parallelism: Option<usize>,
    /// Spill threshold in bytes for this session's merge build sides
    /// (caps [`ExecContext::spill_threshold_bytes`]).
    pub spill_bytes: Option<usize>,
}

impl SessionBudget {
    /// An even share of `total_threads` and `pool_bytes` across
    /// `sessions` concurrent sessions (each at least 1 thread / 1
    /// byte, so small budgets degrade to sequential, eagerly-spilling
    /// sessions rather than panicking).
    pub fn share_of(total_threads: usize, pool_bytes: usize, sessions: usize) -> SessionBudget {
        let sessions = sessions.max(1);
        SessionBudget {
            parallelism: Some((total_threads / sessions).max(1)),
            spill_bytes: Some((pool_bytes / sessions).max(1)),
        }
    }
}

/// The result of one session query: the relation/report/stats of
/// [`QueryOutcome`] plus execution provenance.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The relation, conflict report, and counters.
    pub outcome: QueryOutcome,
    /// `true` when the plan came from the cache — lowering,
    /// validation, and the rewrite pass were all skipped.
    pub cached_plan: bool,
    /// The catalog generation the query executed against.
    pub generation: u64,
}

/// A session over a [`SharedCatalog`] + [`PlanCache`] pair. Cheap to
/// clone conceptually (all shared state is behind `Arc`s), but each
/// connection should own one so budgets stay per-session.
#[derive(Debug)]
pub struct Session {
    shared: Arc<SharedCatalog>,
    cache: Arc<PlanCache>,
    /// This session's resource slice.
    pub budget: SessionBudget,
    read_only: bool,
    metrics: Arc<MetricsRegistry>,
    qm: QueryMetrics,
    slow_query_ms: u64,
}

impl Session {
    /// A session with default (uncapped) budgets.
    pub fn new(shared: Arc<SharedCatalog>, cache: Arc<PlanCache>) -> Session {
        Session::with_budget(shared, cache, SessionBudget::default())
    }

    /// A session with an explicit budget. Metrics land in the
    /// process-wide [`evirel_obs::global`] registry until
    /// [`Session::set_metrics`] plumbs in a specific one.
    pub fn with_budget(
        shared: Arc<SharedCatalog>,
        cache: Arc<PlanCache>,
        budget: SessionBudget,
    ) -> Session {
        let metrics = Arc::clone(evirel_obs::global());
        let qm = QueryMetrics::new(&metrics);
        Session {
            shared,
            cache,
            budget,
            read_only: false,
            metrics,
            qm,
            slow_query_ms: slow_query_ms_from_env(),
        }
    }

    /// Route this session's metrics and slow-query events into
    /// `registry` — the server plumbs its per-instance registry here
    /// so concurrent in-process servers do not bleed counters into
    /// each other.
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.qm = QueryMetrics::new(&registry);
        self.metrics = registry;
    }

    /// The registry this session's queries report into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Override the slow-query threshold (milliseconds; 0 logs every
    /// query) for this session — tests and drills use this instead of
    /// mutating the process environment.
    pub fn set_slow_query_ms(&mut self, ms: u64) {
        self.slow_query_ms = ms;
    }

    /// Mark this session read-only: every `update*` call returns
    /// [`QueryError::ReadOnly`] without touching the catalog. A
    /// replication follower hands read-only sessions to its query
    /// workers; only the apply loop (which publishes via
    /// [`SharedCatalog::update_stamped`] directly) mutates the
    /// standby's catalog.
    pub fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// Whether this session rejects mutations.
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    fn check_writable(&self) -> Result<(), QueryError> {
        if self.read_only {
            Err(QueryError::ReadOnly {
                message: "this session serves a replication standby; \
                          promote the follower to accept writes"
                    .into(),
            })
        } else {
            Ok(())
        }
    }

    /// The shared catalog this session reads and writes.
    pub fn shared(&self) -> &Arc<SharedCatalog> {
        &self.shared
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Pin the current catalog generation (see
    /// [`SharedCatalog::pin`]).
    pub fn pin(&self) -> Arc<CatalogSnapshot> {
        self.shared.pin()
    }

    /// Execute `text` against a pinned snapshot, through the plan
    /// cache, under this session's budget.
    ///
    /// # Errors
    /// As [`crate::execute`]; additionally nothing — a malformed
    /// query, unknown relation, or algebra failure all round-trip as
    /// typed [`QueryError`]s, never a panic.
    pub fn query(&self, text: &str) -> Result<SessionOutcome, QueryError> {
        let snapshot = self.pin();
        self.query_pinned(&snapshot, text)
    }

    /// [`Session::query`] against an already-pinned snapshot — for
    /// callers composing a read with other reads of the same
    /// generation.
    ///
    /// # Errors
    /// As [`Session::query`].
    pub fn query_pinned(
        &self,
        snapshot: &CatalogSnapshot,
        text: &str,
    ) -> Result<SessionOutcome, QueryError> {
        let mut trace = Trace::new();
        let (prepared, cached_plan) = self
            .cache
            .prepare_or_cached_traced(snapshot, text, &mut trace)?;
        let mut ctx = self.context_for(snapshot.catalog());
        let exec_started = Instant::now();
        // Metered execution is observation only (see
        // `execute_optimized_metered`): results are identical to the
        // unmetered path, so instrumenting production queries cannot
        // change what they produce.
        let (relation, meters) = evirel_plan::execute_optimized_metered(
            prepared.optimized(),
            snapshot.catalog(),
            &mut ctx,
        )?;
        trace.record("execute", exec_started.elapsed());
        let outcome = SessionOutcome {
            outcome: QueryOutcome {
                relation,
                report: ctx.conflict_report(),
                stats: ctx.stats,
            },
            cached_plan,
            generation: snapshot.generation(),
        };
        self.observe_query(&prepared, &outcome, &trace, &meters);
        Ok(outcome)
    }

    /// Flush one completed query into the registry: stage latency
    /// histograms, the end-to-end histogram, and the execution
    /// counters — and emit a slow-query event when the total meets
    /// the threshold.
    ///
    /// This is the **only** place [`evirel_plan::ExecStats`] flow
    /// into the registry, and it reads the parent context *after* the
    /// exchange has re-merged its per-worker contexts — so parallel
    /// queries count each tuple exactly once, including when a
    /// fragment declines the exchange and re-recurses into an inner
    /// one (the per-worker contexts are private to the exchange and
    /// never flushed here).
    fn observe_query(
        &self,
        prepared: &PreparedPlan,
        outcome: &SessionOutcome,
        trace: &Trace,
        meters: &[OpMeter],
    ) {
        let qm = &self.qm;
        qm.executions.inc();
        for (stage, elapsed) in trace.stages() {
            if let Some(h) = qm.stage_histogram(stage) {
                h.observe(*elapsed);
            }
        }
        let total = trace.total();
        qm.total_seconds.observe(total);
        let stats = &outcome.outcome.stats;
        qm.tuples_scanned.add(stats.tuples_scanned as u64);
        qm.tuples_emitted.add(stats.tuples_emitted as u64);
        qm.pairs_merged.add(stats.pairs_merged as u64);
        qm.conflicts.add(stats.conflicts as u64);

        if total < Duration::from_millis(self.slow_query_ms) {
            return;
        }
        qm.slow_queries.inc();
        let mut event = Event::new("slow_query")
            .field("eql", prepared.normalized())
            .field("generation", outcome.generation)
            .field("cached_plan", outcome.cached_plan)
            .field(
                "total_us",
                total.as_micros().min(u128::from(u64::MAX)) as u64,
            );
        for (key, value) in trace.stage_fields() {
            event.fields.push((key, value));
        }
        if let Some(root) = meters.first() {
            event = event.field(
                "root_est_rows",
                root.est_rows
                    .map_or_else(|| "?".to_owned(), |n| n.to_string()),
            );
            event = event.field("root_act_rows", root.actual_rows);
        }
        let plan_lines: Vec<String> = meters
            .iter()
            .map(|m| {
                format!(
                    "{} est={} act={}",
                    m.describe,
                    m.est_rows.map_or_else(|| "?".to_owned(), |n| n.to_string()),
                    m.actual_rows
                )
            })
            .collect();
        event = event.field("plan", plan_lines.join("; "));
        eprintln!("{}", event.render());
        self.metrics.events().record(event);
    }

    /// Apply a catalog mutation as the next generation (see
    /// [`SharedCatalog::update`]). Cached plans of older generations
    /// become stale automatically — the cache re-prepares on next
    /// lookup.
    ///
    /// # Errors
    /// Whatever `mutate` returns; nothing is published then.
    pub fn update<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog) -> Result<T, QueryError>,
    ) -> Result<T, QueryError> {
        self.check_writable()?;
        self.shared.update(mutate)
    }

    /// [`Session::update`], additionally returning the generation the
    /// mutation was published at (see
    /// [`SharedCatalog::update_with_generation`]).
    ///
    /// # Errors
    /// As [`Session::update`].
    pub fn update_with_generation<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog) -> Result<T, QueryError>,
    ) -> Result<(T, u64), QueryError> {
        self.check_writable()?;
        self.shared.update_with_generation(mutate)
    }

    /// [`Session::update_with_generation`] with the to-be-published
    /// generation passed *into* the closure (see
    /// [`SharedCatalog::update_at`]) — the durability hook: journal
    /// the mutation at that generation, fsync, then return.
    ///
    /// # Errors
    /// As [`Session::update`].
    pub fn update_at<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog, u64) -> Result<T, QueryError>,
    ) -> Result<(T, u64), QueryError> {
        self.check_writable()?;
        self.shared.update_at(mutate)
    }

    /// Full `EXPLAIN` of `text` against the current generation —
    /// **analyzing**: the plan executes (result discarded) so every
    /// physical operator line shows estimated vs actual rows
    /// ([`crate::explain_analyze_with`]) — with a trailing
    /// `plan cache:` line showing whether execution would hit the
    /// prepared-plan cache (the observable "lowering/rewrite skipped"
    /// signal).
    ///
    /// # Errors
    /// As [`crate::explain_analyze_with`].
    pub fn explain(&self, text: &str) -> Result<String, QueryError> {
        let snapshot = self.pin();
        let mut out = crate::plan::explain_analyze_with(snapshot.catalog(), text)?;
        let hit = self.cache.peek(text, snapshot.generation());
        out.push_str(&format!(
            "plan cache: {} (generation {})\n",
            if hit {
                "hit — lowering/rewrite skipped"
            } else {
                "miss — would prepare"
            },
            snapshot.generation(),
        ));
        Ok(out)
    }

    /// The execution context this session's queries run under:
    /// catalog options and pool, with parallelism and spill threshold
    /// capped to the session budget.
    fn context_for(&self, catalog: &Catalog) -> ExecContext {
        let mut ctx = ExecContext::with_options(catalog.union_options.clone());
        ctx.pool = Arc::clone(&catalog.pool);
        ctx.parallelism = self
            .budget
            .parallelism
            .unwrap_or(catalog.parallelism)
            .max(1);
        ctx.spill_threshold_bytes = self
            .budget
            .spill_bytes
            .unwrap_or_else(|| catalog.pool.budget_bytes());
        ctx
    }
}

/// Register the query-level collectors — plan cache and buffer pool /
/// catalog generation — into `metrics`. Both the `evirel-serve`
/// server (per-server registry) and the `eql` REPL (process-global
/// registry) call this, so `STATS`, `METRICS`, `\cache` and `\pool`
/// all read the same series names.
///
/// The closures capture only the narrow `Arc`s passed in — safe to
/// call with a registry owned by a struct that also owns these Arcs
/// without creating a reference cycle.
pub fn register_query_collectors(
    metrics: &MetricsRegistry,
    catalog: &Arc<SharedCatalog>,
    cache: &Arc<PlanCache>,
) {
    {
        let cache = Arc::clone(cache);
        let hits = metrics.counter(
            "evirel_query_cache_hits_total",
            "Plan-cache hits (lowering/rewrite skipped)",
            &[],
        );
        let misses = metrics.counter("evirel_query_cache_misses_total", "Plan-cache misses", &[]);
        let stale = metrics.counter(
            "evirel_query_cache_stale_total",
            "Plan-cache entries invalidated by a generation bump",
            &[],
        );
        let evictions = metrics.counter(
            "evirel_query_cache_evictions_total",
            "Plan-cache FIFO evictions",
            &[],
        );
        let entries = metrics.gauge("evirel_query_cache_entries", "Plan-cache entries", &[]);
        metrics.register_collector("query.cache", move || {
            let s = cache.stats();
            hits.set_at_least(s.hits);
            misses.set_at_least(s.misses);
            stale.set_at_least(s.stale);
            evictions.set_at_least(s.evictions);
            entries.set(s.entries as u64);
        });
    }
    {
        let catalog = Arc::clone(catalog);
        let generation = metrics.gauge(
            "evirel_catalog_generation",
            "Published catalog generation",
            &[],
        );
        let hits = metrics.counter("evirel_store_pool_hits_total", "Buffer-pool page hits", &[]);
        let misses = metrics.counter(
            "evirel_store_pool_misses_total",
            "Buffer-pool page misses (disk reads)",
            &[],
        );
        let evictions = metrics.counter(
            "evirel_store_pool_evictions_total",
            "Buffer-pool page evictions",
            &[],
        );
        let overcommits = metrics.counter(
            "evirel_store_pool_overcommits_total",
            "Pages admitted past the byte budget",
            &[],
        );
        let bytes = metrics.gauge("evirel_store_pool_cached_bytes", "Bytes cached", &[]);
        let pages = metrics.gauge("evirel_store_pool_cached_pages", "Pages cached", &[]);
        metrics.register_collector("store.pool", move || {
            let snapshot = catalog.pin();
            generation.set(snapshot.generation());
            let s = snapshot.catalog().pool.stats();
            hits.set_at_least(s.hits);
            misses.set_at_least(s.misses);
            evictions.set_at_least(s.evictions);
            overcommits.set_at_least(s.overcommits);
            bytes.set(s.bytes_cached as u64);
            pages.set(s.pages_cached as u64);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_workload::{restaurant_db_a, restaurant_db_b};

    fn session() -> Session {
        let mut c = Catalog::new();
        c.register("ra", restaurant_db_a().restaurants);
        c.register("rb", restaurant_db_b().restaurants);
        Session::new(
            Arc::new(SharedCatalog::new(c)),
            Arc::new(PlanCache::default()),
        )
    }

    #[test]
    fn query_results_match_direct_execution_and_cache_kicks_in() {
        let s = session();
        let q = "SELECT * FROM ra UNION rb";
        let first = s.query(q).unwrap();
        assert_eq!(first.outcome.relation.len(), 6);
        assert!(!first.cached_plan);
        assert!(!first.outcome.report.is_empty());
        let second = s.query(q).unwrap();
        assert!(second.cached_plan, "second run must reuse the plan");
        assert!(first.outcome.relation.approx_eq(&second.outcome.relation));
        assert_eq!(first.outcome.stats, second.outcome.stats);
        // Direct (uncached) execution agrees bit for bit.
        let direct = crate::execute(s.pin().catalog(), q).unwrap();
        assert!(direct.approx_eq(&second.outcome.relation));
        assert_eq!(
            direct.keys().collect::<Vec<_>>(),
            second.outcome.relation.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn budgets_cap_parallelism_and_spill() {
        let budget = SessionBudget::share_of(8, 4096, 4);
        assert_eq!(budget.parallelism, Some(2));
        assert_eq!(budget.spill_bytes, Some(1024));
        // Degenerate splits stay ≥ 1 instead of zeroing out.
        let tiny = SessionBudget::share_of(1, 10, 64);
        assert_eq!(tiny.parallelism, Some(1));
        assert_eq!(tiny.spill_bytes, Some(1));
    }

    #[test]
    fn explain_reports_cache_state() {
        let s = session();
        let q = "SELECT * FROM ra WITH SN > 0.5";
        let text = s.explain(q).unwrap();
        assert!(text.contains("plan cache: miss"), "{text}");
        s.query(q).unwrap();
        let text = s.explain(q).unwrap();
        assert!(text.contains("plan cache: hit"), "{text}");
        s.update(|c| {
            c.register("ra", restaurant_db_a().restaurants);
            Ok(())
        })
        .unwrap();
        let text = s.explain(q).unwrap();
        assert!(text.contains("plan cache: miss"), "{text}");
    }

    #[test]
    fn read_only_sessions_reject_every_mutation_path() {
        let mut s = session();
        s.set_read_only(true);
        assert!(s.read_only());
        // Reads still work…
        assert!(s.query("SELECT * FROM ra WITH SN > 0").is_ok());
        // …every write path is a typed "readonly" error, catalog
        // untouched.
        let before = s.shared().generation();
        let err = s
            .update(|c| {
                c.register("x", restaurant_db_a().restaurants);
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.kind(), "readonly");
        assert_eq!(
            s.update_with_generation(|_| Ok(())).unwrap_err().kind(),
            "readonly"
        );
        assert_eq!(s.update_at(|_, _| Ok(())).unwrap_err().kind(), "readonly");
        assert_eq!(s.shared().generation(), before);
        assert!(s.pin().catalog().get("x").is_none());
        // Flipping back re-enables writes (promotion).
        s.set_read_only(false);
        s.update(|c| {
            c.register("x", restaurant_db_a().restaurants);
            Ok(())
        })
        .unwrap();
        assert!(s.pin().catalog().get("x").is_some());
    }

    /// Satellite regression: per-worker `ExecContext` stats summed at
    /// exchange re-merge must flow into the registry **exactly once**
    /// — the flush reads the parent context after re-merge, never the
    /// workers, so a parallel run reports the same registry totals as
    /// a sequential one (a per-worker or in-exchange flush would
    /// double-count whenever a declined exchange re-recurses into an
    /// inner one).
    #[test]
    fn exec_stats_reach_registry_exactly_once_at_1_and_4_threads() {
        use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
        let (ga, gb) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples: 600,
                seed: 7,
                ..Default::default()
            },
            key_overlap: 0.5,
            conflict_bias: 0.0,
        })
        .unwrap();
        let mut c = Catalog::new();
        c.register("ga", ga);
        c.register("gb", gb);
        let shared = Arc::new(SharedCatalog::new(c));
        // 600-tuple inputs clear the exchange's pay-off floor, so the
        // 4-thread run really executes through exchange workers.
        let run = |threads: usize| -> [u64; 4] {
            let registry = Arc::new(MetricsRegistry::new());
            let mut s = Session::new(Arc::clone(&shared), Arc::new(PlanCache::default()));
            s.budget.parallelism = Some(threads);
            s.set_metrics(Arc::clone(&registry));
            let out = s.query("SELECT * FROM ga UNION gb").unwrap();
            let value = |name: &str| registry.value(name, &[]).unwrap();
            let totals = [
                value("evirel_exec_tuples_scanned_total"),
                value("evirel_exec_tuples_emitted_total"),
                value("evirel_exec_pairs_merged_total"),
                value("evirel_exec_conflicts_total"),
            ];
            // Registry totals equal the query's own stats (one query
            // against a fresh registry): nothing lost, nothing
            // counted twice.
            assert_eq!(totals[0], out.outcome.stats.tuples_scanned as u64);
            assert_eq!(totals[1], out.outcome.stats.tuples_emitted as u64);
            assert_eq!(totals[2], out.outcome.stats.pairs_merged as u64);
            assert_eq!(totals[3], out.outcome.stats.conflicts as u64);
            assert!(totals[0] > 0 && totals[1] > 0 && totals[2] > 0);
            assert_eq!(value("evirel_query_executions_total"), 1);
            totals
        };
        assert_eq!(
            run(1),
            run(4),
            "registry totals diverged across parallelism"
        );
    }

    /// A throttled query (threshold 0 = log everything) lands one
    /// `slow_query` event carrying the normalized EQL, generation,
    /// per-stage spans, and est-vs-actual rows.
    #[test]
    fn slow_query_log_captures_stages_and_row_meters() {
        let mut s = session();
        let registry = Arc::new(MetricsRegistry::new());
        s.set_metrics(Arc::clone(&registry));
        s.set_slow_query_ms(0);
        s.query("select  *  from ra  union rb ;").unwrap();
        let events = registry.events().snapshot();
        assert_eq!(events.len(), 1);
        let event = &events[0];
        assert_eq!(event.kind, "slow_query");
        let field = |k: &str| {
            event
                .fields
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or_else(|| panic!("missing field {k} in {event:?}"))
        };
        // Normalized EQL, not the raw text.
        assert_eq!(field("eql"), "SELECT * FROM ra UNION rb");
        assert_eq!(field("generation"), "0");
        assert_eq!(field("cached_plan"), "false");
        for stage in [
            "parse_us",
            "cache_lookup_us",
            "lower_rewrite_us",
            "execute_us",
        ] {
            field(stage).parse::<u64>().unwrap();
        }
        // Root meter: 6 rows actually emitted by the union.
        assert_eq!(field("root_act_rows"), "6");
        assert!(field("plan").contains("act="), "{event:?}");
        assert_eq!(registry.value("evirel_query_slow_total", &[]), Some(1));
        // A second, cached run records a hit trace: lower_rewrite is
        // absent (that work was skipped), cached_plan flips to true.
        s.query("SELECT * FROM ra UNION rb").unwrap();
        let events = registry.events().snapshot();
        assert_eq!(events.len(), 2);
        let cached = &events[1];
        assert!(cached
            .fields
            .iter()
            .any(|(k, v)| k == "cached_plan" && v == "true"));
        assert!(!cached.fields.iter().any(|(k, _)| k == "lower_rewrite_us"));
        // Above-threshold sessions stay quiet for fast queries.
        let mut quiet = session();
        let registry = Arc::new(MetricsRegistry::new());
        quiet.set_metrics(Arc::clone(&registry));
        quiet.set_slow_query_ms(60_000);
        quiet.query("SELECT * FROM ra").unwrap();
        assert!(registry.events().snapshot().is_empty());
        assert_eq!(registry.value("evirel_query_slow_total", &[]), Some(0));
    }

    #[test]
    fn malformed_input_is_typed_never_a_panic() {
        let s = session();
        for bad in [
            "",
            "SELEC",
            "SELECT * FROM ghost",
            "SELECT * FROM ra WHERE ghost IS {x}",
            "SELECT phone FROM ra",
            "\u{0}\u{1}garbage\u{ffff}",
        ] {
            assert!(s.query(bad).is_err(), "{bad:?} must be a typed error");
        }
    }
}
