//! One query session over a shared catalog: snapshot-pinned reads,
//! cached prepared plans, and per-session resource budgets.
//!
//! A [`Session`] is what a server worker (or the eql shell) holds per
//! connection. Every query pins one catalog generation
//! ([`crate::snapshot::SharedCatalog::pin`]), resolves its plan
//! through the shared [`crate::prepare::PlanCache`], and executes
//! under this session's slice of the process-wide resources: the
//! thread budget (`EVIREL_THREADS`) and spill budget
//! (`EVIREL_BUFFER_BYTES`) are carved per session so N concurrent
//! sessions cannot multiply them by N.

use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::exec::QueryOutcome;
use crate::prepare::PlanCache;
use crate::snapshot::{CatalogSnapshot, SharedCatalog};
use evirel_plan::ExecContext;
use std::sync::Arc;

/// Per-session resource limits, carved from the process budgets.
/// `None` fields fall back to the pinned catalog's own settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionBudget {
    /// Worker threads this session's queries may use (caps
    /// [`ExecContext::parallelism`]).
    pub parallelism: Option<usize>,
    /// Spill threshold in bytes for this session's merge build sides
    /// (caps [`ExecContext::spill_threshold_bytes`]).
    pub spill_bytes: Option<usize>,
}

impl SessionBudget {
    /// An even share of `total_threads` and `pool_bytes` across
    /// `sessions` concurrent sessions (each at least 1 thread / 1
    /// byte, so small budgets degrade to sequential, eagerly-spilling
    /// sessions rather than panicking).
    pub fn share_of(total_threads: usize, pool_bytes: usize, sessions: usize) -> SessionBudget {
        let sessions = sessions.max(1);
        SessionBudget {
            parallelism: Some((total_threads / sessions).max(1)),
            spill_bytes: Some((pool_bytes / sessions).max(1)),
        }
    }
}

/// The result of one session query: the relation/report/stats of
/// [`QueryOutcome`] plus execution provenance.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The relation, conflict report, and counters.
    pub outcome: QueryOutcome,
    /// `true` when the plan came from the cache — lowering,
    /// validation, and the rewrite pass were all skipped.
    pub cached_plan: bool,
    /// The catalog generation the query executed against.
    pub generation: u64,
}

/// A session over a [`SharedCatalog`] + [`PlanCache`] pair. Cheap to
/// clone conceptually (all shared state is behind `Arc`s), but each
/// connection should own one so budgets stay per-session.
#[derive(Debug)]
pub struct Session {
    shared: Arc<SharedCatalog>,
    cache: Arc<PlanCache>,
    /// This session's resource slice.
    pub budget: SessionBudget,
    read_only: bool,
}

impl Session {
    /// A session with default (uncapped) budgets.
    pub fn new(shared: Arc<SharedCatalog>, cache: Arc<PlanCache>) -> Session {
        Session {
            shared,
            cache,
            budget: SessionBudget::default(),
            read_only: false,
        }
    }

    /// A session with an explicit budget.
    pub fn with_budget(
        shared: Arc<SharedCatalog>,
        cache: Arc<PlanCache>,
        budget: SessionBudget,
    ) -> Session {
        Session {
            shared,
            cache,
            budget,
            read_only: false,
        }
    }

    /// Mark this session read-only: every `update*` call returns
    /// [`QueryError::ReadOnly`] without touching the catalog. A
    /// replication follower hands read-only sessions to its query
    /// workers; only the apply loop (which publishes via
    /// [`SharedCatalog::update_stamped`] directly) mutates the
    /// standby's catalog.
    pub fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// Whether this session rejects mutations.
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    fn check_writable(&self) -> Result<(), QueryError> {
        if self.read_only {
            Err(QueryError::ReadOnly {
                message: "this session serves a replication standby; \
                          promote the follower to accept writes"
                    .into(),
            })
        } else {
            Ok(())
        }
    }

    /// The shared catalog this session reads and writes.
    pub fn shared(&self) -> &Arc<SharedCatalog> {
        &self.shared
    }

    /// The shared plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Pin the current catalog generation (see
    /// [`SharedCatalog::pin`]).
    pub fn pin(&self) -> Arc<CatalogSnapshot> {
        self.shared.pin()
    }

    /// Execute `text` against a pinned snapshot, through the plan
    /// cache, under this session's budget.
    ///
    /// # Errors
    /// As [`crate::execute`]; additionally nothing — a malformed
    /// query, unknown relation, or algebra failure all round-trip as
    /// typed [`QueryError`]s, never a panic.
    pub fn query(&self, text: &str) -> Result<SessionOutcome, QueryError> {
        let snapshot = self.pin();
        self.query_pinned(&snapshot, text)
    }

    /// [`Session::query`] against an already-pinned snapshot — for
    /// callers composing a read with other reads of the same
    /// generation.
    ///
    /// # Errors
    /// As [`Session::query`].
    pub fn query_pinned(
        &self,
        snapshot: &CatalogSnapshot,
        text: &str,
    ) -> Result<SessionOutcome, QueryError> {
        let (prepared, cached_plan) = self.cache.prepare_or_cached(snapshot, text)?;
        let mut ctx = self.context_for(snapshot.catalog());
        let relation =
            evirel_plan::execute_optimized(prepared.optimized(), snapshot.catalog(), &mut ctx)?;
        Ok(SessionOutcome {
            outcome: QueryOutcome {
                relation,
                report: ctx.conflict_report(),
                stats: ctx.stats,
            },
            cached_plan,
            generation: snapshot.generation(),
        })
    }

    /// Apply a catalog mutation as the next generation (see
    /// [`SharedCatalog::update`]). Cached plans of older generations
    /// become stale automatically — the cache re-prepares on next
    /// lookup.
    ///
    /// # Errors
    /// Whatever `mutate` returns; nothing is published then.
    pub fn update<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog) -> Result<T, QueryError>,
    ) -> Result<T, QueryError> {
        self.check_writable()?;
        self.shared.update(mutate)
    }

    /// [`Session::update`], additionally returning the generation the
    /// mutation was published at (see
    /// [`SharedCatalog::update_with_generation`]).
    ///
    /// # Errors
    /// As [`Session::update`].
    pub fn update_with_generation<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog) -> Result<T, QueryError>,
    ) -> Result<(T, u64), QueryError> {
        self.check_writable()?;
        self.shared.update_with_generation(mutate)
    }

    /// [`Session::update_with_generation`] with the to-be-published
    /// generation passed *into* the closure (see
    /// [`SharedCatalog::update_at`]) — the durability hook: journal
    /// the mutation at that generation, fsync, then return.
    ///
    /// # Errors
    /// As [`Session::update`].
    pub fn update_at<T>(
        &self,
        mutate: impl FnOnce(&mut Catalog, u64) -> Result<T, QueryError>,
    ) -> Result<(T, u64), QueryError> {
        self.check_writable()?;
        self.shared.update_at(mutate)
    }

    /// Full `EXPLAIN` of `text` against the current generation —
    /// **analyzing**: the plan executes (result discarded) so every
    /// physical operator line shows estimated vs actual rows
    /// ([`crate::explain_analyze_with`]) — with a trailing
    /// `plan cache:` line showing whether execution would hit the
    /// prepared-plan cache (the observable "lowering/rewrite skipped"
    /// signal).
    ///
    /// # Errors
    /// As [`crate::explain_analyze_with`].
    pub fn explain(&self, text: &str) -> Result<String, QueryError> {
        let snapshot = self.pin();
        let mut out = crate::plan::explain_analyze_with(snapshot.catalog(), text)?;
        let hit = self.cache.peek(text, snapshot.generation());
        out.push_str(&format!(
            "plan cache: {} (generation {})\n",
            if hit {
                "hit — lowering/rewrite skipped"
            } else {
                "miss — would prepare"
            },
            snapshot.generation(),
        ));
        Ok(out)
    }

    /// The execution context this session's queries run under:
    /// catalog options and pool, with parallelism and spill threshold
    /// capped to the session budget.
    fn context_for(&self, catalog: &Catalog) -> ExecContext {
        let mut ctx = ExecContext::with_options(catalog.union_options.clone());
        ctx.pool = Arc::clone(&catalog.pool);
        ctx.parallelism = self
            .budget
            .parallelism
            .unwrap_or(catalog.parallelism)
            .max(1);
        ctx.spill_threshold_bytes = self
            .budget
            .spill_bytes
            .unwrap_or_else(|| catalog.pool.budget_bytes());
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_workload::{restaurant_db_a, restaurant_db_b};

    fn session() -> Session {
        let mut c = Catalog::new();
        c.register("ra", restaurant_db_a().restaurants);
        c.register("rb", restaurant_db_b().restaurants);
        Session::new(
            Arc::new(SharedCatalog::new(c)),
            Arc::new(PlanCache::default()),
        )
    }

    #[test]
    fn query_results_match_direct_execution_and_cache_kicks_in() {
        let s = session();
        let q = "SELECT * FROM ra UNION rb";
        let first = s.query(q).unwrap();
        assert_eq!(first.outcome.relation.len(), 6);
        assert!(!first.cached_plan);
        assert!(!first.outcome.report.is_empty());
        let second = s.query(q).unwrap();
        assert!(second.cached_plan, "second run must reuse the plan");
        assert!(first.outcome.relation.approx_eq(&second.outcome.relation));
        assert_eq!(first.outcome.stats, second.outcome.stats);
        // Direct (uncached) execution agrees bit for bit.
        let direct = crate::execute(s.pin().catalog(), q).unwrap();
        assert!(direct.approx_eq(&second.outcome.relation));
        assert_eq!(
            direct.keys().collect::<Vec<_>>(),
            second.outcome.relation.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn budgets_cap_parallelism_and_spill() {
        let budget = SessionBudget::share_of(8, 4096, 4);
        assert_eq!(budget.parallelism, Some(2));
        assert_eq!(budget.spill_bytes, Some(1024));
        // Degenerate splits stay ≥ 1 instead of zeroing out.
        let tiny = SessionBudget::share_of(1, 10, 64);
        assert_eq!(tiny.parallelism, Some(1));
        assert_eq!(tiny.spill_bytes, Some(1));
    }

    #[test]
    fn explain_reports_cache_state() {
        let s = session();
        let q = "SELECT * FROM ra WITH SN > 0.5";
        let text = s.explain(q).unwrap();
        assert!(text.contains("plan cache: miss"), "{text}");
        s.query(q).unwrap();
        let text = s.explain(q).unwrap();
        assert!(text.contains("plan cache: hit"), "{text}");
        s.update(|c| {
            c.register("ra", restaurant_db_a().restaurants);
            Ok(())
        })
        .unwrap();
        let text = s.explain(q).unwrap();
        assert!(text.contains("plan cache: miss"), "{text}");
    }

    #[test]
    fn read_only_sessions_reject_every_mutation_path() {
        let mut s = session();
        s.set_read_only(true);
        assert!(s.read_only());
        // Reads still work…
        assert!(s.query("SELECT * FROM ra WITH SN > 0").is_ok());
        // …every write path is a typed "readonly" error, catalog
        // untouched.
        let before = s.shared().generation();
        let err = s
            .update(|c| {
                c.register("x", restaurant_db_a().restaurants);
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.kind(), "readonly");
        assert_eq!(
            s.update_with_generation(|_| Ok(())).unwrap_err().kind(),
            "readonly"
        );
        assert_eq!(s.update_at(|_, _| Ok(())).unwrap_err().kind(), "readonly");
        assert_eq!(s.shared().generation(), before);
        assert!(s.pin().catalog().get("x").is_none());
        // Flipping back re-enables writes (promotion).
        s.set_read_only(false);
        s.update(|c| {
            c.register("x", restaurant_db_a().restaurants);
            Ok(())
        })
        .unwrap();
        assert!(s.pin().catalog().get("x").is_some());
    }

    #[test]
    fn malformed_input_is_typed_never_a_panic() {
        let s = session();
        for bad in [
            "",
            "SELEC",
            "SELECT * FROM ghost",
            "SELECT * FROM ra WHERE ghost IS {x}",
            "SELECT phone FROM ra",
            "\u{0}\u{1}garbage\u{ffff}",
        ] {
            assert!(s.query(bad).is_err(), "{bad:?} must be a typed error");
        }
    }
}
