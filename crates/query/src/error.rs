//! Error types for the query layer.

use evirel_algebra::AlgebraError;
use evirel_relation::RelationError;
use std::fmt;

/// Errors produced while lexing, parsing, planning, or executing a
/// query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A character the lexer cannot start a token with.
    Lex {
        /// Byte offset into the query text.
        offset: usize,
        /// Description.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// Byte offset of the offending token.
        offset: usize,
        /// Description.
        message: String,
    },
    /// A referenced relation is not registered in the catalog.
    UnknownRelation {
        /// The missing name.
        name: String,
    },
    /// A `WHERE`, `ON`, or projection referenced an attribute that
    /// does not exist in its source's schema — caught at plan time,
    /// before execution starts.
    UnknownAttribute {
        /// The missing attribute.
        attr: String,
        /// The schema it was resolved against.
        schema: String,
    },
    /// An underlying algebra error during execution.
    Algebra(AlgebraError),
    /// An underlying relational error during execution.
    Relation(RelationError),
    /// Any other plan-layer execution failure.
    Execution {
        /// Description.
        message: String,
    },
    /// The catalog is read-only — a replication follower serving a
    /// primary's generation stream rejects local mutations until
    /// promoted.
    ReadOnly {
        /// Description (e.g. which primary this standby follows).
        message: String,
    },
}

impl QueryError {
    /// Convenience constructor for parse errors.
    pub fn parse(offset: usize, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset,
            message: message.into(),
        }
    }

    /// A stable machine-readable kind tag — the query service's wire
    /// protocol sends this with every `ERR` response so clients can
    /// branch without parsing English.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Lex { .. } => "lex",
            Self::Parse { .. } => "parse",
            Self::UnknownRelation { .. } => "unknown-relation",
            Self::UnknownAttribute { .. } => "unknown-attribute",
            Self::Algebra(_) => "algebra",
            Self::Relation(_) => "relation",
            Self::Execution { .. } => "execution",
            Self::ReadOnly { .. } => "readonly",
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lex { offset, message } => write!(f, "lex error at offset {offset}: {message}"),
            Self::Parse { offset, message } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            Self::UnknownRelation { name } => write!(f, "unknown relation {name:?}"),
            Self::UnknownAttribute { attr, schema } => {
                write!(f, "unknown attribute {attr:?} in schema {schema:?}")
            }
            Self::Algebra(e) => write!(f, "execution error: {e}"),
            Self::Relation(e) => write!(f, "execution error: {e}"),
            Self::Execution { message } => write!(f, "execution error: {message}"),
            Self::ReadOnly { message } => write!(f, "read-only catalog: {message}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Algebra(e) => Some(e),
            Self::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for QueryError {
    fn from(e: AlgebraError) -> Self {
        QueryError::Algebra(e)
    }
}

impl From<RelationError> for QueryError {
    fn from(e: RelationError) -> Self {
        QueryError::Relation(e)
    }
}

impl From<evirel_plan::PlanError> for QueryError {
    fn from(e: evirel_plan::PlanError) -> Self {
        use evirel_plan::PlanError;
        match e {
            PlanError::Algebra(a) => QueryError::Algebra(a),
            PlanError::Relation(r) => QueryError::Relation(r),
            PlanError::UnknownRelation { name } => QueryError::UnknownRelation { name },
            PlanError::UnknownAttribute { attr, schema } => {
                QueryError::UnknownAttribute { attr, schema }
            }
            other => QueryError::Execution {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = QueryError::parse(10, "expected FROM");
        assert!(e.to_string().contains("offset 10"));
        let e = QueryError::UnknownRelation { name: "zz".into() };
        assert!(e.to_string().contains("zz"));
        let e: QueryError = AlgebraError::PredicateType { reason: "x".into() }.into();
        assert!(matches!(e, QueryError::Algebra(_)));
    }
}
