//! The catalog: named extended relations available to queries.

use crate::error::QueryError;
use evirel_algebra::union::UnionOptions;
use evirel_plan::{BufferPool, RelationSource, StoredRelation};
use evirel_relation::ExtendedRelation;
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of queryable relations plus execution options.
///
/// Relations are stored behind [`Arc`] so the plan layer's scan
/// operators can stream them without cloning whole extensions. A name
/// can alternatively be *attached* to an on-disk binary segment
/// ([`Catalog::attach_stored`]): queries then stream its pages
/// through the catalog's shared buffer pool instead of requiring the
/// relation in memory — the eql shell's `\load` (and `\store` to
/// write segments) sits on top of this.
///
/// `Clone` is cheap — relation extensions and stored attachments are
/// behind `Arc`s, so a clone copies two small maps of handles plus
/// the options. The epoch-snapshot layer
/// ([`crate::snapshot::SharedCatalog`]) leans on this: every write
/// clones the current catalog, mutates the clone, and publishes it as
/// the next generation, so readers never observe a half-applied
/// change.
#[derive(Debug, Clone)]
pub struct Catalog {
    relations: HashMap<String, Arc<ExtendedRelation>>,
    stored: HashMap<String, Arc<StoredRelation>>,
    /// Per-relation statistics feeding the plan layer's cost model
    /// ([`evirel_plan::CostModel`]): computed at [`Catalog::register`]
    /// time for in-memory relations, read from the segment's stats
    /// section for stored attachments (absent for pre-v3 segments —
    /// the planner then falls back to heuristics for that relation).
    stats: HashMap<String, Arc<evirel_store::RelStats>>,
    /// The buffer pool stored relations (and spilled merge build
    /// sides) page through — one pool per catalog, shared by every
    /// query and exchange worker, budgeted by `EVIREL_BUFFER_BYTES`.
    pub pool: Arc<BufferPool>,
    /// Options applied to `UNION` sources (conflict policy,
    /// combination rule, focal cap).
    pub union_options: UnionOptions,
    /// Worker threads for query execution: shardable plan fragments
    /// run through the plan layer's exchange operator when > 1.
    /// Defaults to the `EVIREL_THREADS` environment variable (else
    /// 1); the eql shell sets it with `\set threads N`.
    pub parallelism: usize,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog {
            relations: HashMap::new(),
            stored: HashMap::new(),
            stats: HashMap::new(),
            pool: Arc::new(BufferPool::from_env()),
            union_options: UnionOptions::default(),
            parallelism: evirel_plan::default_parallelism(),
        }
    }
}

impl Catalog {
    /// An empty catalog with default union options.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a relation under `name`. Lookup is by the
    /// registered name, not the relation's schema name. Replaces a
    /// stored attachment of the same name.
    pub fn register(&mut self, name: impl Into<String>, rel: ExtendedRelation) {
        let name = name.into();
        self.stored.remove(&name);
        self.stats
            .insert(name.clone(), Arc::new(evirel_store::compute_stats(&rel)));
        self.relations.insert(name, Arc::new(rel));
    }

    /// Remove a relation; returns it if present. Also detaches a
    /// stored binding of the same name (returning `None` for it —
    /// stored extensions live on disk).
    pub fn deregister(&mut self, name: &str) -> Option<ExtendedRelation> {
        self.stored.remove(name);
        self.stats.remove(name);
        self.relations
            .remove(name)
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Attach `name` to an on-disk binary segment: queries scan it
    /// page-at-a-time through [`Catalog::pool`] instead of holding
    /// the extension in memory. Replaces an in-memory registration of
    /// the same name.
    ///
    /// # Errors
    /// [`QueryError::Execution`] when the segment cannot be opened.
    pub fn attach_stored(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), QueryError> {
        let stored = StoredRelation::open(path, Arc::clone(&self.pool)).map_err(|e| {
            QueryError::Execution {
                message: e.to_string(),
            }
        })?;
        let name = name.into();
        self.relations.remove(&name);
        match stored.stats() {
            Some(stats) => {
                self.stats.insert(name.clone(), stats);
            }
            // Pre-v3 segment: no stats section. Drop any stale entry
            // so the planner falls back to heuristics, not old data.
            None => {
                self.stats.remove(&name);
            }
        }
        self.stored.insert(name, Arc::new(stored));
        Ok(())
    }

    /// Attach `name` to an already-open stored relation. The durable
    /// recovery path ([`crate::durable::DurableCatalog::open`]) uses
    /// this after verifying the segment's content checksum against
    /// the committed manifest/journal record — going through
    /// [`Catalog::attach_stored`] would reopen the file and lose that
    /// verification. Replaces an in-memory registration of the same
    /// name.
    pub fn attach(&mut self, name: impl Into<String>, stored: impl Into<Arc<StoredRelation>>) {
        let name = name.into();
        let stored = stored.into();
        self.relations.remove(&name);
        match stored.stats() {
            Some(stats) => {
                self.stats.insert(name.clone(), stats);
            }
            None => {
                self.stats.remove(&name);
            }
        }
        self.stored.insert(name, stored);
    }

    /// Write the relation registered under `name` to a binary segment
    /// at `path` (the `\store` meta-command). Works for both in-memory
    /// registrations and stored attachments (the latter streams the
    /// source segment page-at-a-time — an on-disk copy, never a full
    /// materialization). The existing binding is left in place; pass
    /// the path to [`Catalog::attach_stored`] (or `\load`) to query
    /// it from disk.
    ///
    /// # Errors
    /// [`QueryError::UnknownRelation`] / [`QueryError::Execution`].
    pub fn store_segment(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), QueryError> {
        let exec_err = |e: evirel_store::StoreError| QueryError::Execution {
            message: e.to_string(),
        };
        if let Some(rel) = self.relations.get(name) {
            return evirel_store::write_segment(rel, path, evirel_store::DEFAULT_PAGE_SIZE)
                .map_err(exec_err);
        }
        if let Some(stored) = self.stored.get(name) {
            let mut writer = evirel_store::SegmentWriter::create(
                path,
                stored.schema(),
                evirel_store::DEFAULT_PAGE_SIZE,
            )
            .map_err(exec_err)?;
            for tuple in stored.iter() {
                writer.append(&tuple.map_err(exec_err)?).map_err(exec_err)?;
            }
            writer.finish().map_err(exec_err)?;
            return Ok(());
        }
        Err(QueryError::UnknownRelation {
            name: name.to_owned(),
        })
    }

    /// The relation under `name`, materialized: an in-memory
    /// registration is cheaply cloned out of its `Arc`; a stored
    /// attachment is decoded from its segment. The text-notation
    /// `\save` uses this so every listed relation can be saved.
    ///
    /// # Errors
    /// [`QueryError::UnknownRelation`] / [`QueryError::Execution`].
    pub fn materialize(&self, name: &str) -> Result<ExtendedRelation, QueryError> {
        if let Some(rel) = self.relations.get(name) {
            return Ok((**rel).clone());
        }
        if let Some(stored) = self.stored.get(name) {
            return stored.to_relation().map_err(|e| QueryError::Execution {
                message: e.to_string(),
            });
        }
        Err(QueryError::UnknownRelation {
            name: name.to_owned(),
        })
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&ExtendedRelation> {
        self.relations.get(name).map(|arc| arc.as_ref())
    }

    /// Look up a relation as a shared handle (for scan operators).
    pub fn get_shared(&self, name: &str) -> Option<Arc<ExtendedRelation>> {
        self.relations.get(name).cloned()
    }

    /// Look up a stored (disk-backed) relation handle.
    pub fn get_stored(&self, name: &str) -> Option<Arc<StoredRelation>> {
        self.stored.get(name).cloned()
    }

    /// Statistics for the relation under `name`, when known. Present
    /// for every in-memory registration (computed at register time)
    /// and for stored attachments whose segment carries a stats
    /// section (v3+); absent for pre-v3 segments.
    pub fn stats_for(&self, name: &str) -> Option<Arc<evirel_store::RelStats>> {
        self.stats.get(name).cloned()
    }

    /// Human-readable per-relation statistics, one line per
    /// registered name (sorted) — the `STATS` / `\stats` payload.
    /// Relations without statistics (pre-v3 segments) say so rather
    /// than being omitted.
    pub fn stats_summary(&self) -> String {
        let mut out = String::new();
        for name in self.names() {
            let kind = if self.stored.contains_key(name) {
                "stored"
            } else {
                "memory"
            };
            match self.stats.get(name) {
                Some(s) => {
                    out.push_str(&format!("{name} ({kind}): {}\n", s.render()));
                }
                None => {
                    out.push_str(&format!(
                        "{name} ({kind}): no statistics (pre-v3 segment; planner uses heuristics)\n"
                    ));
                }
            }
        }
        if out.is_empty() {
            out.push_str("no relations registered\n");
        }
        out
    }

    /// Registered names (in-memory and stored), sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .relations
            .keys()
            .chain(self.stored.keys())
            .map(String::as_str)
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of registered relations (in-memory and stored).
    pub fn len(&self) -> usize {
        self.relations.len() + self.stored.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty() && self.stored.is_empty()
    }
}

impl RelationSource for Catalog {
    fn relation(&self, name: &str) -> Option<Arc<ExtendedRelation>> {
        self.get_shared(name)
    }

    fn stored(&self, name: &str) -> Option<Arc<StoredRelation>> {
        self.get_stored(name)
    }

    fn stats(&self, name: &str) -> Option<Arc<evirel_store::RelStats>> {
        self.stats_for(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema};
    use std::sync::Arc;

    fn rel() -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("d", ["x"]).unwrap());
        let schema = Arc::new(
            Schema::builder("r")
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| t.set_str("k", "a").set_evidence("d", [(&["x"][..], 1.0)]))
            .unwrap()
            .build()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("ra", rel());
        c.register("rb", rel());
        assert_eq!(c.len(), 2);
        assert!(c.get("ra").is_some());
        assert!(c.get("zz").is_none());
        assert_eq!(c.names(), vec!["ra", "rb"]);
        assert!(c.deregister("ra").is_some());
        assert_eq!(c.len(), 1);
        assert!(c.deregister("ra").is_none());
    }

    #[test]
    fn registration_replaces() {
        let mut c = Catalog::new();
        c.register("r", rel());
        c.register("r", rel());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stored_attachments_register_and_replace() {
        let mut c = Catalog::new();
        c.register("r", rel());
        let path = evirel_store::spill_path("catalog");
        c.store_segment("r", &path).unwrap();
        // Attaching under the same name replaces the in-memory copy…
        c.attach_stored("r", &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(c.len(), 1);
        assert!(c.get("r").is_none());
        let stored = c.get_stored("r").unwrap();
        assert_eq!(stored.len(), 1);
        assert_eq!(c.names(), vec!["r"]);
        // A stored attachment can itself be \store'd (segment →
        // segment copy) and materialized for \save.
        let copy = evirel_store::spill_path("catalog-copy");
        c.store_segment("r", &copy).unwrap();
        let mut c2 = Catalog::new();
        c2.attach_stored("r2", &copy).unwrap();
        std::fs::remove_file(&copy).ok();
        assert_eq!(c2.get_stored("r2").unwrap().len(), 1);
        assert_eq!(c.materialize("r").unwrap().len(), 1);
        // …and re-registering in memory replaces the attachment.
        c.register("r", rel());
        assert!(c.get_stored("r").is_none());
        assert_eq!(c.len(), 1);
        // Errors surface, not panic.
        assert!(c.store_segment("ghost", "/nonexistent/x.evb").is_err());
        assert!(c.attach_stored("x", "/nonexistent/x.evb").is_err());
        assert!(c.materialize("ghost").is_err());
    }

    /// A stored relation is queryable end to end: scans stream pages
    /// through the catalog pool and results equal the in-memory run.
    #[test]
    fn stored_relation_queryable() {
        use evirel_workload::generator::{generate, GeneratorConfig};
        let big = generate(
            "G",
            &GeneratorConfig {
                tuples: 400,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let mut mem = Catalog::new();
        mem.register("g", big.clone());
        let mut disk = Catalog::new();
        disk.pool = Arc::new(evirel_plan::BufferPool::new(2048)); // tiny
        disk.register("g", big);
        let path = evirel_store::spill_path("catalog-query");
        disk.store_segment("g", &path).unwrap();
        disk.attach_stored("g", &path).unwrap();
        std::fs::remove_file(&path).ok();

        let q = "SELECT * FROM g WHERE e0 IS {v0, v1} WITH SN > 0";
        let a = crate::execute(&mem, q).unwrap();
        let b = crate::execute(&disk, q).unwrap();
        assert!(a.approx_eq(&b));
        assert_eq!(a.keys().collect::<Vec<_>>(), b.keys().collect::<Vec<_>>());
        let stats = disk.pool.stats();
        assert!(stats.evictions > 0, "tiny pool must evict: {stats:?}");
        // Unknown attributes still error at plan time against the
        // stored schema.
        assert!(matches!(
            crate::execute(&disk, "SELECT * FROM g WHERE ghost IS {v0}"),
            Err(QueryError::UnknownAttribute { .. })
        ));
    }
}
