//! The catalog: named extended relations available to queries.

use evirel_algebra::union::UnionOptions;
use evirel_plan::RelationSource;
use evirel_relation::ExtendedRelation;
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of queryable relations plus execution options.
///
/// Relations are stored behind [`Arc`] so the plan layer's scan
/// operators can stream them without cloning whole extensions.
#[derive(Debug)]
pub struct Catalog {
    relations: HashMap<String, Arc<ExtendedRelation>>,
    /// Options applied to `UNION` sources (conflict policy,
    /// combination rule, focal cap).
    pub union_options: UnionOptions,
    /// Worker threads for query execution: shardable plan fragments
    /// run through the plan layer's exchange operator when > 1.
    /// Defaults to the `EVIREL_THREADS` environment variable (else
    /// 1); the eql shell sets it with `\set threads N`.
    pub parallelism: usize,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog {
            relations: HashMap::new(),
            union_options: UnionOptions::default(),
            parallelism: evirel_plan::default_parallelism(),
        }
    }
}

impl Catalog {
    /// An empty catalog with default union options.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a relation under `name`. Lookup is by the
    /// registered name, not the relation's schema name.
    pub fn register(&mut self, name: impl Into<String>, rel: ExtendedRelation) {
        self.relations.insert(name.into(), Arc::new(rel));
    }

    /// Remove a relation; returns it if present.
    pub fn deregister(&mut self, name: &str) -> Option<ExtendedRelation> {
        self.relations
            .remove(name)
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&ExtendedRelation> {
        self.relations.get(name).map(|arc| arc.as_ref())
    }

    /// Look up a relation as a shared handle (for scan operators).
    pub fn get_shared(&self, name: &str) -> Option<Arc<ExtendedRelation>> {
        self.relations.get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.relations.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl RelationSource for Catalog {
    fn relation(&self, name: &str) -> Option<Arc<ExtendedRelation>> {
        self.get_shared(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema};
    use std::sync::Arc;

    fn rel() -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("d", ["x"]).unwrap());
        let schema = Arc::new(
            Schema::builder("r")
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| t.set_str("k", "a").set_evidence("d", [(&["x"][..], 1.0)]))
            .unwrap()
            .build()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("ra", rel());
        c.register("rb", rel());
        assert_eq!(c.len(), 2);
        assert!(c.get("ra").is_some());
        assert!(c.get("zz").is_none());
        assert_eq!(c.names(), vec!["ra", "rb"]);
        assert!(c.deregister("ra").is_some());
        assert_eq!(c.len(), 1);
        assert!(c.deregister("ra").is_none());
    }

    #[test]
    fn registration_replaces() {
        let mut c = Catalog::new();
        c.register("r", rel());
        c.register("r", rel());
        assert_eq!(c.len(), 1);
    }
}
