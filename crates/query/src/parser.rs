//! Recursive-descent parser for EQL.
//!
//! ```text
//! select    := SELECT proj FROM source [WHERE cond] [WITH threshold] [';']
//! proj      := '*' | ident (',' ident)*
//! source    := join_src (UNION join_src)*
//! join_src  := primary [JOIN primary ON cond]
//! primary   := ident | '(' source ')'
//! cond      := and_cond (OR and_cond)*
//! and_cond  := unary (AND unary)*
//! unary     := NOT unary | atom
//! atom      := '(' cond ')'
//!            | ident IS '{' literal (',' literal)* '}'
//!            | operand cmp operand
//! operand   := ident | literal | evidence
//! evidence  := '[' entry (',' entry)* ']'
//! entry     := (literal | '{' literal (',' literal)* '}') '^' number
//! cmp       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! threshold := SN '>' number | SN '>=' number | SN '=' 1 | SP '>=' number
//! ```

use crate::ast::{CmpOp, Condition, ExprOperand, Literal, SelectStmt, Source, ThresholdClause};
use crate::error::QueryError;
use crate::lexer::{tokenize, Spanned, Token};

/// Parse one `SELECT` statement.
///
/// # Errors
/// [`QueryError::Lex`] / [`QueryError::Parse`] with byte offsets.
pub fn parse(input: &str) -> Result<SelectStmt, QueryError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    // Optional trailing semicolon, then EOF.
    if p.peek() == &Token::Semicolon {
        p.advance();
    }
    p.expect(Token::Eof)?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Token) -> Result<(), QueryError> {
        if *self.peek() == want {
            self.advance();
            Ok(())
        } else {
            Err(QueryError::parse(
                self.offset(),
                format!("expected {want}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(QueryError::parse(
                self.offset(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn number(&mut self) -> Result<f64, QueryError> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.advance();
                Ok(i as f64)
            }
            Token::Float(x) => {
                self.advance();
                Ok(x)
            }
            other => Err(QueryError::parse(
                self.offset(),
                format!("expected number, found {other}"),
            )),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, QueryError> {
        self.expect(Token::Select)?;
        let projection = if *self.peek() == Token::Star {
            self.advance();
            None
        } else {
            let mut attrs = vec![self.ident()?];
            while *self.peek() == Token::Comma {
                self.advance();
                attrs.push(self.ident()?);
            }
            Some(attrs)
        };
        self.expect(Token::From)?;
        let source = self.source()?;
        let predicate = if *self.peek() == Token::Where {
            self.advance();
            Some(self.condition()?)
        } else {
            None
        };
        let threshold = if *self.peek() == Token::With {
            self.advance();
            Some(self.threshold()?)
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            source,
            predicate,
            threshold,
        })
    }

    fn source(&mut self) -> Result<Source, QueryError> {
        let mut left = self.join_source()?;
        while *self.peek() == Token::Union {
            self.advance();
            let right = self.join_source()?;
            left = Source::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn join_source(&mut self) -> Result<Source, QueryError> {
        let left = self.primary_source()?;
        if *self.peek() == Token::Join {
            self.advance();
            let right = self.primary_source()?;
            self.expect(Token::On)?;
            let on = self.condition()?;
            return Ok(Source::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
            });
        }
        Ok(left)
    }

    fn primary_source(&mut self) -> Result<Source, QueryError> {
        if *self.peek() == Token::LParen {
            self.advance();
            let s = self.source()?;
            self.expect(Token::RParen)?;
            Ok(s)
        } else {
            Ok(Source::Relation(self.ident()?))
        }
    }

    fn condition(&mut self) -> Result<Condition, QueryError> {
        let mut left = self.and_condition()?;
        while *self.peek() == Token::Or {
            self.advance();
            let right = self.and_condition()?;
            left = Condition::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_condition(&mut self) -> Result<Condition, QueryError> {
        let mut left = self.unary_condition()?;
        while *self.peek() == Token::And {
            self.advance();
            let right = self.unary_condition()?;
            left = Condition::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_condition(&mut self) -> Result<Condition, QueryError> {
        if *self.peek() == Token::Not {
            self.advance();
            return Ok(Condition::Not(Box::new(self.unary_condition()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Condition, QueryError> {
        if *self.peek() == Token::LParen {
            self.advance();
            let c = self.condition()?;
            self.expect(Token::RParen)?;
            return Ok(c);
        }
        // `ident IS { … }` needs two-token lookahead.
        if let Token::Ident(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::Is) {
                self.advance(); // ident
                self.advance(); // IS
                self.expect(Token::LBrace)?;
                let mut values = vec![self.literal()?];
                while *self.peek() == Token::Comma {
                    self.advance();
                    values.push(self.literal()?);
                }
                self.expect(Token::RBrace)?;
                return Ok(Condition::Is { attr: name, values });
            }
        }
        let left = self.operand()?;
        let op = self.cmp_op()?;
        let right = self.operand()?;
        Ok(Condition::Cmp { left, op, right })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, QueryError> {
        let op = match self.peek() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            other => {
                return Err(QueryError::parse(
                    self.offset(),
                    format!("expected comparison operator, found {other}"),
                ))
            }
        };
        self.advance();
        Ok(op)
    }

    fn operand(&mut self) -> Result<ExprOperand, QueryError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.advance();
                Ok(ExprOperand::Attr(name))
            }
            Token::Str(_) | Token::Int(_) | Token::Float(_) => {
                Ok(ExprOperand::Literal(self.literal()?))
            }
            Token::LBracket => self.evidence_literal(),
            other => Err(QueryError::parse(
                self.offset(),
                format!("expected operand, found {other}"),
            )),
        }
    }

    fn evidence_literal(&mut self) -> Result<ExprOperand, QueryError> {
        self.expect(Token::LBracket)?;
        let mut entries = Vec::new();
        loop {
            let values = if *self.peek() == Token::LBrace {
                self.advance();
                let mut vals = vec![self.literal()?];
                while *self.peek() == Token::Comma {
                    self.advance();
                    vals.push(self.literal()?);
                }
                self.expect(Token::RBrace)?;
                vals
            } else {
                vec![self.literal()?]
            };
            self.expect(Token::Caret)?;
            let mass = self.number()?;
            entries.push((values, mass));
            if *self.peek() == Token::Comma {
                self.advance();
                continue;
            }
            break;
        }
        self.expect(Token::RBracket)?;
        Ok(ExprOperand::Evidence(entries))
    }

    fn literal(&mut self) -> Result<Literal, QueryError> {
        match self.peek().clone() {
            Token::Str(s) => {
                self.advance();
                Ok(Literal::Str(s))
            }
            // Bare identifiers inside IS-sets and evidence literals
            // are domain values (the paper writes `speciality is {si}`).
            Token::Ident(s) => {
                self.advance();
                Ok(Literal::Str(s))
            }
            Token::Int(i) => {
                self.advance();
                Ok(Literal::Int(i))
            }
            Token::Float(x) => {
                self.advance();
                Ok(Literal::Float(x))
            }
            other => Err(QueryError::parse(
                self.offset(),
                format!("expected literal, found {other}"),
            )),
        }
    }

    fn threshold(&mut self) -> Result<ThresholdClause, QueryError> {
        match self.advance() {
            Token::Sn => match self.advance() {
                Token::Gt => Ok(ThresholdClause::SnGreater(self.number()?)),
                Token::Ge => Ok(ThresholdClause::SnAtLeast(self.number()?)),
                Token::Eq => {
                    let n = self.number()?;
                    if (n - 1.0).abs() < 1e-12 {
                        Ok(ThresholdClause::Definite)
                    } else {
                        Err(QueryError::parse(
                            self.offset(),
                            "only SN = 1 is supported (definite threshold)",
                        ))
                    }
                }
                other => Err(QueryError::parse(
                    self.offset(),
                    format!("expected >, >= or = after SN, found {other}"),
                )),
            },
            Token::Sp => {
                self.expect(Token::Ge)?;
                Ok(ThresholdClause::SpAtLeast(self.number()?))
            }
            other => Err(QueryError::parse(
                self.offset(),
                format!("expected SN or SP, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_table2_query() {
        let stmt = parse("SELECT * FROM ra WHERE speciality IS {si} WITH SN > 0;").unwrap();
        assert!(stmt.projection.is_none());
        assert_eq!(stmt.source, Source::Relation("ra".into()));
        assert!(matches!(stmt.predicate, Some(Condition::Is { .. })));
        assert_eq!(stmt.threshold, Some(ThresholdClause::SnGreater(0.0)));
    }

    #[test]
    fn parses_projection_list() {
        let stmt = parse("SELECT rname, phone, speciality FROM ra").unwrap();
        assert_eq!(
            stmt.projection,
            Some(vec!["rname".into(), "phone".into(), "speciality".into()])
        );
        assert!(stmt.predicate.is_none());
        assert!(stmt.threshold.is_none());
    }

    #[test]
    fn parses_union_chain() {
        let stmt = parse("SELECT * FROM ra UNION rb UNION rc").unwrap();
        match stmt.source {
            Source::Union(left, right) => {
                assert!(matches!(*left, Source::Union(_, _)));
                assert_eq!(*right, Source::Relation("rc".into()));
            }
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn parses_join() {
        let stmt = parse("SELECT * FROM r JOIN rm ON R.rname = RM.rname WITH SN > 0").unwrap();
        match stmt.source {
            Source::Join { on, .. } => {
                assert!(matches!(on, Condition::Cmp { op: CmpOp::Eq, .. }));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn parses_compound_conditions() {
        let stmt = parse(
            "SELECT * FROM ra WHERE speciality IS {mu} AND rating IS {ex} OR NOT rating IS {avg}",
        )
        .unwrap();
        // OR binds loosest: (AND …) OR (NOT …).
        assert!(matches!(stmt.predicate, Some(Condition::Or(_, _))));
    }

    #[test]
    fn parses_theta_with_literals() {
        let stmt = parse("SELECT * FROM ra WHERE rating >= 'gd'").unwrap();
        match stmt.predicate.unwrap() {
            Condition::Cmp { left, op, right } => {
                assert_eq!(left, ExprOperand::Attr("rating".into()));
                assert_eq!(op, CmpOp::Ge);
                assert_eq!(right, ExprOperand::Literal(Literal::Str("gd".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_evidence_literal() {
        let stmt = parse("SELECT * FROM r WHERE n <= [{1, 4}^0.6, {2, 6}^0.4]").unwrap();
        match stmt.predicate.unwrap() {
            Condition::Cmp {
                right: ExprOperand::Evidence(entries),
                ..
            } => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].0.len(), 2);
                assert!((entries[0].1 - 0.6).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_thresholds() {
        assert_eq!(
            parse("SELECT * FROM r WITH SN >= 0.5").unwrap().threshold,
            Some(ThresholdClause::SnAtLeast(0.5))
        );
        assert_eq!(
            parse("SELECT * FROM r WITH SN = 1").unwrap().threshold,
            Some(ThresholdClause::Definite)
        );
        assert_eq!(
            parse("SELECT * FROM r WITH SP >= 0.8").unwrap().threshold,
            Some(ThresholdClause::SpAtLeast(0.8))
        );
        assert!(parse("SELECT * FROM r WITH SN = 0.5").is_err());
    }

    #[test]
    fn parenthesized_sources_and_conditions() {
        let stmt =
            parse("SELECT * FROM (ra UNION rb) WHERE (a IS {x} OR b IS {y}) AND c IS {z}").unwrap();
        assert!(matches!(stmt.source, Source::Union(_, _)));
        assert!(matches!(stmt.predicate, Some(Condition::And(_, _))));
    }

    #[test]
    fn error_positions() {
        let err = parse("SELECT FROM r").unwrap_err();
        assert!(
            matches!(err, QueryError::Parse { offset: 7, .. }),
            "{err:?}"
        );
        assert!(parse("SELECT * r").is_err());
        assert!(parse("SELECT * FROM r WHERE").is_err());
        assert!(parse("SELECT * FROM r extra").is_err());
    }
}
