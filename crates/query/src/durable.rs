//! The durable catalog: crash-safe persistence of catalog bindings.
//!
//! [`DurableCatalog`] fronts a data directory holding the manifest
//! ([`evirel_store::manifest`]), the write-ahead journal
//! ([`evirel_store::journal`]), and one checksummed segment file per
//! binding. The protocol, end to end:
//!
//! * **Recovery** ([`DurableCatalog::open`]): load the manifest (the
//!   last checkpoint), replay journal records with `generation >
//!   manifest.generation` (mutations since), attach every surviving
//!   binding's segment — verifying its content checksum against the
//!   recorded one — and report the recovered generation. The caller
//!   seeds its [`crate::SharedCatalog`] with
//!   [`crate::SharedCatalog::with_generation`] so the generation
//!   stream continues monotonically across restarts.
//! * **Mutation** ([`DurableCatalog::record_bind`] /
//!   [`DurableCatalog::record_drop`]): called *inside* a
//!   [`crate::SharedCatalog::update_at`] closure, so the journal
//!   record is written and fsync'd under the catalog write lock —
//!   strictly before any reader can observe the new generation.
//!   `record_bind` first writes the relation to a fresh
//!   `seg-NNNNNN.evb` (atomic temp+fsync+rename), then journals
//!   `{name, file, checksum, generation}`.
//! * **Checkpoint** ([`DurableCatalog::checkpoint`]): fold the
//!   journal into a freshly-written manifest, truncate the journal,
//!   GC unreferenced segments. Safe to crash out of at any point.
//!
//! Generation parity: the durable side never invents generations — it
//! records the ones `update_at` hands it. As long as every published
//! mutation is journaled (the serve layer's MERGE path) the durable
//! generation equals the published one.

use crate::catalog::Catalog;
use crate::error::QueryError;
use evirel_obs::{Counter, Histogram};
use evirel_store::checkpoint::{checkpoint, CheckpointOutcome};
use evirel_store::{
    Journal, JournalRecord, Manifest, ManifestEntry, Segment, StoreError, StoredRelation,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn store_err(e: StoreError) -> QueryError {
    QueryError::Execution {
        message: e.to_string(),
    }
}

/// Counters for the serve layer's STATS durability line.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityStats {
    /// Last committed (journaled or checkpointed) generation.
    pub committed_generation: u64,
    /// Journal records since the last checkpoint.
    pub journal_records: u64,
    /// Checkpoints taken since this process opened the directory.
    pub checkpoints: u64,
    /// Bindings currently persisted.
    pub bindings: u64,
}

/// Observability handles the durability layer records into once the
/// owner attaches them ([`DurableCatalog::set_metrics`]). The serve
/// layer wires these to its per-server registry; a bare
/// [`DurableCatalog`] (tests, the REPL) records nothing. Recording is
/// observation-only — it never changes what is written or when.
#[derive(Debug, Clone)]
pub struct DurableMetrics {
    /// Latency of one journal append + fsync — the commit point every
    /// mutation pays before its generation becomes observable.
    pub journal_append: Histogram,
    /// Wall-clock duration of each checkpoint (manifest swap, journal
    /// truncation, segment GC).
    pub checkpoint: Histogram,
    /// Total segment-file bytes written by binds.
    pub segment_bytes: Counter,
}

/// How many journal records a [`DurableCatalog`] retains in memory
/// for replication senders **by default**. A follower whose resume
/// cursor falls below the retained window gets a full snapshot
/// transfer instead of record replay. Override per process with the
/// `EVIREL_RETAIN_RECORDS` environment variable (see
/// [`retain_records_cap`]).
pub const RETAINED_RECORDS_CAP: usize = 4096;

/// Largest retained-window size `EVIREL_RETAIN_RECORDS` accepts.
/// Each retained record is a small in-memory struct, but a window in
/// the millions means someone fat-fingered a byte budget into a
/// record count — reject it like garbage input.
pub const MAX_RETAIN_RECORDS: usize = 1 << 20;

/// Parse an `EVIREL_RETAIN_RECORDS` value: `Some(n)` for an integer
/// in `1..=`[`MAX_RETAIN_RECORDS`], `None` for anything else
/// (garbage, `0`, negatives, absurd counts) — the invalid cases
/// [`retain_records_cap`] warns about.
pub fn parse_retain_records(raw: &str) -> Option<usize> {
    raw.trim()
        .parse::<usize>()
        .ok()
        .filter(|n| (1..=MAX_RETAIN_RECORDS).contains(n))
}

/// The retained-window size a newly opened [`DurableCatalog`] uses:
/// the `EVIREL_RETAIN_RECORDS` environment variable when it parses to
/// an integer in `1..=`[`MAX_RETAIN_RECORDS`], else
/// [`RETAINED_RECORDS_CAP`] (4096). Small windows resync followers
/// sooner; large windows let a long-offline standby catch up by
/// record replay.
///
/// An *invalid* value is rejected **loudly**: one warning per process
/// goes to stderr naming the value and the accepted range, and the
/// default applies — the same reject-loudly contract as
/// `EVIREL_THREADS` ([`evirel_plan::default_parallelism`]).
pub fn retain_records_cap() -> usize {
    let Ok(raw) = std::env::var("EVIREL_RETAIN_RECORDS") else {
        return RETAINED_RECORDS_CAP;
    };
    parse_retain_records(&raw).unwrap_or_else(|| {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "warning: ignoring invalid EVIREL_RETAIN_RECORDS={raw:?}: expected \
                 an integer in 1..={MAX_RETAIN_RECORDS}; using the default \
                 ({RETAINED_RECORDS_CAP})"
            );
        });
        RETAINED_RECORDS_CAP
    })
}

/// What a replication sender should stream to a follower that has
/// applied through some generation — computed by
/// [`DurableCatalog::stream_plan`].
#[derive(Debug, Clone)]
pub enum StreamPlan {
    /// The follower is within the retained window: replay exactly
    /// these records (strictly increasing generations), in order.
    Tail(Vec<JournalRecord>),
    /// The follower is too far behind (or the retained range is not
    /// strictly monotonic, e.g. a REPL `\checkpoint` bound several
    /// names at one generation): transfer the full durable state.
    Resync {
        /// The committed generation this snapshot represents.
        generation: u64,
        /// Every durable binding. The follower installs this set
        /// atomically ([`DurableCatalog::install_snapshot`]); segment
        /// payloads need shipping only for entries stamped after the
        /// follower's cursor — older entries are byte-identical on
        /// both sides because both replayed the same single-writer
        /// history.
        entries: Vec<ManifestEntry>,
    },
}

/// A data directory opened for journaling and recovery. See the
/// module docs for the protocol.
#[derive(Debug)]
pub struct DurableCatalog {
    dir: PathBuf,
    journal: Journal,
    /// The durable binding set (manifest ∪ journal effects).
    entries: BTreeMap<String, ManifestEntry>,
    committed_generation: u64,
    recovered_generation: u64,
    next_segment: u64,
    checkpoints: u64,
    /// Recent journal records kept in memory for replication senders
    /// (checkpoints truncate the on-disk journal, but a sender must
    /// still be able to resume a follower from before the
    /// checkpoint). Ascending generations; capped at `retained_cap`.
    retained: Vec<JournalRecord>,
    /// Retained-window size, fixed at open time from
    /// [`retain_records_cap`] (`EVIREL_RETAIN_RECORDS`, default
    /// [`RETAINED_RECORDS_CAP`]).
    retained_cap: usize,
    /// Followers resuming from a generation **below** this floor need
    /// a full resync — the records are no longer individually
    /// retained.
    retained_floor: u64,
    /// Observability handles, when the owner attached any.
    metrics: Option<DurableMetrics>,
}

impl DurableCatalog {
    /// Open (creating if needed) the data directory, recover its
    /// committed state, and return the handle plus a [`Catalog`]
    /// holding every recovered binding as a stored attachment.
    ///
    /// # Errors
    /// [`QueryError::Execution`] wrapping the store error: unreadable
    /// directory, torn manifest, mid-journal damage, a missing or
    /// checksum-mismatched segment.
    pub fn open(dir: impl AsRef<Path>) -> Result<(DurableCatalog, Catalog), QueryError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| QueryError::Execution {
            message: format!("create data dir {dir:?}: {e}"),
        })?;
        let manifest = Manifest::load(&dir).map_err(store_err)?.unwrap_or_default();
        let (journal, replayed) = Journal::open_or_create(&dir).map_err(store_err)?;

        let mut entries: BTreeMap<String, ManifestEntry> = manifest
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.clone()))
            .collect();
        let mut committed = manifest.generation;
        let mut retained = Vec::new();
        for record in &replayed {
            // Records at or below the manifest generation were
            // absorbed by a checkpoint that crashed before its
            // journal truncation — skip them.
            if record.generation() <= manifest.generation {
                continue;
            }
            committed = committed.max(record.generation());
            retained.push(record.clone());
            match record {
                JournalRecord::Bind {
                    name,
                    file,
                    format_version,
                    checksum,
                    tuple_count,
                    generation,
                } => {
                    entries.insert(
                        name.clone(),
                        ManifestEntry {
                            name: name.clone(),
                            file: file.clone(),
                            format_version: *format_version,
                            checksum: *checksum,
                            tuple_count: *tuple_count,
                            generation: *generation,
                        },
                    );
                }
                JournalRecord::Drop { name, .. } => {
                    entries.remove(name);
                }
            }
        }

        // Attach every surviving binding, verifying content checksums
        // (v3 segments; v2 entries record checksum 0 and skip it).
        let mut catalog = Catalog::new();
        for entry in entries.values() {
            let path = dir.join(&entry.file);
            let segment = Segment::open(&path).map_err(store_err)?;
            if let Some(actual) = segment.content_checksum() {
                if actual != entry.checksum {
                    return Err(store_err(StoreError::corrupt(format!(
                        "segment {path:?} checksum {actual:#010x} does not match \
                         the committed {:#010x} for binding {:?}",
                        entry.checksum, entry.name
                    ))));
                }
            }
            let stored = StoredRelation::from_segment(Arc::new(segment), Arc::clone(&catalog.pool));
            catalog.attach(entry.name.clone(), stored);
        }

        // Apply the retained-window cap to the replayed tail too, so
        // a long journal does not pin unbounded memory at open.
        let retained_cap = retain_records_cap();
        let mut retained_floor = manifest.generation;
        if retained.len() > retained_cap {
            let excess = retained.len() - retained_cap;
            retained_floor = retained[excess - 1].generation();
            retained.drain(..excess);
        }

        let next_segment = next_segment_number(&dir);
        Ok((
            DurableCatalog {
                dir,
                journal,
                entries,
                committed_generation: committed,
                recovered_generation: committed,
                next_segment,
                checkpoints: 0,
                retained,
                retained_cap,
                retained_floor,
                metrics: None,
            },
            catalog,
        ))
    }

    /// Attach observability handles: subsequent journal appends,
    /// checkpoints, and segment writes record into them.
    pub fn set_metrics(&mut self, metrics: DurableMetrics) {
        self.metrics = Some(metrics);
    }

    /// Journal one record, timing the append + fsync when metrics are
    /// attached.
    fn timed_append(&mut self, record: &JournalRecord) -> Result<(), QueryError> {
        let started = Instant::now();
        self.journal.append(record).map_err(store_err)?;
        if let Some(m) = &self.metrics {
            m.journal_append.observe(started.elapsed());
        }
        Ok(())
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The generation recovery landed on when this handle opened.
    pub fn recovered_generation(&self) -> u64 {
        self.recovered_generation
    }

    /// The last committed generation (recovered, then advanced by
    /// every journaled mutation).
    pub fn committed_generation(&self) -> u64 {
        self.committed_generation
    }

    /// Counters for STATS.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            committed_generation: self.committed_generation,
            journal_records: self.journal.records_since_checkpoint(),
            checkpoints: self.checkpoints,
            bindings: self.entries.len() as u64,
        }
    }

    /// Durably record that `name` now binds `rel` at `generation`:
    /// write a fresh segment (atomic), then journal + fsync the
    /// binding. Call from inside [`crate::SharedCatalog::update_at`],
    /// with the generation the closure received, *before* registering
    /// the relation in the in-memory catalog — on return the mutation
    /// is durable, so publishing it is safe.
    ///
    /// Returns the segment path, so the caller can re-attach the
    /// binding as a stored relation instead of keeping it in memory.
    ///
    /// # Errors
    /// [`QueryError::Execution`] wrapping the store error; nothing
    /// was published then (a written segment without its journal
    /// record is GC'd at the next checkpoint).
    pub fn record_bind(
        &mut self,
        name: &str,
        rel: &evirel_relation::ExtendedRelation,
        generation: u64,
    ) -> Result<PathBuf, QueryError> {
        self.next_segment += 1;
        let file = format!("seg-{:06}.evb", self.next_segment);
        let path = self.dir.join(&file);
        let meta = evirel_store::write_segment_meta(rel, &path, evirel_store::DEFAULT_PAGE_SIZE)
            .map_err(store_err)?;
        if let Some(m) = &self.metrics {
            m.segment_bytes
                .add(std::fs::metadata(&meta.path).map_or(0, |f| f.len()));
        }
        let record = JournalRecord::Bind {
            name: name.to_owned(),
            file: file.clone(),
            format_version: 3,
            checksum: meta.checksum,
            tuple_count: meta.tuple_count,
            generation,
        };
        self.timed_append(&record)?;
        self.entries.insert(
            name.to_owned(),
            ManifestEntry {
                name: name.to_owned(),
                file,
                format_version: 3,
                checksum: meta.checksum,
                tuple_count: meta.tuple_count,
                generation,
            },
        );
        self.committed_generation = self.committed_generation.max(generation);
        self.push_retained(record);
        Ok(path)
    }

    /// Durably record that `name` was dropped at `generation`. Same
    /// calling discipline as [`DurableCatalog::record_bind`].
    ///
    /// # Errors
    /// [`QueryError::Execution`] wrapping the store error.
    pub fn record_drop(&mut self, name: &str, generation: u64) -> Result<(), QueryError> {
        let record = JournalRecord::Drop {
            name: name.to_owned(),
            generation,
        };
        self.timed_append(&record)?;
        self.entries.remove(name);
        self.committed_generation = self.committed_generation.max(generation);
        self.push_retained(record);
        Ok(())
    }

    /// Checkpoint: write the manifest from the current durable
    /// binding set, truncate the journal, GC unreferenced segments.
    ///
    /// The retained replication window is dropped with the journal:
    /// the GC may have deleted segment files that superseded `Bind`
    /// records reference, so offering those records to a lagging
    /// follower would stream dangling file names forever. Raising
    /// [`DurableCatalog::retained_floor`] to the checkpointed
    /// generation instead routes any follower still below it onto
    /// the resync path (a follower already at the floor keeps
    /// tailing — its next plan is an empty tail, not a resync).
    ///
    /// # Errors
    /// [`QueryError::Execution`] wrapping the store error; the
    /// previous manifest + journal remain recoverable then.
    pub fn checkpoint(&mut self) -> Result<CheckpointOutcome, QueryError> {
        let manifest = Manifest {
            generation: self.committed_generation,
            entries: self.entries.values().cloned().collect(),
        };
        let started = Instant::now();
        let outcome = checkpoint(&self.dir, &manifest, &mut self.journal).map_err(store_err)?;
        if let Some(m) = &self.metrics {
            m.checkpoint.observe(started.elapsed());
        }
        self.checkpoints += 1;
        self.retained.clear();
        self.retained_floor = self.committed_generation;
        Ok(outcome)
    }

    /// Persist the whole of `catalog` as one durable generation, then
    /// checkpoint: every relation is re-bound (segment + journal
    /// record), durable bindings absent from the catalog are dropped,
    /// and the manifest is swapped. The eql REPL's `\checkpoint` uses
    /// this to bind an interactive catalog wholesale; superseded
    /// segments are GC'd by the checkpoint.
    ///
    /// The generation is self-stamped (`committed + 1`) rather than
    /// taken from the caller: an interactive shell's in-memory
    /// generation counter starts at 0 regardless of what the data
    /// directory has seen, and journal records stamped below the
    /// manifest generation would be ignored by recovery.
    ///
    /// Returns how many bindings were persisted.
    ///
    /// # Errors
    /// [`QueryError::Execution`] wrapping the store error.
    /// Record `record` into the in-memory retained window, trimming
    /// the front (and raising the floor) past the cap.
    fn push_retained(&mut self, record: JournalRecord) {
        self.retained.push(record);
        if self.retained.len() > self.retained_cap {
            let excess = self.retained.len() - self.retained_cap;
            self.retained_floor = self.retained[excess - 1].generation();
            self.retained.drain(..excess);
        }
    }

    /// Generations at or below this are no longer individually
    /// retained for replay; followers behind it get a full resync.
    pub fn retained_floor(&self) -> u64 {
        self.retained_floor
    }

    /// What to stream to a follower that has applied through `from`:
    /// a record tail when `from` is inside the retained window and
    /// the records past it carry strictly increasing generations
    /// (the serve-layer write discipline — one journaled mutation per
    /// published generation); a full state transfer otherwise. A
    /// non-monotonic range (several records sharing a generation, the
    /// REPL's `\checkpoint` shape) falls back to resync because a
    /// record tail cut *inside* such a group could not be resumed
    /// without re-applying or skipping its siblings.
    pub fn stream_plan(&self, from: u64) -> StreamPlan {
        if from >= self.retained_floor {
            let tail: Vec<JournalRecord> = evirel_store::journal::since(&self.retained, from)
                .cloned()
                .collect();
            let monotonic = tail
                .windows(2)
                .all(|w| w[0].generation() < w[1].generation());
            if monotonic {
                return StreamPlan::Tail(tail);
            }
        }
        StreamPlan::Resync {
            generation: self.committed_generation,
            entries: self.entries.values().cloned().collect(),
        }
    }

    /// Apply one replicated journal record on a **follower**: verify
    /// the referenced segment (already staged into this directory by
    /// [`evirel_store::replica`]) against the record's checksum and
    /// tuple count, then journal + fsync it locally. On return the
    /// record is durable — the caller publishes the catalog change
    /// via [`crate::SharedCatalog::update_stamped`] *after* this, the
    /// same fsync-before-publish rule the primary follows, so a
    /// follower can never serve a generation it could lose.
    ///
    /// # Errors
    /// [`QueryError::Execution`] on a generation that does not
    /// strictly advance the committed one (a re-send the stream
    /// contract forbids), a pre-v3 segment, or any verification /
    /// journal failure. Nothing is applied then.
    pub fn apply_replicated(&mut self, record: &JournalRecord) -> Result<(), QueryError> {
        let generation = record.generation();
        if generation <= self.committed_generation {
            return Err(QueryError::Execution {
                message: format!(
                    "replicated record at generation {generation} does not advance \
                     the applied generation {}",
                    self.committed_generation
                ),
            });
        }
        match record {
            JournalRecord::Bind {
                name,
                file,
                format_version,
                checksum,
                tuple_count,
                generation,
            } => {
                if *format_version < 3 {
                    return Err(store_err(StoreError::corrupt(format!(
                        "replicated binding {name:?} uses segment format v{format_version}; \
                         replication requires checksummed v3 segments"
                    ))));
                }
                evirel_store::verify_segment(&self.dir, file, *checksum, *tuple_count)
                    .map_err(store_err)?;
                self.timed_append(record)?;
                self.entries.insert(
                    name.clone(),
                    ManifestEntry {
                        name: name.clone(),
                        file: file.clone(),
                        format_version: *format_version,
                        checksum: *checksum,
                        tuple_count: *tuple_count,
                        generation: *generation,
                    },
                );
                // Keep local segment numbering clear of replicated
                // files, so a post-promotion bind never collides.
                if let Some(n) = segment_number(file) {
                    self.next_segment = self.next_segment.max(n);
                }
            }
            JournalRecord::Drop { name, .. } => {
                self.timed_append(record)?;
                self.entries.remove(name);
            }
        }
        self.committed_generation = generation;
        self.push_retained(record.clone());
        Ok(())
    }

    /// Atomically install a full durable state on a **follower** that
    /// is too far behind for record replay: verify that every entry's
    /// segment is present (entries newer than the follower's cursor
    /// were just staged by the sender; older ones are byte-identical
    /// survivors of the shared history), then swap the manifest —
    /// write-temp → fsync → rename, the checkpoint primitive — and
    /// truncate the journal. A crash at any point leaves either the
    /// old complete state or the new complete state, never a mix;
    /// that atomicity is why resync is a manifest swap rather than a
    /// journal replay.
    ///
    /// # Errors
    /// [`QueryError::Execution`] when `generation` does not advance
    /// the applied one, a segment is missing or fails verification,
    /// or the manifest swap fails. The previous state remains intact.
    pub fn install_snapshot(
        &mut self,
        generation: u64,
        entries: Vec<ManifestEntry>,
    ) -> Result<(), QueryError> {
        if generation <= self.committed_generation {
            return Err(QueryError::Execution {
                message: format!(
                    "snapshot at generation {generation} does not advance \
                     the applied generation {}",
                    self.committed_generation
                ),
            });
        }
        for entry in &entries {
            if entry.format_version >= 3 {
                evirel_store::verify_segment(
                    &self.dir,
                    &entry.file,
                    entry.checksum,
                    entry.tuple_count,
                )
                .map_err(store_err)?;
            } else if !self.dir.join(&entry.file).is_file() {
                return Err(store_err(StoreError::corrupt(format!(
                    "snapshot entry {:?} references missing segment {:?}",
                    entry.name, entry.file
                ))));
            }
        }
        let manifest = Manifest {
            generation,
            entries: entries.clone(),
        };
        // Manifest swap then journal truncation — exactly a
        // checkpoint, except the state comes from the wire instead of
        // this process's own mutations. GC sweeps segments the new
        // state obsoleted (plus any abandoned staging files).
        let outcome = checkpoint(&self.dir, &manifest, &mut self.journal).map_err(store_err)?;
        let _ = outcome;
        self.entries = entries.into_iter().map(|e| (e.name.clone(), e)).collect();
        self.committed_generation = generation;
        self.checkpoints += 1;
        self.retained.clear();
        self.retained_floor = generation;
        self.next_segment = next_segment_number(&self.dir);
        Ok(())
    }

    /// The durable binding set, in name order — what a resync ships.
    pub fn entries(&self) -> impl Iterator<Item = &ManifestEntry> {
        self.entries.values()
    }

    pub fn checkpoint_full(&mut self, catalog: &Catalog) -> Result<u64, QueryError> {
        let generation = self.committed_generation + 1;
        let mut persisted = 0u64;
        for name in catalog.names() {
            let name = name.to_owned();
            let rel = catalog.materialize(&name)?;
            self.record_bind(&name, &rel, generation)?;
            persisted += 1;
        }
        // Drop durable bindings no longer in the catalog.
        let stale: Vec<String> = self
            .entries
            .keys()
            .filter(|n| !catalog.names().contains(&n.as_str()))
            .cloned()
            .collect();
        for name in stale {
            self.record_drop(&name, generation)?;
        }
        self.checkpoint()?;
        Ok(persisted)
    }
}

/// The highest existing `seg-NNNNNN` number in `dir` (0 when none) —
/// `record_bind` pre-increments, so new segments never collide with
/// survivors of earlier incarnations.
fn next_segment_number(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| segment_number(e.file_name().to_str()?))
        .max()
        .map_or(0, |n| n)
}

/// The `N` of a `seg-NNNNNN.evb` file name, if it has that shape.
fn segment_number(file: &str) -> Option<u64> {
    file.strip_prefix("seg-")?
        .strip_suffix(".evb")?
        .parse::<u64>()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retain_records_parsing_rejects_invalid_values() {
        assert_eq!(parse_retain_records("1"), Some(1));
        assert_eq!(parse_retain_records(" 4096 "), Some(RETAINED_RECORDS_CAP));
        assert_eq!(parse_retain_records("1048576"), Some(MAX_RETAIN_RECORDS));
        for invalid in [
            "",
            "0",
            "-2",
            "64.0",
            "O4",
            "lots",
            "1048577",
            "9999999999999999999999",
        ] {
            assert_eq!(parse_retain_records(invalid), None, "{invalid:?}");
        }
    }
}
