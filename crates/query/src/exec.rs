//! Query execution against a catalog.
//!
//! Queries execute through `evirel-plan`: the lowered [`crate::plan::Plan`]
//! converts to a `LogicalPlan`, the rewrite optimizer runs, and the
//! streaming operators pull tuples end to end — no intermediate
//! relation is materialized between σ̃/π̃/∪̃/⋈̃ stages, and the ∪̃
//! conflict reports that the old executor discarded now surface on
//! [`QueryOutcome`].

use crate::ast::SelectStmt;
use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::parser::parse;
use crate::plan::lower_validated;
use evirel_algebra::ConflictReport;
use evirel_plan::{execute_plan, ExecContext, ExecStats};
use evirel_relation::ExtendedRelation;

/// The full result of one query: the relation plus the side outputs
/// the streaming executor collected.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result relation.
    pub relation: ExtendedRelation,
    /// Attribute/membership conflicts observed by ∪̃-family operators
    /// — the paper's report for the data administrator.
    pub report: ConflictReport,
    /// Execution counters (tuples scanned/emitted, merges, κ stats).
    pub stats: ExecStats,
}

/// Parse and execute a query text against `catalog`.
///
/// # Errors
/// Lex/parse errors, unknown relations/attributes (caught at plan
/// time), and algebra errors (including total-conflict aborts from
/// `UNION`, governed by [`Catalog::union_options`]).
pub fn execute(catalog: &Catalog, query: &str) -> Result<ExtendedRelation, QueryError> {
    execute_parsed(catalog, &parse(query)?)
}

/// Execute an already-parsed statement.
///
/// # Errors
/// As [`execute`], minus the parse stage.
pub fn execute_parsed(
    catalog: &Catalog,
    stmt: &SelectStmt,
) -> Result<ExtendedRelation, QueryError> {
    Ok(execute_stmt(catalog, stmt)?.relation)
}

/// Parse and execute, returning the relation together with the
/// conflict report and execution statistics.
///
/// # Errors
/// As [`execute`].
pub fn execute_with_report(catalog: &Catalog, query: &str) -> Result<QueryOutcome, QueryError> {
    execute_stmt(catalog, &parse(query)?)
}

fn execute_stmt(catalog: &Catalog, stmt: &SelectStmt) -> Result<QueryOutcome, QueryError> {
    let plan = lower_validated(stmt, catalog)?;
    let mut ctx = ExecContext::with_options(catalog.union_options.clone());
    ctx.parallelism = catalog.parallelism.max(1);
    // One pool per catalog: stored scans and spilled merge build
    // sides of every query page under a single byte budget.
    ctx.pool = std::sync::Arc::clone(&catalog.pool);
    ctx.spill_threshold_bytes = catalog.pool.budget_bytes();
    let relation = execute_plan(&plan.to_logical(), catalog, &mut ctx)?;
    Ok(QueryOutcome {
        relation,
        report: ctx.conflict_report(),
        stats: ctx.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{SupportPair, Value};
    use evirel_workload::{restaurant_db_a, restaurant_db_b};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("ra", restaurant_db_a().restaurants);
        c.register("rb", restaurant_db_b().restaurants);
        c.register("rma", restaurant_db_a().managed_by);
        c
    }

    /// Table 2 via the query language.
    #[test]
    fn paper_table2_query() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra WHERE speciality IS {si} WITH SN > 0;",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let garden = out.get_by_key(&[Value::str("garden")]).unwrap();
        assert!(garden
            .membership()
            .approx_eq(&SupportPair::new(0.5, 0.75).unwrap()));
    }

    /// Table 3 via the query language.
    #[test]
    fn paper_table3_query() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra WHERE speciality IS {mu} AND rating IS {ex} WITH SN > 0",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let mehl = out.get_by_key(&[Value::str("mehl")]).unwrap();
        assert!(mehl
            .membership()
            .approx_eq(&SupportPair::new(0.32, 0.32).unwrap()));
        let ashiana = out.get_by_key(&[Value::str("ashiana")]).unwrap();
        assert!(ashiana
            .membership()
            .approx_eq(&SupportPair::new(0.9, 1.0).unwrap()));
    }

    /// Table 4 via the query language.
    #[test]
    fn paper_table4_query() {
        let out = execute(&catalog(), "SELECT * FROM ra UNION rb").unwrap();
        assert_eq!(out.len(), 6);
        let mehl = out.get_by_key(&[Value::str("mehl")]).unwrap();
        assert!((mehl.membership().sn() - 5.0 / 6.0).abs() < 1e-9);
    }

    /// Table 5 via the query language.
    #[test]
    fn paper_table5_query() {
        let out = execute(
            &catalog(),
            "SELECT rname, phone, speciality, rating FROM ra",
        )
        .unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out.schema().arity(), 4);
    }

    #[test]
    fn join_query() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra JOIN rma ON RA.rname = RMA.rname WITH SN > 0",
        )
        .unwrap();
        // Both operands carry "rname", so the product qualifies the
        // clash with the schema names (RA.rname, RMA.rname). Matches:
        // wok-chen, mehl-rao, ashiana-rao.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn theta_query_on_ordered_domain() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra WHERE rating >= 'gd' WITH SN >= 0.8",
        )
        .unwrap();
        // garden 0.83, country 1.0, ashiana 1.0, mehl 1.0×(0.5)=0.5 no,
        // olive 0.5 no, wok 0.25 no.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn bare_with_clause_filters_membership() {
        let out = execute(&catalog(), "SELECT * FROM ra WITH SN >= 0.9").unwrap();
        // Only mehl has sn < 0.9 in R_A.
        assert_eq!(out.len(), 5);
        assert!(out.get_by_key(&[Value::str("mehl")]).is_none());
    }

    #[test]
    fn union_then_where_composes() {
        let out = execute(
            &catalog(),
            "SELECT rname, rating FROM ra UNION rb WHERE rating IS {ex} WITH SN >= 0.8",
        )
        .unwrap();
        // After union: country ex^1, ashiana ex^1, mehl ex^1 (0.83
        // membership → 0.83 ≥ 0.8 ✓), garden ex^0.143 ✗, wok gd ✗,
        // olive ✗.
        assert_eq!(out.len(), 3);
        assert!(out.contains_key(&[Value::str("mehl")]));
    }

    #[test]
    fn unknown_relation_reported() {
        assert!(matches!(
            execute(&catalog(), "SELECT * FROM nope"),
            Err(QueryError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn projection_must_keep_keys() {
        assert!(matches!(
            execute(&catalog(), "SELECT phone FROM ra"),
            Err(QueryError::Algebra(
                evirel_algebra::AlgebraError::ProjectionMissingKey { .. }
            ))
        ));
    }

    #[test]
    fn definite_threshold_query() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra WHERE speciality IS {si} WITH SN = 1",
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_key(&[Value::str("wok")]));
    }

    /// The ∪̃ conflict report the old executor dropped now rides on
    /// the outcome.
    #[test]
    fn union_conflicts_surface_on_outcome() {
        let outcome = execute_with_report(&catalog(), "SELECT * FROM ra UNION rb").unwrap();
        assert_eq!(outcome.relation.len(), 6);
        assert!(!outcome.report.is_empty());
        assert!(outcome.report.max_kappa() > 0.0);
        assert!(outcome.stats.pairs_merged > 0);
        assert!(outcome.stats.tuples_scanned >= outcome.relation.len());
        // Queries without a union report nothing.
        let outcome = execute_with_report(&catalog(), "SELECT * FROM ra").unwrap();
        assert!(outcome.report.is_empty());
    }

    /// Unknown attributes in WHERE or the projection error at plan
    /// time with the attribute name, not mid-execution.
    #[test]
    fn unknown_attribute_caught_at_plan_time() {
        match execute(&catalog(), "SELECT * FROM ra WHERE ghost IS {si}") {
            Err(QueryError::UnknownAttribute { attr, .. }) => assert_eq!(attr, "ghost"),
            other => panic!("{other:?}"),
        }
        match execute(&catalog(), "SELECT rname, ghost FROM ra") {
            Err(QueryError::UnknownAttribute { attr, .. }) => assert_eq!(attr, "ghost"),
            other => panic!("{other:?}"),
        }
        // Qualified join attributes resolve against the product schema.
        assert!(execute(
            &catalog(),
            "SELECT * FROM ra JOIN rma ON RA.rname = RMA.ghost",
        )
        .is_err());
    }

    /// Acceptance check: a pushdown-eligible query shows at least two
    /// rewrite rules firing in EXPLAIN.
    #[test]
    fn explain_shows_rewrites_firing() {
        let text = crate::plan::explain_with(
            &catalog(),
            "SELECT * FROM ra JOIN rma ON RA.rname = RMA.rname WHERE speciality IS {si} WITH SN > 0",
        )
        .unwrap();
        for rule in [
            "join-expansion",
            "select-fusion",
            "predicate-pushdown-product",
        ] {
            assert!(text.contains(rule), "missing {rule} in:\n{text}");
        }
        // The physical plan is rendered, with the streaming hash ⋈̃.
        assert!(text.contains("physical:"), "{text}");
        assert!(text.contains("hash rname = rname"), "{text}");
        // Key-crisp selections distribute below ∪̃.
        let text = crate::plan::explain_with(
            &catalog(),
            "SELECT rname, rating FROM ra UNION rb WHERE rname = 'mehl'",
        )
        .unwrap();
        assert!(text.contains("select-under-union"), "{text}");
    }

    /// The distributed and non-distributed ∪̃ paths agree on results.
    #[test]
    fn key_filtered_union_matches_table4_row() {
        let out = execute(&catalog(), "SELECT * FROM ra UNION rb WHERE rname = 'mehl'").unwrap();
        assert_eq!(out.len(), 1);
        let mehl = out.get_by_key(&[Value::str("mehl")]).unwrap();
        assert!((mehl.membership().sn() - 5.0 / 6.0).abs() < 1e-9);
    }
}
