//! Query execution against a catalog.

use crate::ast::SelectStmt;
use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::parser::parse;
use crate::plan::{lower, Plan, SourcePlan};
use evirel_algebra::{join, project, select, union::union_with};
use evirel_relation::ExtendedRelation;

/// Parse and execute a query text against `catalog`.
///
/// # Errors
/// Lex/parse errors, unknown relations, and algebra errors (including
/// total-conflict aborts from `UNION`, governed by
/// [`Catalog::union_options`]).
pub fn execute(catalog: &Catalog, query: &str) -> Result<ExtendedRelation, QueryError> {
    execute_parsed(catalog, &parse(query)?)
}

/// Execute an already-parsed statement.
///
/// # Errors
/// As [`execute`], minus the parse stage.
pub fn execute_parsed(
    catalog: &Catalog,
    stmt: &SelectStmt,
) -> Result<ExtendedRelation, QueryError> {
    let plan = lower(stmt)?;
    run_plan(catalog, &plan)
}

fn run_plan(catalog: &Catalog, plan: &Plan) -> Result<ExtendedRelation, QueryError> {
    let mut rel = run_source(catalog, &plan.source)?;
    if let Some(pred) = &plan.predicate {
        rel = select(&rel, pred, &plan.threshold)?;
    } else if plan.threshold != evirel_algebra::Threshold::POSITIVE {
        // A WITH clause without WHERE filters on stored membership
        // alone (predicate support is trivially (1,1)).
        rel = select(
            &rel,
            &evirel_algebra::Predicate::Theta {
                left: trivially_true_operand(&rel)?,
                op: evirel_algebra::ThetaOp::Eq,
                right: trivially_true_operand(&rel)?,
            },
            &plan.threshold,
        )?;
    }
    if let Some(attrs) = &plan.projection {
        let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
        rel = project(&rel, &names)?;
    }
    Ok(rel)
}

/// A θ-operand that compares a key attribute with itself — support
/// (1,1) for every tuple. Used to apply a bare `WITH` threshold.
fn trivially_true_operand(rel: &ExtendedRelation) -> Result<evirel_algebra::Operand, QueryError> {
    let key_pos = rel.schema().key_positions()[0];
    Ok(evirel_algebra::Operand::Attr(
        rel.schema().attr(key_pos).name().to_owned(),
    ))
}

fn run_source(catalog: &Catalog, source: &SourcePlan) -> Result<ExtendedRelation, QueryError> {
    match source {
        SourcePlan::Scan(name) => catalog
            .get(name)
            .cloned()
            .ok_or_else(|| QueryError::UnknownRelation { name: name.clone() }),
        SourcePlan::Union(l, r) => {
            let left = run_source(catalog, l)?;
            let right = run_source(catalog, r)?;
            Ok(union_with(&left, &right, &catalog.union_options)?.relation)
        }
        SourcePlan::Join { left, right, on } => {
            let l = run_source(catalog, left)?;
            let r = run_source(catalog, right)?;
            Ok(join(&l, &r, on, &evirel_algebra::Threshold::POSITIVE)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{SupportPair, Value};
    use evirel_workload::{restaurant_db_a, restaurant_db_b};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("ra", restaurant_db_a().restaurants);
        c.register("rb", restaurant_db_b().restaurants);
        c.register("rma", restaurant_db_a().managed_by);
        c
    }

    /// Table 2 via the query language.
    #[test]
    fn paper_table2_query() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra WHERE speciality IS {si} WITH SN > 0;",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let garden = out.get_by_key(&[Value::str("garden")]).unwrap();
        assert!(garden
            .membership()
            .approx_eq(&SupportPair::new(0.5, 0.75).unwrap()));
    }

    /// Table 3 via the query language.
    #[test]
    fn paper_table3_query() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra WHERE speciality IS {mu} AND rating IS {ex} WITH SN > 0",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let mehl = out.get_by_key(&[Value::str("mehl")]).unwrap();
        assert!(mehl
            .membership()
            .approx_eq(&SupportPair::new(0.32, 0.32).unwrap()));
        let ashiana = out.get_by_key(&[Value::str("ashiana")]).unwrap();
        assert!(ashiana
            .membership()
            .approx_eq(&SupportPair::new(0.9, 1.0).unwrap()));
    }

    /// Table 4 via the query language.
    #[test]
    fn paper_table4_query() {
        let out = execute(&catalog(), "SELECT * FROM ra UNION rb").unwrap();
        assert_eq!(out.len(), 6);
        let mehl = out.get_by_key(&[Value::str("mehl")]).unwrap();
        assert!((mehl.membership().sn() - 5.0 / 6.0).abs() < 1e-9);
    }

    /// Table 5 via the query language.
    #[test]
    fn paper_table5_query() {
        let out = execute(
            &catalog(),
            "SELECT rname, phone, speciality, rating FROM ra",
        )
        .unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out.schema().arity(), 4);
    }

    #[test]
    fn join_query() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra JOIN rma ON RA.rname = RMA.rname WITH SN > 0",
        )
        .unwrap();
        // Both operands carry "rname", so the product qualifies the
        // clash with the schema names (RA.rname, RMA.rname). Matches:
        // wok-chen, mehl-rao, ashiana-rao.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn theta_query_on_ordered_domain() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra WHERE rating >= 'gd' WITH SN >= 0.8",
        )
        .unwrap();
        // garden 0.83, country 1.0, ashiana 1.0, mehl 1.0×(0.5)=0.5 no,
        // olive 0.5 no, wok 0.25 no.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn bare_with_clause_filters_membership() {
        let out = execute(&catalog(), "SELECT * FROM ra WITH SN >= 0.9").unwrap();
        // Only mehl has sn < 0.9 in R_A.
        assert_eq!(out.len(), 5);
        assert!(out.get_by_key(&[Value::str("mehl")]).is_none());
    }

    #[test]
    fn union_then_where_composes() {
        let out = execute(
            &catalog(),
            "SELECT rname, rating FROM ra UNION rb WHERE rating IS {ex} WITH SN >= 0.8",
        )
        .unwrap();
        // After union: country ex^1, ashiana ex^1, mehl ex^1 (0.83
        // membership → 0.83 ≥ 0.8 ✓), garden ex^0.143 ✗, wok gd ✗,
        // olive ✗.
        assert_eq!(out.len(), 3);
        assert!(out.contains_key(&[Value::str("mehl")]));
    }

    #[test]
    fn unknown_relation_reported() {
        assert!(matches!(
            execute(&catalog(), "SELECT * FROM nope"),
            Err(QueryError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn projection_must_keep_keys() {
        assert!(matches!(
            execute(&catalog(), "SELECT phone FROM ra"),
            Err(QueryError::Algebra(
                evirel_algebra::AlgebraError::ProjectionMissingKey { .. }
            ))
        ));
    }

    #[test]
    fn definite_threshold_query() {
        let out = execute(
            &catalog(),
            "SELECT * FROM ra WHERE speciality IS {si} WITH SN = 1",
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_key(&[Value::str("wok")]));
    }
}
