//! Differential properties for the cost-ordered chain operator: for
//! random three-way join chains, streaming execution (which lowers
//! them through `ChainOp` whenever statistics are enabled) must
//! reproduce the naive free-function composition **bit for bit** —
//! same tuples, same insertion order (the left-deep emission order),
//! same `(sn, sp)` — at parallelism 1 and 4 alike. The CI matrix runs
//! this suite both with statistics on (chain engaged) and under
//! `EVIREL_NO_STATS=1` (left-deep lowering), pinning the two paths to
//! the same oracle.

use evirel_algebra::union::UnionOptions;
use evirel_algebra::{Operand, Predicate, ThetaOp, Threshold};
use evirel_plan::reference::execute_reference;
use evirel_plan::{
    execute_plan, explain_plan, scan, stats_enabled, Bindings, ExecContext, LogicalPlan,
};
use evirel_relation::{AttrDomain, ExtendedRelation, RelationBuilder, Schema, ValueKind};
use proptest::prelude::*;
use std::sync::Arc;

/// A relation with a string key, an integer join attribute `j{name}`
/// drawn from `0..spread` (smaller spread ⇒ more matches, more skew),
/// and one evidential attribute so membership multiplication is
/// exercised through the chain.
fn relation(name: &str, tuples: usize, spread: u64, seed: u64) -> ExtendedRelation {
    let domain = Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap());
    let join_attr = format!("j{name}");
    let schema = Arc::new(
        Schema::builder(name)
            .key_str(format!("k{name}"))
            .definite(&*join_attr, ValueKind::Int)
            .evidential("d", domain)
            .build()
            .unwrap(),
    );
    let mut builder = RelationBuilder::new(schema);
    for i in 0..tuples as u64 {
        let label = ["x", "y", "z"][((seed + i) % 3) as usize];
        let weight = 0.35 + 0.05 * ((seed + i) % 13) as f64;
        builder = builder
            .tuple(|t| {
                t.set_str(&format!("k{name}"), format!("{name}-{i}"))
                    .set_int(
                        &join_attr,
                        ((seed.wrapping_mul(31) + i * 7) % spread) as i64,
                    )
                    .set_evidence_with_omega("d", [(&[label][..], weight)], 1.0 - weight)
                    .membership_pair(0.4 + 0.1 * ((seed + i) % 7) as f64, 1.0)
            })
            .unwrap();
    }
    builder.build()
}

/// `a ⋈ b ⋈ c` on the integer join attributes — a left-deep spine of
/// three inputs joined by cross-input definite equality conjuncts,
/// the exact shape `ChainOp` targets.
fn chain_plan(th: u8) -> LogicalPlan {
    let threshold = match th {
        0 => Threshold::POSITIVE,
        1 => Threshold::SnAtLeast(0.2),
        _ => Threshold::SpAtLeastPositive(0.5),
    };
    scan("a")
        .join_where(
            scan("b"),
            Predicate::theta(Operand::attr("ja"), ThetaOp::Eq, Operand::attr("jb")),
            threshold,
        )
        .join_where(
            scan("c"),
            Predicate::theta(Operand::attr("jb"), ThetaOp::Eq, Operand::attr("jc")),
            threshold,
        )
        .build()
}

fn bind(seed: u64, sizes: (usize, usize, usize), spread: u64) -> Bindings {
    let mut b = Bindings::new();
    b.bind("a", relation("a", sizes.0, spread, seed))
        .bind("b", relation("b", sizes.1, spread, seed.wrapping_add(1)))
        .bind("c", relation("c", sizes.2, spread, seed.wrapping_add(2)));
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chain execution ≡ naive composition, including insertion
    /// order, at 1 and 4 threads; sequential and parallel contexts
    /// must also agree on stats.
    #[test]
    fn chain_matches_reference_bit_for_bit(
        seed in 0u64..1_000_000,
        na in 2usize..14,
        nb in 2usize..14,
        nc in 2usize..14,
        spread in 1u64..8,
        th in 0u8..3,
    ) {
        let bindings = bind(seed, (na, nb, nc), spread);
        let plan = chain_plan(th);
        let options = UnionOptions::default();
        let (naive, _) =
            execute_reference(&plan, &bindings, &options).expect("reference succeeds");

        let mut seq_ctx = ExecContext::with_options(options.clone());
        seq_ctx.parallelism = 1;
        let seq = execute_plan(&plan, &bindings, &mut seq_ctx).expect("sequential succeeds");
        let mut par_ctx = ExecContext::with_options(options);
        par_ctx.parallelism = 4;
        let par = execute_plan(&plan, &bindings, &mut par_ctx).expect("parallel succeeds");

        for (label, streamed) in [("sequential", &seq), ("parallel", &par)] {
            prop_assert_eq!(
                naive.len(), streamed.len(),
                "{} size diverged\nplan:\n{}", label, plan.render()
            );
            // Bit-exact, in the naive (= left-deep) emission order.
            for (nt, st) in naive.iter().zip(streamed.iter()) {
                prop_assert_eq!(
                    nt.values(), st.values(),
                    "{} values diverged\nplan:\n{}", label, plan.render()
                );
                prop_assert!(
                    nt.membership().sn().to_bits() == st.membership().sn().to_bits()
                        && nt.membership().sp().to_bits() == st.membership().sp().to_bits(),
                    "{} membership diverged: ({}, {}) vs ({}, {})\nplan:\n{}",
                    label,
                    nt.membership().sn(), nt.membership().sp(),
                    st.membership().sn(), st.membership().sp(),
                    plan.render()
                );
            }
        }
        prop_assert_eq!(seq_ctx.stats, par_ctx.stats);
    }
}

/// The planner actually engages the chain (and renders its chosen
/// order) for a three-way equality chain when statistics are on, and
/// never under `EVIREL_NO_STATS=1`.
#[test]
fn explain_shows_chain_when_stats_enabled() {
    let bindings = bind(7, (12, 8, 3), 4);
    let plan = chain_plan(0);
    let text = explain_plan(&plan, &bindings, &UnionOptions::default()).unwrap();
    if stats_enabled() {
        assert!(text.contains("⋈̃ chain (3 inputs"), "{text}");
        assert!(text.contains("cost-ordered:"), "{text}");
    } else {
        assert!(!text.contains("⋈̃ chain"), "{text}");
        assert!(text.contains("hash"), "{text}");
    }
}
