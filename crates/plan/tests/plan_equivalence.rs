//! Differential property suite: for random generated relations and
//! random plans, optimized + streaming execution must produce a
//! relation identical to naive free-function composition — same
//! schema, same key set, attribute values approximately equal, and
//! `(sn, sp)` within 1e-12.
//!
//! Total conflicts resolve vacuously here: the σ̃-under-∪̃
//! distribution rule deliberately merges only entities that survive a
//! key-crisp filter, so under `ConflictPolicy::Error` the naive path
//! can abort on an entity the optimized path never merges. The
//! *relation* outputs are identical whenever both paths succeed,
//! which is the property under test.

use evirel_algebra::union::UnionOptions;
use evirel_algebra::{ConflictPolicy, Operand, Predicate, ThetaOp, Threshold};
use evirel_plan::reference::execute_reference;
use evirel_plan::{execute_plan, scan, Bindings, ExecContext, LogicalPlan, PlanBuilder};
use evirel_relation::{ExtendedRelation, Value};
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use proptest::prelude::*;

fn bindings(seed: u64, tuples: usize) -> Bindings {
    let (ga, gb) = generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples,
            seed,
            ..Default::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.3,
    })
    .expect("generator config is valid");
    let mut b = Bindings::new();
    b.bind("ga", ga).bind("gb", gb);
    b
}

/// `(sn, sp)` within 1e-12, attribute values within the model's
/// tolerance, same key sets and schema attribute names.
fn equivalent(naive: &ExtendedRelation, streaming: &ExtendedRelation) -> Result<(), String> {
    let nn: Vec<&str> = naive.schema().attrs().iter().map(|a| a.name()).collect();
    let sn: Vec<&str> = streaming
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name())
        .collect();
    if nn != sn {
        return Err(format!("schemas differ: {nn:?} vs {sn:?}"));
    }
    if naive.len() != streaming.len() {
        return Err(format!(
            "sizes differ: {} vs {}",
            naive.len(),
            streaming.len()
        ));
    }
    for (key, nt) in naive.iter_keyed() {
        let st = streaming.get_by_key(&key).ok_or_else(|| {
            format!(
                "key {} missing from streaming result",
                Value::render_key(&key)
            )
        })?;
        let (nm, sm) = (nt.membership(), st.membership());
        if (nm.sn() - sm.sn()).abs() > 1e-12 || (nm.sp() - sm.sp()).abs() > 1e-12 {
            return Err(format!(
                "membership differs at {}: ({}, {}) vs ({}, {})",
                Value::render_key(&key),
                nm.sn(),
                nm.sp(),
                sm.sn(),
                sm.sp()
            ));
        }
        for (pos, (nv, sv)) in nt.values().iter().zip(st.values().iter()).enumerate() {
            if !nv.approx_eq(sv) {
                return Err(format!(
                    "value differs at {} position {pos}",
                    Value::render_key(&key)
                ));
            }
        }
    }
    Ok(())
}

/// Build one random plan from the drawn shape parameters. `qualified`
/// sources (×̃/⋈̃ of GA and GB, which share every attribute name) need
/// `GA.`-prefixed references.
fn random_plan(source: u8, pred_kind: u8, attr_i: u8, val: u8, th: u8, proj: u8) -> LogicalPlan {
    let qualified = source >= 3;
    let q = |name: &str| {
        if qualified {
            format!("GA.{name}")
        } else {
            name.to_owned()
        }
    };
    let builder: PlanBuilder = match source {
        0 => scan("ga"),
        1 => scan("gb"),
        2 => scan("ga").union(scan("gb")),
        3 => scan("ga").product(scan("gb")),
        _ => scan("ga").join(
            scan("gb"),
            Predicate::theta(Operand::attr("GA.k"), ThetaOp::Eq, Operand::attr("GB.k")),
        ),
    };
    let evidential = q(&format!("e{}", attr_i % 3));
    let label = |i: u8| Value::str(format!("v{}", i % 8));
    let predicate = match pred_kind {
        0 => None,
        1 => Some(Predicate::is(
            evidential.clone(),
            [label(val), label(val + 1)],
        )),
        2 => Some(Predicate::theta(
            Operand::attr(evidential.clone()),
            ThetaOp::Ge,
            Operand::Value(label(val)),
        )),
        // Key-crisp — exercises σ̃-under-∪̃ distribution on source 2.
        3 => Some(Predicate::theta(
            Operand::attr(q("k")),
            ThetaOp::Eq,
            Operand::Value(Value::str("shared-1")),
        )),
        _ => Some(
            Predicate::is(evidential.clone(), [label(val)]).and(Predicate::theta(
                Operand::attr(q("k")),
                ThetaOp::Ne,
                Operand::Value(Value::str("shared-0")),
            )),
        ),
    };
    let builder = match predicate {
        Some(p) => builder.select(p),
        None => builder,
    };
    let builder = match th {
        0 => builder,
        1 => builder.threshold(Threshold::SnAtLeast(0.3)),
        2 => builder.threshold(Threshold::SpAtLeastPositive(0.5)),
        _ => builder.threshold(Threshold::POSITIVE),
    };
    match proj {
        0 => builder,
        1 if qualified => builder.project(["GA.k", "GB.k"]),
        1 => builder.project(["k", "e0"]),
        _ if qualified => builder.project(["GB.e1", "GA.k", "GB.k", "GA.e0"]),
        _ => builder.project(["e2", "k", "e0"]),
    }
    .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_matches_naive_composition(
        seed in 0u64..1_000_000,
        source in 0u8..5,
        pred_kind in 0u8..5,
        attr_val in 0u8..24, // attr index × predicate value, combined
        th in 0u8..4,
        proj in 0u8..3,
    ) {
        let bindings = bindings(seed, 24);
        let plan = random_plan(source, pred_kind, attr_val / 8, attr_val % 8, th, proj);
        let options = UnionOptions {
            on_total_conflict: ConflictPolicy::Vacuous,
            ..Default::default()
        };
        let naive = execute_reference(&plan, &bindings, &options);
        let mut ctx = ExecContext::with_options(options);
        let streaming = execute_plan(&plan, &bindings, &mut ctx);
        match (naive, streaming) {
            (Ok((n, _)), Ok(s)) => {
                if let Err(reason) = equivalent(&n, &s) {
                    prop_assert!(false, "{reason}\nplan:\n{}", plan.render());
                }
            }
            (Err(ne), Err(se)) => {
                // Both paths reject the plan — must be the same error.
                prop_assert_eq!(ne, se);
            }
            (n, s) => {
                prop_assert!(
                    false,
                    "one path failed: naive={:?} streaming={:?}\nplan:\n{}",
                    n.as_ref().map(|_| "ok"),
                    s.as_ref().map(|_| "ok"),
                    plan.render()
                );
            }
        }
    }

    /// Parallel execution through the exchange operator must be
    /// identical to sequential streaming — relation, tuple insertion
    /// order, stats (κ included), and conflict-report observation
    /// order — and its relation/report must match the naive reference
    /// too. Sources 0–2 exercise the shardable (∪̃) exchange; sources
    /// 3–4 the ×̃/⋈̃ lowerings, where the equality join engages the
    /// join-attribute-partitioned exchange when statistics are on.
    #[test]
    fn parallel_exchange_matches_sequential_and_reference(
        seed in 0u64..1_000_000,
        source in 0u8..5,
        pred_threads in 0u8..15, // predicate kind × thread count, combined
        attr_val in 0u8..24,
        th in 0u8..4,
        proj in 0u8..3,
    ) {
        let pred_kind = pred_threads % 5;
        let threads = [2usize, 4, 8][usize::from(pred_threads / 5)];
        let bindings = bindings(seed, 280);
        let plan = random_plan(source, pred_kind, attr_val / 8, attr_val % 8, th, proj);
        let options = UnionOptions {
            on_total_conflict: ConflictPolicy::Vacuous,
            ..Default::default()
        };

        let mut seq_ctx = ExecContext::with_options(options.clone());
        seq_ctx.parallelism = 1;
        let seq = execute_plan(&plan, &bindings, &mut seq_ctx);
        let mut par_ctx = ExecContext::with_options(options.clone());
        par_ctx.parallelism = threads;
        let par = execute_plan(&plan, &bindings, &mut par_ctx);

        match (seq, par) {
            (Ok(s), Ok(p)) => {
                if let Err(reason) = equivalent(&s, &p) {
                    prop_assert!(false, "{reason}\nplan:\n{}", plan.render());
                }
                for (st, pt) in s.iter().zip(p.iter()) {
                    prop_assert_eq!(
                        st.key(s.schema()), pt.key(p.schema()),
                        "insertion order diverged at {} threads\nplan:\n{}",
                        threads, plan.render()
                    );
                }
                prop_assert_eq!(seq_ctx.stats, par_ctx.stats);
                prop_assert_eq!(
                    seq_ctx.conflict_report().conflicts(),
                    par_ctx.conflict_report().conflicts()
                );
                // And the relation agrees with the independent oracle
                // (reports are only comparable between the two
                // streaming paths: σ̃-under-∪̃ distribution means the
                // naive path merges — and so observes conflicts on —
                // entities the optimized plans never pair, as the
                // module comment explains).
                let (naive, _) =
                    execute_reference(&plan, &bindings, &options).expect("reference succeeds");
                if let Err(reason) = equivalent(&naive, &p) {
                    prop_assert!(false, "vs reference: {reason}\nplan:\n{}", plan.render());
                }
            }
            (Err(se), Err(pe)) => prop_assert_eq!(se, pe),
            (s, p) => {
                prop_assert!(
                    false,
                    "one path failed: sequential={:?} parallel={:?}\nplan:\n{}",
                    s.as_ref().map(|_| "ok"),
                    p.as_ref().map(|_| "ok"),
                    plan.render()
                );
            }
        }
    }
}
