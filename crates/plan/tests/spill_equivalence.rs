//! The storage engine's acceptance property: a relation larger than
//! the configured buffer budget (verified via pool stats — pages
//! evicted > 0) scans, filters, and ∪̃-merges through the plan layer
//! with results identical to the in-memory executor, proptest-checked
//! against `plan::reference`. Also pins the spilled-build-side path:
//! forcing every merge's right side to a temp segment
//! (`spill_threshold_bytes = 0`) must not change a single bit of the
//! output, the stats, or the conflict-report order.

use evirel_algebra::union::UnionOptions;
use evirel_algebra::{ConflictPolicy, Predicate, Threshold};
use evirel_plan::reference::execute_reference;
use evirel_plan::{
    execute_plan, scan, Bindings, BufferPool, ExecContext, LogicalPlan, StoredRelation,
};
use evirel_relation::{ExtendedRelation, Value};
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use proptest::prelude::*;
use std::sync::Arc;

const PAGE: usize = 512;

fn pair(seed: u64, tuples: usize) -> (ExtendedRelation, ExtendedRelation) {
    generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples,
            seed,
            ..Default::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.3,
    })
    .expect("generator config is valid")
}

/// Write a relation to a temp segment and open it against `pool`.
fn store(rel: &ExtendedRelation, pool: &Arc<BufferPool>) -> Arc<StoredRelation> {
    let path = evirel_store::spill_path("equiv");
    evirel_store::write_segment(rel, &path, PAGE).expect("segment writes");
    let stored = StoredRelation::open(&path, Arc::clone(pool)).expect("segment opens");
    std::fs::remove_file(&path).ok();
    Arc::new(stored)
}

fn options() -> UnionOptions {
    UnionOptions {
        on_total_conflict: ConflictPolicy::Vacuous,
        ..Default::default()
    }
}

/// Same schema names, same size, per-key bit-identical membership and
/// approx-equal values (the reference composes the same float ops, so
/// equality is in fact exact; approx on values covers the documented
/// model tolerance).
fn equivalent(expected: &ExtendedRelation, got: &ExtendedRelation) -> Result<(), String> {
    if expected.len() != got.len() {
        return Err(format!("sizes differ: {} vs {}", expected.len(), got.len()));
    }
    for (key, e) in expected.iter_keyed() {
        let g = got
            .get_by_key(&key)
            .ok_or_else(|| format!("missing key {}", Value::render_key(&key)))?;
        if (e.membership().sn() - g.membership().sn()).abs() > 1e-12
            || (e.membership().sp() - g.membership().sp()).abs() > 1e-12
        {
            return Err(format!("membership differs at {}", Value::render_key(&key)));
        }
        for (pos, (ev, gv)) in e.values().iter().zip(g.values().iter()).enumerate() {
            if !ev.approx_eq(gv) {
                return Err(format!(
                    "value differs at {} position {pos}",
                    Value::render_key(&key)
                ));
            }
        }
    }
    Ok(())
}

/// One plan shape per drawn discriminant: scan, filter, threshold,
/// project, ∪̃, σ̃(∪̃), ∩̃, −̃.
fn shaped_plan(shape: u8, val: u8) -> LogicalPlan {
    let label = |i: u8| Value::str(format!("v{}", i % 8));
    match shape % 8 {
        0 => scan("sa").build(),
        1 => scan("sa")
            .select(Predicate::is("e0", [label(val), label(val + 1)]))
            .build(),
        2 => scan("sa").threshold(Threshold::SnAtLeast(0.3)).build(),
        3 => scan("sa").project(["k", "e1"]).build(),
        4 => scan("sa").union(scan("sb")).build(),
        5 => scan("sa")
            .union(scan("sb"))
            .select(Predicate::is("e0", [label(val)]))
            .project(["k", "e0"])
            .build(),
        6 => scan("sa").intersect(scan("sb")).build(),
        _ => scan("sa").difference(scan("sb")).build(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE acceptance property: stored relations bigger than the pool
    /// budget, streamed through scans/filters/merges, reproduce the
    /// in-memory reference — and the pool really evicted.
    #[test]
    fn stored_execution_matches_reference_under_tiny_budget(
        seed in 0u64..1_000_000,
        shape in 0u8..8,
        val in 0u8..8,
    ) {
        let (ga, gb) = pair(seed, 120);
        // ~3 pages of budget; each relation spans dozens of pages.
        let pool = Arc::new(BufferPool::new(3 * PAGE));
        let sa = store(&ga, &pool);
        let sb = store(&gb, &pool);
        prop_assert!(sa.segment().page_count() * PAGE as u64 > pool.budget_bytes() as u64,
            "relation must outgrow the buffer budget");

        let mut stored_bindings = Bindings::new();
        stored_bindings.bind_stored("sa", Arc::clone(&sa));
        stored_bindings.bind_stored("sb", Arc::clone(&sb));
        let mut mem_bindings = Bindings::new();
        mem_bindings.bind("sa", ga);
        mem_bindings.bind("sb", gb);

        let plan = shaped_plan(shape, val);
        // Rename scans in the in-memory plan? Not needed: names match.
        let (reference, _) = execute_reference(&plan, &mem_bindings, &options())
            .expect("reference executes");

        let mut ctx = ExecContext::with_options(options());
        ctx.parallelism = 1;
        let streamed = execute_plan(&plan, &stored_bindings, &mut ctx)
            .expect("stored execution succeeds");

        if let Err(reason) = equivalent(&reference, &streamed) {
            prop_assert!(false, "{reason}\nplan:\n{}", plan.render());
        }
        // Insertion order must equal the in-memory streaming order too.
        let mut mem_ctx = ExecContext::with_options(options());
        mem_ctx.parallelism = 1;
        let mem = execute_plan(&plan, &mem_bindings, &mut mem_ctx).expect("in-memory executes");
        for (m, s) in mem.iter().zip(streamed.iter()) {
            prop_assert_eq!(m.key(mem.schema()), s.key(streamed.schema()));
        }
        prop_assert_eq!(mem_ctx.stats, ctx.stats, "stats diverged");
        let stats = pool.stats();
        prop_assert!(stats.evictions > 0, "budget never forced an eviction: {stats:?}");
    }

    /// Forcing the merge build side to spill (threshold 0) is
    /// invisible: relation, insertion order, stats, and report order
    /// all match the in-memory build side.
    #[test]
    fn spilled_build_side_is_bit_invisible(
        seed in 0u64..1_000_000,
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let (ga, gb) = pair(seed, 160);
        let mut b = Bindings::new();
        b.bind("sa", ga).bind("sb", gb);
        let plan = scan("sa").union(scan("sb")).build();

        let mut mem_ctx = ExecContext::with_options(options());
        mem_ctx.parallelism = threads;
        mem_ctx.spill_threshold_bytes = usize::MAX; // never spill
        let mem = execute_plan(&plan, &b, &mut mem_ctx).expect("in-memory merge");

        let mut spill_ctx = ExecContext::with_options(options());
        spill_ctx.parallelism = threads;
        spill_ctx.spill_threshold_bytes = 0; // always spill
        spill_ctx.pool = Arc::new(BufferPool::new(2 * evirel_store::DEFAULT_PAGE_SIZE));
        let spilled = execute_plan(&plan, &b, &mut spill_ctx).expect("spilled merge");

        if let Err(reason) = equivalent(&mem, &spilled) {
            prop_assert!(false, "{reason} (threads={threads})");
        }
        for (m, s) in mem.iter().zip(spilled.iter()) {
            prop_assert_eq!(m.key(mem.schema()), s.key(spilled.schema()));
        }
        prop_assert_eq!(mem_ctx.stats, spill_ctx.stats);
        prop_assert_eq!(
            mem_ctx.conflict_report().conflicts(),
            spill_ctx.conflict_report().conflicts()
        );
    }
}

/// The stored-scan merge builds its key index straight off the
/// on-disk segment (one pass, no re-spill), and a query over stored
/// relations still surfaces its ∪̃ conflict report.
#[test]
fn stored_merge_indexes_segment_directly() {
    let (ga, gb) = pair(7, 300);
    let pool = Arc::new(BufferPool::new(4 * PAGE));
    let sa = store(&ga, &pool);
    let sb = store(&gb, &pool);
    let mut bindings = Bindings::new();
    bindings.bind_stored("sa", sa);
    bindings.bind_stored("sb", sb);

    let plan = scan("sa").union(scan("sb")).build();
    let mut ctx = ExecContext::with_options(options());
    ctx.parallelism = 1;
    let misses_before = pool.stats().misses;
    let out = execute_plan(&plan, &bindings, &mut ctx).unwrap();

    let mut mem_bindings = Bindings::new();
    mem_bindings.bind("sa", ga);
    mem_bindings.bind("sb", gb);
    let mut mem_ctx = ExecContext::with_options(options());
    let mem = execute_plan(&plan, &mem_bindings, &mut mem_ctx).unwrap();

    assert!(mem.approx_eq(&out));
    assert_eq!(mem_ctx.stats, ctx.stats);
    assert!(
        !ctx.conflict_report().is_empty(),
        "κ reports must survive storage"
    );
    assert!(pool.stats().misses > misses_before);
    // EXPLAIN renders the stored scan with its page geometry.
    let text = evirel_plan::explain_plan(&plan, &bindings, &UnionOptions::default()).unwrap();
    assert!(text.contains("[stored:"), "{text}");
}
