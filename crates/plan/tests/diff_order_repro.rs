// Regression: (A ∪ B) − σ(C) with the filter below the difference's
// RIGHT subtree. A right key dropped at runtime no longer subtracts
// its left partner, so the emitted key set GROWS past the static
// order map — emit_domain must decline the exchange at the −̃ (the
// planner still exchanges the ∪̃ below it), keeping parallel output
// order sequential-exact.
use evirel_algebra::predicate::Predicate;
use evirel_plan::{execute_plan, explain_plan_with, scan, Bindings, ExecContext};
use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};

#[test]
fn difference_with_filtered_right_order() {
    let (ga, gb) = generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples: 600,
            seed: 3,
            ..Default::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.0,
    })
    .unwrap();
    let (gc, _) = generate_pair(&PairConfig {
        base: GeneratorConfig {
            tuples: 600,
            seed: 3,
            ..Default::default()
        },
        key_overlap: 0.5,
        conflict_bias: 0.0,
    })
    .unwrap();
    let mut b = Bindings::new();
    b.bind("ga", ga).bind("gb", gb).bind("gc", gc);
    let plan = scan("ga")
        .union(scan("gb"))
        .difference(scan("gc").select(Predicate::is("e0", ["v0"])))
        .build();
    let options = Default::default();
    let text = explain_plan_with(&plan, &b, &options, 4).unwrap();
    eprintln!("{text}");
    // The −̃ itself is not exchanged; its shardable ∪̃ subtree is.
    let diff_line = text.lines().position(|l| l.contains("physical:")).unwrap();
    let ex_line = text
        .lines()
        .position(|l| l.contains("⇄ exchange"))
        .expect("union subtree still exchanges");
    let minus_line = text
        .lines()
        .skip(diff_line)
        .position(|l| l.contains("−̃"))
        .unwrap()
        + diff_line;
    assert!(
        ex_line > minus_line,
        "exchange must sit below the −̃:\n{text}"
    );
    let mut seq_ctx = ExecContext::with_parallelism(1);
    let seq = execute_plan(&plan, &b, &mut seq_ctx).unwrap();
    let mut par_ctx = ExecContext::with_parallelism(4);
    let par = execute_plan(&plan, &b, &mut par_ctx).unwrap();
    assert_eq!(seq.len(), par.len(), "content diverged");
    for (i, (s, p)) in seq.iter().zip(par.iter()).enumerate() {
        assert_eq!(
            s.key(seq.schema()),
            p.key(par.schema()),
            "order diverged at tuple {i}"
        );
    }
}
