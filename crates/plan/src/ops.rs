//! Pull-based physical operators.
//!
//! Every operator implements [`Operator`] — `open` / `next` / `close`
//! over [`Tuple`]s — so composed queries stream tuple-at-a-time
//! instead of materializing an [`ExtendedRelation`] between every
//! algebra step. Stateful operators ([`MergeOp`], [`HashJoinOp`],
//! [`DifferenceOp`], [`ProductOp`]) build their key index or buffer
//! exactly once, at `open`, and stream probes against it.
//!
//! Side outputs do not vanish: conflict reports and κ statistics from
//! merging operators flow into the shared [`ExecContext`] instead of
//! being discarded with the intermediate relation (the ∪̃ report the
//! old `evirel-query` executor dropped).

use crate::error::PlanError;
use crate::spill::{index_stored, SpillBuild, SpilledRight};
use evirel_algebra::conflict::ConflictReport;
use evirel_algebra::predicate::Predicate;
use evirel_algebra::support::predicate_support;
use evirel_algebra::threshold::Threshold;
use evirel_algebra::union::{MergeScratch, UnionOptions};
use evirel_algebra::AlgebraError;
use evirel_relation::{ExtendedRelation, Schema, Tuple, Value};
use evirel_store::{BufferPool, StoredRelation};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Counters accumulated over one plan execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Tuples produced by scan leaves.
    pub tuples_scanned: usize,
    /// Tuples emitted by the plan root.
    pub tuples_emitted: usize,
    /// Matched pairs handed to a tuple merger.
    pub pairs_merged: usize,
    /// Attribute/membership conflicts observed while merging.
    pub conflicts: usize,
    /// Largest Dempster conflict mass κ observed (0.0 when none).
    pub max_kappa: f64,
}

/// Shared execution state: union options for ∪̃-family operators,
/// conflict reports collected from every merging operator, counters,
/// and the physical-planning parallelism knob.
#[derive(Debug)]
pub struct ExecContext {
    /// Options (conflict policy, combination rule, focal cap) used by
    /// [`DempsterMerger`].
    pub union_options: UnionOptions,
    /// Worker threads available to physical planning: subtrees whose
    /// operators pair tuples by key equality are wrapped in a
    /// [`crate::exchange::ExchangeOp`] over this many hash shards
    /// when the inputs are large enough. `1` (the default) keeps
    /// execution single-threaded. Defaults to the `EVIREL_THREADS`
    /// environment variable when set — see [`default_parallelism`].
    pub parallelism: usize,
    /// The buffer pool spilled merge build sides page through. One
    /// pool is shared by a whole execution — the exchange operator
    /// hands the same `Arc` to every worker context, so N workers
    /// page under one `EVIREL_BUFFER_BYTES` budget. (Stored-relation
    /// scans use the pool their [`StoredRelation`] was opened with.)
    pub pool: Arc<BufferPool>,
    /// A merge operator spills its right (build) side to a temp
    /// segment once the side's exact encoded size exceeds this many
    /// bytes. Defaults to the pool budget, so under a tiny
    /// `EVIREL_BUFFER_BYTES` every merge exercises the spill path.
    pub spill_threshold_bytes: usize,
    /// Execution counters.
    pub stats: ExecStats,
    reports: Vec<ConflictReport>,
}

impl Default for ExecContext {
    fn default() -> ExecContext {
        let pool = Arc::new(BufferPool::from_env());
        let spill_threshold_bytes = pool.budget_bytes();
        ExecContext {
            union_options: UnionOptions::default(),
            parallelism: default_parallelism(),
            pool,
            spill_threshold_bytes,
            stats: ExecStats::default(),
            reports: Vec::new(),
        }
    }
}

/// Largest worker-thread count `EVIREL_THREADS` accepts. Anything
/// above this is almost certainly a typo (and would oversubscribe any
/// real machine), so it is rejected like garbage input.
pub const MAX_PARALLELISM: usize = 1024;

/// The process-wide default for [`ExecContext::parallelism`]: the
/// `EVIREL_THREADS` environment variable when it parses to an integer
/// in `1..=1024`, else 1 (sequential). CI runs the whole suite under
/// `EVIREL_THREADS=4` to exercise the parallel paths.
///
/// An *invalid* value — garbage text, `0`, a negative number, or
/// anything above [`MAX_PARALLELISM`] — is rejected **loudly**: one
/// warning per process goes to stderr naming the value and the
/// accepted range, and execution falls back to sequential. Silently
/// treating `EVIREL_THREADS=O4` (a typo for `04`) as "1 thread" cost
/// real debugging time; never again.
pub fn default_parallelism() -> usize {
    let Ok(raw) = std::env::var("EVIREL_THREADS") else {
        return 1;
    };
    parse_parallelism(&raw).unwrap_or_else(|| {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "warning: ignoring invalid EVIREL_THREADS={raw:?}: expected an \
                 integer in 1..={MAX_PARALLELISM}; running sequentially (1 thread)"
            );
        });
        1
    })
}

/// Parse an `EVIREL_THREADS` value: `Some(n)` for an integer in
/// `1..=`[`MAX_PARALLELISM`], `None` for anything else (garbage,
/// `0`, negatives, absurd counts) — the invalid cases
/// [`default_parallelism`] warns about.
pub fn parse_parallelism(raw: &str) -> Option<usize> {
    raw.trim()
        .parse::<usize>()
        .ok()
        .filter(|n| (1..=MAX_PARALLELISM).contains(n))
}

impl ExecContext {
    /// A context with default union options.
    pub fn new() -> ExecContext {
        ExecContext::default()
    }

    /// A context with explicit parallelism.
    pub fn with_parallelism(parallelism: usize) -> ExecContext {
        ExecContext {
            parallelism: parallelism.max(1),
            ..ExecContext::default()
        }
    }

    /// A context with explicit union options.
    pub fn with_options(union_options: UnionOptions) -> ExecContext {
        ExecContext {
            union_options,
            ..ExecContext::default()
        }
    }

    /// Record one merging operator's conflict report.
    pub fn record_report(&mut self, report: ConflictReport) {
        self.stats.conflicts += report.len();
        self.stats.max_kappa = self.stats.max_kappa.max(report.max_kappa());
        self.reports.push(report);
    }

    /// Reports in operator-close order.
    pub fn reports(&self) -> &[ConflictReport] {
        &self.reports
    }

    /// All observations merged into a single report — the artifact for
    /// the data administrator.
    pub fn conflict_report(&self) -> ConflictReport {
        let mut merged = ConflictReport::new();
        for report in &self.reports {
            for c in report.conflicts() {
                merged.record(c.clone());
            }
        }
        merged
    }
}

/// A pull-based physical operator over extended tuples.
///
/// `Send` so an operator subtree can be handed to an exchange worker
/// thread ([`crate::exchange::ExchangeOp`]); all state is owned or
/// behind [`Arc`], so this costs implementors nothing.
pub trait Operator: Send {
    /// The schema of emitted tuples (available before `open`).
    fn schema(&self) -> &Arc<Schema>;
    /// Acquire resources; stateful operators build their index/buffer
    /// here.
    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError>;
    /// The next tuple, or `None` when exhausted. Tuples travel as
    /// [`Arc`] handles so pass-through operators (and the final
    /// materialization) never deep-copy attribute values.
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError>;
    /// Release resources and flush side outputs into `ctx`.
    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError>;
    /// One-line description for physical `EXPLAIN`.
    fn describe(&self) -> String;
    /// Direct inputs, for `EXPLAIN` tree rendering.
    fn children(&self) -> Vec<&dyn Operator>;
    /// The stored relation this operator scans directly, if it is a
    /// bare stored scan. [`MergeOp`] uses this to build its key index
    /// from the on-disk segment in one pass — the segment *is* the
    /// build side, with no materialized tuples and no re-spill.
    fn stored_relation(&self) -> Option<&Arc<StoredRelation>> {
        None
    }
    /// `(estimated rows, rows emitted so far)` when this node is
    /// wrapped by the `EXPLAIN`-analyze meter ([`MeteredOp`]); `None`
    /// for unmetered operators. [`render_physical`] appends the
    /// estimate/actual suffix when this returns `Some`.
    fn metered(&self) -> Option<(Option<u64>, u64)> {
        None
    }
}

/// Drive an operator to completion, materializing the result.
///
/// # Errors
/// Operator errors; insertion errors for duplicate keys.
pub fn run(op: &mut dyn Operator, ctx: &mut ExecContext) -> Result<ExtendedRelation, PlanError> {
    op.open(ctx)?;
    let mut out = ExtendedRelation::new(Arc::clone(op.schema()));
    while let Some(tuple) = op.next(ctx)? {
        ctx.stats.tuples_emitted += 1;
        out.insert_shared(tuple)?;
    }
    op.close(ctx)?;
    Ok(out)
}

/// Render a physical operator tree.
pub fn render_physical(op: &dyn Operator) -> String {
    fn walk(op: &dyn Operator, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&op.describe());
        if let Some((est, act)) = op.metered() {
            match est {
                Some(est) => out.push_str(&format!(" [est\u{2248}{est} act={act}]")),
                None => out.push_str(&format!(" [est=? act={act}]")),
            }
        }
        out.push('\n');
        for child in op.children() {
            walk(child, depth + 1, out);
        }
    }
    let mut out = String::new();
    walk(op, 0, &mut out);
    out
}

// --------------------------------------------------------------- meter

/// Transparent row counter for `EXPLAIN`-analyze: records how many
/// tuples the wrapped operator actually emitted next to the cost
/// model's pre-execution estimate. Delegates everything else —
/// including `children()` (so it adds no level to the rendered tree)
/// and `stored_relation()` (so [`MergeOp`]'s stored fast path still
/// fires through the meter).
pub struct MeteredOp {
    inner: Box<dyn Operator>,
    est: Option<u64>,
    emitted: u64,
}

impl MeteredOp {
    /// Wrap `inner`, tagging it with the cost model's row estimate
    /// (`None` when statistics were unavailable).
    pub fn new(inner: Box<dyn Operator>, est: Option<f64>) -> MeteredOp {
        MeteredOp {
            inner,
            est: est.map(|e| e.round().max(0.0) as u64),
            emitted: 0,
        }
    }
}

impl Operator for MeteredOp {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.inner.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        let tuple = self.inner.next(ctx)?;
        if tuple.is_some() {
            self.emitted += 1;
        }
        Ok(tuple)
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.inner.close(ctx)
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }

    fn children(&self) -> Vec<&dyn Operator> {
        self.inner.children()
    }

    fn stored_relation(&self) -> Option<&Arc<StoredRelation>> {
        self.inner.stored_relation()
    }

    fn metered(&self) -> Option<(Option<u64>, u64)> {
        Some((self.est, self.emitted))
    }
}

// ---------------------------------------------------------------- scan

/// Leaf: stream a bound relation's tuples in insertion order.
pub struct ScanOp {
    name: String,
    rel: Arc<ExtendedRelation>,
    pos: usize,
}

impl ScanOp {
    /// Scan `rel`, displayed as `name`.
    pub fn new(name: impl Into<String>, rel: Arc<ExtendedRelation>) -> ScanOp {
        ScanOp {
            name: name.into(),
            rel,
            pos: 0,
        }
    }
}

impl Operator for ScanOp {
    fn schema(&self) -> &Arc<Schema> {
        self.rel.schema()
    }

    fn open(&mut self, _ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        match self.rel.get_shared(self.pos) {
            Some(tuple) => {
                self.pos += 1;
                ctx.stats.tuples_scanned += 1;
                Ok(Some(tuple))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext) -> Result<(), PlanError> {
        Ok(())
    }

    fn describe(&self) -> String {
        format!("scan {} ({} tuples)", self.name, self.rel.len())
    }

    fn children(&self) -> Vec<&dyn Operator> {
        Vec::new()
    }
}

// -------------------------------------------------------------- select

/// Streaming σ̃: revise each tuple's membership by `F_SS` support and
/// keep it iff the threshold admits the revision. Preserves the input
/// schema (including its name — see the naming convention in
/// [`crate::logical`]).
pub struct SelectOp {
    child: Box<dyn Operator>,
    predicate: Predicate,
    threshold: Threshold,
}

impl SelectOp {
    /// Wrap `child` in a selection.
    ///
    /// # Errors
    /// [`AlgebraError::ThresholdNotPositive`] for thresholds that
    /// could admit `sn = 0`.
    pub fn new(
        child: Box<dyn Operator>,
        predicate: Predicate,
        threshold: Threshold,
    ) -> Result<SelectOp, PlanError> {
        check_threshold(&threshold)?;
        Ok(SelectOp {
            child,
            predicate,
            threshold,
        })
    }
}

/// Replace a shared tuple's membership, copying attribute values only
/// when the tuple is actually shared (copy-on-write).
fn with_membership_shared(
    tuple: Arc<Tuple>,
    membership: evirel_relation::SupportPair,
) -> Arc<Tuple> {
    Arc::new(match Arc::try_unwrap(tuple) {
        Ok(owned) => owned.with_membership_owned(membership),
        Err(shared) => shared.with_membership(membership),
    })
}

fn check_threshold(threshold: &Threshold) -> Result<(), PlanError> {
    if threshold.ensures_positive_support() {
        Ok(())
    } else {
        Err(PlanError::Algebra(AlgebraError::ThresholdNotPositive {
            threshold: threshold.to_string(),
        }))
    }
}

impl Operator for SelectOp {
    fn schema(&self) -> &Arc<Schema> {
        self.child.schema()
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        while let Some(tuple) = self.child.next(ctx)? {
            let fss = predicate_support(self.child.schema(), &tuple, &self.predicate)?;
            let revised = tuple.membership().and_independent(&fss);
            if self.threshold.admits(&revised) && revised.is_positive() {
                return Ok(Some(with_membership_shared(tuple, revised)));
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.child.close(ctx)
    }

    fn describe(&self) -> String {
        format!("σ̃[{}] with {}", self.predicate, self.threshold)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

// ----------------------------------------------------------- threshold

/// Streaming membership filter: admit tuples whose *stored* `(sn, sp)`
/// satisfies `Q` — the bare `WITH` clause.
pub struct ThresholdOp {
    child: Box<dyn Operator>,
    threshold: Threshold,
}

impl ThresholdOp {
    /// Wrap `child` in a membership filter.
    ///
    /// # Errors
    /// As [`SelectOp::new`].
    pub fn new(child: Box<dyn Operator>, threshold: Threshold) -> Result<ThresholdOp, PlanError> {
        check_threshold(&threshold)?;
        Ok(ThresholdOp { child, threshold })
    }
}

impl Operator for ThresholdOp {
    fn schema(&self) -> &Arc<Schema> {
        self.child.schema()
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        while let Some(tuple) = self.child.next(ctx)? {
            if self.threshold.admits(&tuple.membership()) {
                return Ok(Some(tuple));
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.child.close(ctx)
    }

    fn describe(&self) -> String {
        format!("σ̃[membership] with {}", self.threshold)
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

// ------------------------------------------------------------- project

/// Streaming π̃: reorder/drop attribute positions, membership carried
/// over unchanged.
pub struct ProjectOp {
    child: Box<dyn Operator>,
    positions: Vec<usize>,
    schema: Arc<Schema>,
}

impl ProjectOp {
    /// Project `child` onto `attrs` (keys must be kept).
    ///
    /// # Errors
    /// As the free function: duplicates, missing keys, unknown
    /// attributes.
    pub fn new(child: Box<dyn Operator>, attrs: &[String]) -> Result<ProjectOp, PlanError> {
        let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let positions = evirel_algebra::project::projection_positions(child.schema(), &names)?;
        let schema = Arc::new(evirel_algebra::project::projected_schema(
            child.schema(),
            &positions,
        )?);
        Ok(ProjectOp {
            child,
            positions,
            schema,
        })
    }
}

impl Operator for ProjectOp {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        while let Some(tuple) = self.child.next(ctx)? {
            if tuple.membership().is_positive() {
                return Ok(Some(Arc::new(tuple.project(&self.positions))));
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.child.close(ctx)
    }

    fn describe(&self) -> String {
        let names: Vec<&str> = self.schema.attrs().iter().map(|a| a.name()).collect();
        format!("π̃[{}]", names.join(", "))
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

// ------------------------------------------------------------- product

/// Streaming ×̃: buffer the right input once at `open`, stream the
/// left, emit concatenated pairs with multiplied memberships.
pub struct ProductOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    schema: Arc<Schema>,
    right_buf: Vec<Arc<Tuple>>,
    current_left: Option<Arc<Tuple>>,
    right_pos: usize,
}

impl ProductOp {
    /// Build the product of two operators.
    ///
    /// # Errors
    /// [`AlgebraError::AmbiguousAttribute`] when qualification cannot
    /// disambiguate the combined schema.
    pub fn new(left: Box<dyn Operator>, right: Box<dyn Operator>) -> Result<ProductOp, PlanError> {
        let schema = Arc::new(evirel_algebra::product::product_schema(
            left.schema(),
            right.schema(),
        )?);
        Ok(ProductOp {
            left,
            right,
            schema,
            right_buf: Vec::new(),
            current_left: None,
            right_pos: 0,
        })
    }
}

impl Operator for ProductOp {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.left.open(ctx)?;
        self.right.open(ctx)?;
        while let Some(tuple) = self.right.next(ctx)? {
            self.right_buf.push(tuple);
        }
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        loop {
            if let Some(l) = &self.current_left {
                while self.right_pos < self.right_buf.len() {
                    let r = &self.right_buf[self.right_pos];
                    self.right_pos += 1;
                    // F_TM: memberships of independent tuples multiply.
                    let membership = l.membership().and_independent(&r.membership());
                    if !membership.is_positive() {
                        continue; // CWA_ER: zero-support pairs are not stored.
                    }
                    let values = l.values().iter().chain(r.values()).cloned().collect();
                    return Ok(Some(Arc::new(Tuple::new(
                        &self.schema,
                        values,
                        membership,
                    )?)));
                }
                self.current_left = None;
            }
            match self.left.next(ctx)? {
                None => return Ok(None),
                Some(l) => {
                    self.current_left = Some(l);
                    self.right_pos = 0;
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.right_buf.clear();
        self.left.close(ctx)?;
        self.right.close(ctx)
    }

    fn describe(&self) -> String {
        "×̃ (buffer right, stream left)".to_owned()
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }
}

// ----------------------------------------------------------- hash join

/// Streaming ⋈̃ ≡ σ̃(×̃) fused: when the join predicate contains an
/// equality conjunct between *definite* attributes of opposite sides,
/// the right input is indexed by that attribute's value once at
/// `open` and each left tuple probes only its bucket. Sound because a
/// non-matching pair gives the equality conjunct support `(0, 0)`,
/// which zeroes the conjunction support and can never pass a legal
/// threshold. The full predicate is still evaluated on every probed
/// pair, so residual conjuncts and evidential conditions keep the
/// paper's exact support semantics.
pub struct HashJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    predicate: Predicate,
    threshold: Threshold,
    schema: Arc<Schema>,
    left_eq_pos: usize,
    right_eq_pos: usize,
    right_buf: Vec<Arc<Tuple>>,
    index: HashMap<Value, Vec<usize>>,
    current_left: Option<Arc<Tuple>>,
    matches: Vec<usize>,
    match_pos: usize,
}

impl HashJoinOp {
    /// The hashable equality conjunct of `predicate` over a product of
    /// `ls × rs`, as `(left position, right position)` — `None` when
    /// no conjunct qualifies (the caller falls back to σ̃ ∘ ×̃).
    pub fn indexable_conjunct(
        predicate: &Predicate,
        ls: &Schema,
        rs: &Schema,
        product: &Schema,
    ) -> Option<(usize, usize)> {
        use evirel_algebra::{Operand, ThetaOp};
        let l_arity = ls.arity();
        for conjunct in predicate.conjuncts() {
            let Predicate::Theta {
                left: Operand::Attr(a),
                op: ThetaOp::Eq,
                right: Operand::Attr(b),
            } = conjunct
            else {
                continue;
            };
            let (Ok(pa), Ok(pb)) = (product.position(a), product.position(b)) else {
                continue;
            };
            let (lp, rp) = if pa < l_arity && pb >= l_arity {
                (pa, pb - l_arity)
            } else if pb < l_arity && pa >= l_arity {
                (pb, pa - l_arity)
            } else {
                continue;
            };
            let definite = |attr: &evirel_relation::AttrDef| {
                matches!(attr.ty(), evirel_relation::AttrType::Definite(_))
            };
            if definite(ls.attr(lp)) && definite(rs.attr(rp)) {
                return Some((lp, rp));
            }
        }
        None
    }

    /// Build a hash join over the `(left_eq_pos, right_eq_pos)`
    /// equality found by [`HashJoinOp::indexable_conjunct`].
    ///
    /// # Errors
    /// Product-schema and threshold validation, as σ̃ ∘ ×̃.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        predicate: Predicate,
        threshold: Threshold,
        left_eq_pos: usize,
        right_eq_pos: usize,
    ) -> Result<HashJoinOp, PlanError> {
        check_threshold(&threshold)?;
        let schema = Arc::new(evirel_algebra::product::product_schema(
            left.schema(),
            right.schema(),
        )?);
        Ok(HashJoinOp {
            left,
            right,
            predicate,
            threshold,
            schema,
            left_eq_pos,
            right_eq_pos,
            right_buf: Vec::new(),
            index: HashMap::new(),
            current_left: None,
            matches: Vec::new(),
            match_pos: 0,
        })
    }
}

impl Operator for HashJoinOp {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.left.open(ctx)?;
        self.right.open(ctx)?;
        while let Some(tuple) = self.right.next(ctx)? {
            if let Some(v) = tuple.value(self.right_eq_pos).as_definite() {
                self.index
                    .entry(v.clone())
                    .or_default()
                    .push(self.right_buf.len());
            }
            self.right_buf.push(tuple);
        }
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        loop {
            if let Some(l) = &self.current_left {
                while self.match_pos < self.matches.len() {
                    let r = &self.right_buf[self.matches[self.match_pos]];
                    self.match_pos += 1;
                    let membership = l.membership().and_independent(&r.membership());
                    let values = l.values().iter().chain(r.values()).cloned().collect();
                    let pair = Tuple::new(&self.schema, values, membership)?;
                    let fss = predicate_support(&self.schema, &pair, &self.predicate)?;
                    let revised = pair.membership().and_independent(&fss);
                    if self.threshold.admits(&revised) && revised.is_positive() {
                        return Ok(Some(Arc::new(pair.with_membership_owned(revised))));
                    }
                }
                self.current_left = None;
            }
            match self.left.next(ctx)? {
                None => return Ok(None),
                Some(l) => {
                    // Reuse the probe buffer — no per-tuple allocation.
                    self.matches.clear();
                    if let Some(bucket) = l
                        .value(self.left_eq_pos)
                        .as_definite()
                        .and_then(|v| self.index.get(v))
                    {
                        self.matches.extend_from_slice(bucket);
                    }
                    self.match_pos = 0;
                    self.current_left = Some(l);
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.right_buf.clear();
        self.index.clear();
        self.left.close(ctx)?;
        self.right.close(ctx)
    }

    fn describe(&self) -> String {
        format!(
            "⋈̃[{}] with {} (hash {} = {})",
            self.predicate,
            self.threshold,
            self.left.schema().attr(self.left_eq_pos).name(),
            self.right.schema().attr(self.right_eq_pos).name(),
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }
}

// --------------------------------------------------------------- merge

/// How a matched tuple pair is combined by [`MergeOp`]. The ∪̃ family
/// uses [`DempsterMerger`]; the integration pipeline plugs in its
/// method-registry merger. `Send` so merge operators can run inside
/// exchange workers.
pub trait TupleMerger: Send {
    /// Merge one matched pair; `None` drops the pair (zero combined
    /// support), conflicts go into `report`. Takes `&mut self` so
    /// mergers can keep per-pass scratch state (e.g. the combination
    /// engine's memo table) across every pair of a merge.
    ///
    /// # Errors
    /// Merger-specific; total conflicts under a strict policy.
    fn merge(
        &mut self,
        schema: &Schema,
        key: &[Value],
        left: &Tuple,
        right: &Tuple,
        report: &mut ConflictReport,
    ) -> Result<Option<Tuple>, PlanError>;

    /// Short label for `EXPLAIN`.
    fn describe(&self) -> String {
        "dempster".to_owned()
    }
}

/// The paper's ∪̃ merge: Dempster's rule per common attribute, `F`
/// over Ψ for the membership pairs. Holds one [`MergeScratch`] for
/// its whole pass, so the combination engine's memo table is
/// allocated once per merge instead of once per Dempster call.
pub struct DempsterMerger {
    /// Conflict policy, combination rule, focal cap.
    pub options: UnionOptions,
    scratch: MergeScratch,
}

impl DempsterMerger {
    /// A merger with the given union options.
    pub fn new(options: UnionOptions) -> DempsterMerger {
        DempsterMerger {
            options,
            scratch: MergeScratch::new(),
        }
    }
}

impl TupleMerger for DempsterMerger {
    fn merge(
        &mut self,
        schema: &Schema,
        key: &[Value],
        left: &Tuple,
        right: &Tuple,
        report: &mut ConflictReport,
    ) -> Result<Option<Tuple>, PlanError> {
        evirel_algebra::union::merge_tuples_with(
            schema,
            key,
            left,
            right,
            &self.options,
            report,
            &mut self.scratch,
        )
        .map_err(PlanError::Algebra)
    }

    fn describe(&self) -> String {
        format!("dempster, on κ=1: {}", self.options.on_total_conflict)
    }
}

/// An explicit tuple pairing for [`MergeOp`] — produced by an entity
/// matcher when keys alone do not identify entities. Without one, the
/// operator pairs by key equality (∪̃'s semantics).
#[derive(Debug, Clone, Default)]
pub struct MergePairing {
    /// Left key → right key for matched pairs.
    pub matched: HashMap<Vec<Value>, Vec<Value>>,
    /// Left keys that pass through unmatched.
    pub left_only: HashSet<Vec<Value>>,
    /// Right keys that pass through unmatched.
    pub right_only: HashSet<Vec<Value>>,
}

/// Which unmatched tuples a [`MergeOp`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeEmit {
    /// ∪̃: merged pairs plus both sides' unmatched tuples.
    Union,
    /// ∩̃: merged pairs only.
    Intersect,
}

/// The merge operator's right (build) side: fully in memory, or
/// spilled to a temp segment with only a `key → record` index held.
enum BuildSide {
    /// In-memory index (the small-build-side fast path).
    Mem(HashMap<Vec<Value>, Arc<Tuple>>),
    /// Segment-backed index: probes pin one page through the buffer
    /// pool and decode one record.
    Spilled(SpilledRight),
}

impl BuildSide {
    fn contains(&self, key: &[Value]) -> bool {
        match self {
            BuildSide::Mem(m) => m.contains_key(key),
            BuildSide::Spilled(s) => s.contains(key),
        }
    }

    fn fetch(&self, key: &[Value]) -> Result<Option<Arc<Tuple>>, PlanError> {
        match self {
            BuildSide::Mem(m) => Ok(m.get(key).cloned()),
            BuildSide::Spilled(s) => Ok(s.fetch(key)?.map(Arc::new)),
        }
    }
}

/// Streaming binary merge: index the right input by key once at
/// `open`, stream the left input probing it, then emit unconsumed
/// right tuples. Serves ∪̃, ∩̃, and the integration pipeline's
/// method-registry merge; the conflict report flows into the
/// [`ExecContext`] at `close`.
///
/// The build side is spill-aware: while draining the right input the
/// operator tracks the exact encoded size of what it has buffered,
/// and past [`ExecContext::spill_threshold_bytes`] it migrates the
/// buffer into a temp segment, keeping only a `key → (page, slot)`
/// index in memory (probes page through [`ExecContext::pool`]). When
/// the right child is a bare stored scan the on-disk segment itself
/// becomes the build side: the key index is built in one pass over
/// its pages, with no materialized tuples and no re-spill.
pub struct MergeOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    merger: Box<dyn TupleMerger>,
    pairing: Option<Arc<MergePairing>>,
    emit: MergeEmit,
    schema: Arc<Schema>,
    build: BuildSide,
    right_order: Vec<Vec<Value>>,
    consumed: HashSet<Vec<Value>>,
    report: ConflictReport,
    right_pos: usize,
    left_done: bool,
    /// `true` once the build side went to disk (surfaced in stats).
    spilled: bool,
    /// Cost-model estimate of the build side as `(bytes, rows)`, from
    /// [`MergeOp::with_build_estimate`]. Picks the build *path* up
    /// front (eager spill vs pre-sized map) — never the results.
    build_estimate: Option<(u64, u64)>,
}

impl MergeOp {
    /// `left ∪̃ right` (key-equality pairing).
    ///
    /// # Errors
    /// Union-incompatible schemas.
    pub fn union(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        merger: Box<dyn TupleMerger>,
    ) -> Result<MergeOp, PlanError> {
        let name = format!("{}∪{}", left.schema().name(), right.schema().name());
        MergeOp::build(left, right, merger, None, MergeEmit::Union, name)
    }

    /// `left ∩̃ right` (key-equality pairing, matched merges only).
    ///
    /// # Errors
    /// Union-incompatible schemas.
    pub fn intersect(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        merger: Box<dyn TupleMerger>,
    ) -> Result<MergeOp, PlanError> {
        let name = format!("{}∩{}", left.schema().name(), right.schema().name());
        MergeOp::build(left, right, merger, None, MergeEmit::Intersect, name)
    }

    /// A union-style merge driven by an explicit [`MergePairing`] —
    /// the integration pipeline's merge stage. `name` becomes the
    /// output relation name.
    ///
    /// # Errors
    /// Union-incompatible schemas.
    pub fn with_pairing(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        merger: Box<dyn TupleMerger>,
        pairing: MergePairing,
        name: impl Into<String>,
    ) -> Result<MergeOp, PlanError> {
        MergeOp::with_shared_pairing(left, right, merger, Arc::new(pairing), name)
    }

    /// [`MergeOp::with_pairing`] over a shared pairing handle — the
    /// parallel merge stage builds one shard `MergeOp` per worker, and
    /// a pairing can hold an entry per input key, so per-shard deep
    /// copies would multiply its footprint by the thread count.
    ///
    /// # Errors
    /// Union-incompatible schemas.
    pub fn with_shared_pairing(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        merger: Box<dyn TupleMerger>,
        pairing: Arc<MergePairing>,
        name: impl Into<String>,
    ) -> Result<MergeOp, PlanError> {
        MergeOp::build(
            left,
            right,
            merger,
            Some(pairing),
            MergeEmit::Union,
            name.into(),
        )
    }

    fn build(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        merger: Box<dyn TupleMerger>,
        pairing: Option<Arc<MergePairing>>,
        emit: MergeEmit,
        name: String,
    ) -> Result<MergeOp, PlanError> {
        left.schema()
            .check_union_compatible(right.schema())
            .map_err(|e| PlanError::Algebra(AlgebraError::Relation(e)))?;
        let schema = Arc::new(left.schema().renamed(name));
        Ok(MergeOp {
            left,
            right,
            merger,
            pairing,
            emit,
            schema,
            build: BuildSide::Mem(HashMap::new()),
            right_order: Vec::new(),
            consumed: HashSet::new(),
            report: ConflictReport::new(),
            right_pos: 0,
            left_done: false,
            spilled: false,
            build_estimate: None,
        })
    }

    /// Attach a cost-model estimate of the build (right) side. An
    /// estimated footprint over the spill budget starts the build in a
    /// temp segment immediately (skipping the buffer-then-migrate
    /// copy); one under it pre-sizes the hash map. Either way the
    /// emitted tuples, their order, and the conflict report are
    /// identical — the estimate only picks which (proptest-pinned
    /// equivalent) build path runs.
    #[must_use]
    pub fn with_build_estimate(mut self, bytes: u64, rows: u64) -> MergeOp {
        self.build_estimate = Some((bytes, rows));
        self
    }

    /// `true` once the build side has been written to a temp segment
    /// (or indexed directly from a stored scan's segment).
    pub fn build_side_spilled(&self) -> bool {
        self.spilled
    }
}

impl Operator for MergeOp {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.left.open(ctx)?;
        self.right.open(ctx)?;
        // A bare stored scan on the right: its segment already *is*
        // the build side — index keys in one pass over its pages.
        if let Some(stored) = self.right.stored_relation() {
            let stored = Arc::clone(stored);
            let (spilled, order) = index_stored(&stored)?;
            // The pass scans every stored tuple exactly once, like
            // draining the scan would have — keep the counters
            // identical to in-memory execution.
            ctx.stats.tuples_scanned += stored.len();
            self.right_order = order;
            self.build = BuildSide::Spilled(spilled);
            self.spilled = true;
            return Ok(());
        }
        let right_schema = Arc::clone(self.right.schema());
        let mut mem: HashMap<Vec<Value>, Arc<Tuple>> = HashMap::new();
        let mut bytes = 0usize;
        let mut spill: Option<SpillBuild> = None;
        if let Some((est_bytes, est_rows)) = self.build_estimate {
            if est_bytes as usize > ctx.spill_threshold_bytes {
                spill = Some(SpillBuild::create(&right_schema)?);
            } else {
                // Cap the pre-size so a wild over-estimate cannot
                // balloon the empty map.
                mem.reserve(est_rows.min(1 << 20) as usize);
            }
        }
        while let Some(tuple) = self.right.next(ctx)? {
            let key = tuple.key(&right_schema);
            self.right_order.push(key.clone());
            match &mut spill {
                Some(build) => build.append(key, &tuple)?,
                None => {
                    bytes += evirel_store::codec::record_len(&tuple);
                    mem.insert(key, tuple);
                    if bytes > ctx.spill_threshold_bytes {
                        // The build side outgrew its budget: migrate
                        // the buffered tuples to a temp segment (in
                        // right insertion order) and keep indexing
                        // there.
                        let mut build = SpillBuild::create(&right_schema)?;
                        for key in &self.right_order {
                            if let Some(t) = mem.remove(key) {
                                build.append(key.clone(), &t)?;
                            }
                        }
                        spill = Some(build);
                    }
                }
            }
        }
        self.build = match spill {
            Some(build) => {
                self.spilled = true;
                BuildSide::Spilled(build.finish(&ctx.pool)?)
            }
            None => BuildSide::Mem(mem),
        };
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        // Phase 1: stream the left input; merged and left-only tuples
        // interleave in left insertion order (exactly like ∪̃'s free
        // function).
        while !self.left_done {
            let Some(l) = self.left.next(ctx)? else {
                self.left_done = true;
                break;
            };
            let key = l.key(self.left.schema());
            let right_key = match &self.pairing {
                Some(p) => p.matched.get(&key).cloned(),
                None => self.build.contains(&key).then(|| key.clone()),
            };
            match right_key {
                Some(rk) => {
                    let r = self.build.fetch(&rk)?.ok_or_else(|| PlanError::Pairing {
                        reason: format!("right key {} not found", Value::render_key(&rk)),
                    })?;
                    self.consumed.insert(rk);
                    ctx.stats.pairs_merged += 1;
                    if let Some(merged) =
                        self.merger
                            .merge(&self.schema, &key, &l, &r, &mut self.report)?
                    {
                        return Ok(Some(Arc::new(merged)));
                    }
                }
                None => {
                    let passes = match &self.pairing {
                        Some(p) => p.left_only.contains(&key),
                        None => true,
                    };
                    if self.emit == MergeEmit::Union && passes && l.membership().is_positive() {
                        return Ok(Some(l));
                    }
                }
            }
        }
        // Phase 2: unconsumed right tuples, in right insertion order.
        if self.emit == MergeEmit::Union {
            while self.right_pos < self.right_order.len() {
                let key = &self.right_order[self.right_pos];
                self.right_pos += 1;
                if self.consumed.contains(key) {
                    continue;
                }
                if let Some(p) = &self.pairing {
                    if !p.right_only.contains(key) {
                        continue;
                    }
                }
                let tuple = self.build.fetch(key)?.ok_or_else(|| PlanError::Pairing {
                    reason: format!("right key {} not indexed", Value::render_key(key)),
                })?;
                if tuple.membership().is_positive() {
                    return Ok(Some(tuple));
                }
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        ctx.record_report(std::mem::take(&mut self.report));
        self.build = BuildSide::Mem(HashMap::new());
        self.right_order.clear();
        self.left.close(ctx)?;
        self.right.close(ctx)
    }

    fn describe(&self) -> String {
        let symbol = match self.emit {
            MergeEmit::Union => "∪̃",
            MergeEmit::Intersect => "∩̃",
        };
        let pairing = match &self.pairing {
            Some(p) => format!("{} matched pairs", p.matched.len()),
            None => "key equality".to_owned(),
        };
        format!(
            "{symbol} (index right, stream left; pairing: {pairing}; merge: {})",
            self.merger.describe()
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }
}

// ---------------------------------------------------------- difference

/// Streaming −̃: index the right input's keys at `open`, emit left
/// tuples whose key is absent.
pub struct DifferenceOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    schema: Arc<Schema>,
    right_keys: HashSet<Vec<Value>>,
}

impl DifferenceOp {
    /// `left −̃ right`.
    ///
    /// # Errors
    /// Union-incompatible schemas.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
    ) -> Result<DifferenceOp, PlanError> {
        left.schema()
            .check_union_compatible(right.schema())
            .map_err(|e| PlanError::Algebra(AlgebraError::Relation(e)))?;
        let name = format!("{}−{}", left.schema().name(), right.schema().name());
        let schema = Arc::new(left.schema().renamed(name));
        Ok(DifferenceOp {
            left,
            right,
            schema,
            right_keys: HashSet::new(),
        })
    }
}

impl Operator for DifferenceOp {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.left.open(ctx)?;
        self.right.open(ctx)?;
        let right_schema = Arc::clone(self.right.schema());
        while let Some(tuple) = self.right.next(ctx)? {
            self.right_keys.insert(tuple.key(&right_schema));
        }
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        while let Some(tuple) = self.left.next(ctx)? {
            let key = tuple.key(self.left.schema());
            if !self.right_keys.contains(&key) && tuple.membership().is_positive() {
                return Ok(Some(tuple));
            }
        }
        Ok(None)
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.right_keys.clear();
        self.left.close(ctx)?;
        self.right.close(ctx)
    }

    fn describe(&self) -> String {
        "−̃ (index right keys, stream left)".to_owned()
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.left.as_ref(), self.right.as_ref()]
    }
}

// -------------------------------------------------------------- rename

/// ρ: revalidate tuples against a renamed schema (relation or
/// attribute names — values are positionally identical).
pub struct RenameOp {
    child: Box<dyn Operator>,
    schema: Arc<Schema>,
    label: String,
}

impl RenameOp {
    /// Rename the relation.
    pub fn relation(child: Box<dyn Operator>, name: &str) -> RenameOp {
        let schema = Arc::new(child.schema().renamed(name.to_owned()));
        RenameOp {
            child,
            schema,
            label: format!("ρ[{name}]"),
        }
    }

    /// Rename one attribute.
    ///
    /// # Errors
    /// Unknown `from`, clashing `to`.
    pub fn attribute(
        child: Box<dyn Operator>,
        from: &str,
        to: &str,
    ) -> Result<RenameOp, PlanError> {
        let schema = Arc::new(evirel_algebra::rename::attribute_renamed_schema(
            child.schema(),
            from,
            to,
        )?);
        Ok(RenameOp {
            child,
            schema,
            label: format!("ρ[{from}→{to}]"),
        })
    }
}

impl Operator for RenameOp {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        // Values are positionally identical and the renamed schema
        // preserves every attribute type, so tuples pass through.
        self.child.next(ctx)
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.child.close(ctx)
    }

    fn describe(&self) -> String {
        self.label.clone()
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![self.child.as_ref()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder};

    fn rel(name: &str, rows: &[(&str, &str, f64)]) -> Arc<ExtendedRelation> {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap());
        let schema = Arc::new(
            Schema::builder(name)
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        let mut b = RelationBuilder::new(schema);
        for (k, label, sn) in rows {
            b = b
                .tuple(|t| {
                    t.set_str("k", *k)
                        .set_evidence("d", [(&[*label][..], 1.0)])
                        .membership_pair(*sn, 1.0)
                })
                .unwrap();
        }
        Arc::new(b.build())
    }

    #[test]
    fn scan_select_project_stream() {
        let r = rel("R", &[("a", "x", 1.0), ("b", "y", 0.5), ("c", "x", 0.9)]);
        let mut ctx = ExecContext::new();
        let scan = Box::new(ScanOp::new("r", Arc::clone(&r)));
        let select =
            Box::new(SelectOp::new(scan, Predicate::is("d", ["x"]), Threshold::POSITIVE).unwrap());
        let mut project = ProjectOp::new(select, &["k".to_owned()]).unwrap();
        let out = run(&mut project, &mut ctx).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().arity(), 1);
        assert_eq!(ctx.stats.tuples_scanned, 3);
        assert_eq!(ctx.stats.tuples_emitted, 2);
        // Bad threshold rejected at build time.
        let scan = Box::new(ScanOp::new("r", r));
        assert!(matches!(
            SelectOp::new(scan, Predicate::is("d", ["x"]), Threshold::SnAtLeast(0.0)),
            Err(PlanError::Algebra(
                AlgebraError::ThresholdNotPositive { .. }
            ))
        ));
    }

    #[test]
    fn threshold_filters_stored_membership() {
        let r = rel("R", &[("a", "x", 1.0), ("b", "y", 0.5)]);
        let mut ctx = ExecContext::new();
        let scan = Box::new(ScanOp::new("r", r));
        let mut op = ThresholdOp::new(scan, Threshold::SnAtLeast(0.9)).unwrap();
        let out = run(&mut op, &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_key(&[Value::str("a")]));
    }

    #[test]
    fn union_merge_streams_and_reports() {
        let a = rel("A", &[("a", "x", 1.0), ("solo-a", "z", 1.0)]);
        let b = rel("B", &[("a", "y", 1.0), ("solo-b", "z", 1.0)]);
        let mut ctx = ExecContext::with_options(UnionOptions {
            on_total_conflict: evirel_algebra::ConflictPolicy::Vacuous,
            ..Default::default()
        });
        let merger = Box::new(DempsterMerger::new(ctx.union_options.clone()));
        let mut op = MergeOp::union(
            Box::new(ScanOp::new("a", Arc::clone(&a))),
            Box::new(ScanOp::new("b", Arc::clone(&b))),
            merger,
        )
        .unwrap();
        let out = run(&mut op, &mut ctx).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().name(), "A∪B");
        // x vs y is a total conflict, resolved vacuously and REPORTED
        // through the context (the report the old executor dropped).
        let report = ctx.conflict_report();
        assert_eq!(report.total_conflicts().count(), 1);
        assert_eq!(ctx.stats.pairs_merged, 1);
        assert!(ctx.stats.max_kappa >= 1.0);

        // Intersection keeps only the matched merge.
        let mut ctx2 = ExecContext::new();
        let merger = Box::new(DempsterMerger::new(UnionOptions {
            on_total_conflict: evirel_algebra::ConflictPolicy::Vacuous,
            ..Default::default()
        }));
        let mut op = MergeOp::intersect(
            Box::new(ScanOp::new("a", Arc::clone(&a))),
            Box::new(ScanOp::new("b", b)),
            merger,
        )
        .unwrap();
        let out = run(&mut op, &mut ctx2).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_key(&[Value::str("a")]));

        // Difference drops matched keys.
        let c = rel("C", &[("a", "x", 1.0)]);
        let mut op =
            DifferenceOp::new(Box::new(ScanOp::new("a", a)), Box::new(ScanOp::new("c", c)))
                .unwrap();
        let out = run(&mut op, &mut ExecContext::new()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains_key(&[Value::str("solo-a")]));
    }

    /// The accepted `EVIREL_THREADS` range is 1..=1024; garbage, 0,
    /// negatives, floats, and absurd counts are all invalid (and make
    /// `default_parallelism` warn once and run sequentially).
    #[test]
    fn parallelism_parsing_rejects_invalid_values() {
        assert_eq!(parse_parallelism("1"), Some(1));
        assert_eq!(parse_parallelism(" 4 "), Some(4));
        assert_eq!(parse_parallelism("1024"), Some(crate::MAX_PARALLELISM));
        for invalid in ["", "0", "-2", "4.0", "O4", "four", "1025", "9999999999"] {
            assert_eq!(parse_parallelism(invalid), None, "{invalid:?}");
        }
    }

    #[test]
    fn rename_ops() {
        let r = rel("R", &[("a", "x", 1.0)]);
        let op = Box::new(ScanOp::new("r", Arc::clone(&r)));
        let mut op = RenameOp::relation(op, "T");
        let out = run(&mut op, &mut ExecContext::new()).unwrap();
        assert_eq!(out.schema().name(), "T");
        let op = Box::new(ScanOp::new("r", r));
        let mut op = RenameOp::attribute(op, "d", "e").unwrap();
        let out = run(&mut op, &mut ExecContext::new()).unwrap();
        assert!(out.schema().position("e").is_ok());
    }
}
