//! Cost-ordered evaluation of ≥3-way ⋈̃/×̃ chains.
//!
//! The rewrite pass leaves multi-way joins as left-deep spines of
//! `σ̃(×̃)` / `⋈̃` nodes. Lowered naively, each level materializes the
//! full intermediate of everything below it — a bad join order pays
//! for the largest intermediate even when a later equality conjunct
//! would have discarded most of it. [`ChainOp`] flattens such a spine
//! into its inputs plus per-level predicates, explores candidate
//! combinations **cheapest-first** (statistics-ordered, probing hash
//! indexes on the definite equality conjuncts), and then re-evaluates
//! every surviving combination in the *original* left-deep order.
//!
//! That last step is what keeps the operator bit-for-bit identical to
//! sequential execution: `f64` support multiplication is not
//! associative, so survivors are recombined strictly left-to-right —
//! the exact sequence of [`SupportPair::and_independent`] calls the
//! left-deep operator tree would have issued — and emitted in
//! lexicographic order of their input insertion indices, which *is*
//! the left-deep emission order (products stream the left side and
//! replay the buffered right side per left tuple). The hash-equality
//! pruning is sound for the same reason [`crate::ops::HashJoinOp`]'s
//! is: a combination failing a top-level `=` conjunct gets predicate
//! support `(0, 0)`, which zeroes the revised membership and can
//! never pass a (positivity-ensuring) threshold.
//!
//! The operator only forms when statistics are enabled (see
//! [`crate::cost::stats_enabled`]); under `EVIREL_NO_STATS=1` the
//! planner lowers the spine left-deep exactly as before.

use crate::cost::{flatten_and, stats_enabled, CostModel};
use crate::error::PlanError;
use crate::logical::{LogicalPlan, RelationSource};
use crate::ops::{ExecContext, Operator};
use evirel_algebra::predicate::Predicate;
use evirel_algebra::support::predicate_support;
use evirel_algebra::threshold::Threshold;
use evirel_algebra::{Operand, ThetaOp};
use evirel_relation::{AttrType, Schema, SupportPair, Tuple, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One level of the flattened spine: joining input `j + 1` onto the
/// running prefix applies `predicate` (revising membership by its
/// support) and/or `threshold`; both `None` means a bare ×̃ level.
struct Level {
    predicate: Option<Predicate>,
    /// `None` for a bare product level (only the implicit
    /// positive-support check applies); `Some` for σ̃/⋈̃/membership
    /// filter levels.
    threshold: Option<Threshold>,
    /// Product schema of inputs `0..=j + 1` — what the level's
    /// predicate is evaluated against, and the schema of the tuples
    /// this level emits.
    schema: Arc<Schema>,
}

/// A definite `=` conjunct connecting two *different* inputs, in
/// input-local coordinates. Used both to prune the exploration (hash
/// index probes) and to pick a connected exploration order.
struct Edge {
    a_input: usize,
    a_pos: usize,
    b_input: usize,
    b_pos: usize,
}

impl Edge {
    /// The `(pos in `input`, pos in other, other input)` view of this
    /// edge from `input`'s side, or `None` if the edge does not touch
    /// `input`.
    fn from(&self, input: usize) -> Option<(usize, usize, usize)> {
        if self.a_input == input {
            Some((self.a_pos, self.b_pos, self.b_input))
        } else if self.b_input == input {
            Some((self.b_pos, self.a_pos, self.a_input))
        } else {
            None
        }
    }
}

/// Flattened spine: leaf plans (left to right) and the level applied
/// when each input past the first joins the prefix.
struct Spine<'p> {
    leaves: Vec<&'p LogicalPlan>,
    /// `levels[j]` = (predicate, threshold) applied when joining
    /// input `j + 1`.
    levels: Vec<(Option<&'p Predicate>, Option<Threshold>)>,
}

/// Decompose a left-deep ⋈̃/σ̃(×̃)/×̃ spine. Returns `None` for plans
/// that are not spine-shaped at the top.
fn flatten_spine(plan: &LogicalPlan) -> Option<Spine<'_>> {
    fn walk<'p>(plan: &'p LogicalPlan, spine: &mut Spine<'p>) {
        match plan {
            LogicalPlan::Select {
                input,
                predicate,
                threshold,
            } if matches!(**input, LogicalPlan::Product { .. }) => {
                let LogicalPlan::Product { left, right } = &**input else {
                    unreachable!("guarded by the match arm");
                };
                walk(left, spine);
                spine.leaves.push(right);
                spine.levels.push((Some(predicate), Some(*threshold)));
            }
            LogicalPlan::ThresholdFilter { input, threshold }
                if matches!(**input, LogicalPlan::Product { .. }) =>
            {
                let LogicalPlan::Product { left, right } = &**input else {
                    unreachable!("guarded by the match arm");
                };
                walk(left, spine);
                spine.leaves.push(right);
                spine.levels.push((None, Some(*threshold)));
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                threshold,
            } => {
                walk(left, spine);
                spine.leaves.push(right);
                spine.levels.push((Some(on), Some(*threshold)));
            }
            LogicalPlan::Product { left, right } => {
                walk(left, spine);
                spine.leaves.push(right);
                spine.levels.push((None, None));
            }
            other => spine.leaves.push(other),
        }
    }
    let mut spine = Spine {
        leaves: Vec::new(),
        levels: Vec::new(),
    };
    walk(plan, &mut spine);
    if spine.leaves.len() < 3 {
        return None;
    }
    Some(spine)
}

/// What lowering one chain leaf produces.
pub(crate) type LoweredLeaf = Result<Box<dyn Operator>, PlanError>;

/// Try to lower `plan` as a cost-ordered chain. `Ok(None)` when the
/// plan is not an eligible spine (fewer than three inputs, no
/// cross-input definite `=` conjunct, statistics disabled, or a shape
/// the flattener cannot prove equivalent) — the caller then lowers it
/// left-deep as before. `build_leaf` lowers one leaf subplan.
pub(crate) fn try_build_chain(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    build_leaf: &mut dyn FnMut(&LogicalPlan) -> LoweredLeaf,
) -> Result<Option<Box<dyn Operator>>, PlanError> {
    if !stats_enabled() {
        return Ok(None);
    }
    let Some(spine) = flatten_spine(plan) else {
        return Ok(None);
    };
    // Thresholds that could admit zero support would be rejected by
    // the level operators' constructors; decline so the left-deep
    // path surfaces the identical error.
    for (_, threshold) in &spine.levels {
        if let Some(t) = threshold {
            if !t.ensures_positive_support() {
                return Ok(None);
            }
        }
    }
    let inputs = spine
        .leaves
        .iter()
        .map(|leaf| build_leaf(leaf))
        .collect::<Result<Vec<_>, _>>()?;
    // Input-arity prefix sums map a global position in a level schema
    // back to (input, local position).
    let mut offsets = Vec::with_capacity(inputs.len() + 1);
    let mut total = 0usize;
    for input in &inputs {
        offsets.push(total);
        total += input.schema().arity();
    }
    offsets.push(total);
    let to_local = |global: usize| -> (usize, usize) {
        let input = offsets.iter().rposition(|&o| o <= global).unwrap_or(0);
        let input = input.min(inputs.len() - 1);
        (input, global - offsets[input])
    };
    // Level schemas: schema of the left-deep intermediate after each
    // level, built exactly like the operator tree would build them.
    let mut levels = Vec::with_capacity(spine.levels.len());
    let mut prefix = Arc::clone(inputs[0].schema());
    for (j, (predicate, threshold)) in spine.levels.iter().enumerate() {
        let schema = Arc::new(
            evirel_algebra::product::product_schema(&prefix, inputs[j + 1].schema())
                .map_err(PlanError::Algebra)?,
        );
        prefix = Arc::clone(&schema);
        levels.push(Level {
            predicate: predicate.cloned(),
            threshold: *threshold,
            schema,
        });
    }
    // Cross-input definite = conjuncts become pruning edges.
    let mut edges = Vec::new();
    for (j, level) in levels.iter().enumerate() {
        let Some(predicate) = &level.predicate else {
            continue;
        };
        let mut conjuncts = Vec::new();
        flatten_and(predicate, &mut conjuncts);
        for conjunct in conjuncts {
            let Predicate::Theta {
                left: Operand::Attr(a),
                op: ThetaOp::Eq,
                right: Operand::Attr(b),
            } = conjunct
            else {
                continue;
            };
            let (Ok(pa), Ok(pb)) = (level.schema.position(a), level.schema.position(b)) else {
                continue;
            };
            let (a_input, a_pos) = to_local(pa);
            let (b_input, b_pos) = to_local(pb);
            if a_input == b_input {
                continue;
            }
            let definite = |input: usize, pos: usize| {
                matches!(inputs[input].schema().attr(pos).ty(), AttrType::Definite(_))
            };
            if definite(a_input, a_pos) && definite(b_input, b_pos) {
                edges.push(Edge {
                    a_input,
                    a_pos,
                    b_input,
                    b_pos,
                });
            }
        }
        // Conjuncts evaluated at level j must only reference inputs
        // 0..=j + 1; positions past the level arity cannot resolve,
        // so no extra guard is needed.
        let _ = j;
    }
    if edges.is_empty() {
        return Ok(None);
    }
    let order = exploration_order(&spine.leaves, &edges, source);
    Ok(Some(Box::new(ChainOp {
        inputs,
        levels,
        edges,
        order,
        buffer: VecDeque::new(),
    })))
}

/// Cheapest-first exploration order: start from the input with the
/// fewest estimated rows, then repeatedly take the cheapest input
/// connected (by an edge) to the set already placed, falling back to
/// the cheapest unconnected one. Deterministic: ties break on input
/// index, and estimates come from published statistics (actual leaf
/// cardinality when a leaf has no stats).
fn exploration_order(
    leaves: &[&LogicalPlan],
    edges: &[Edge],
    source: &dyn RelationSource,
) -> Vec<usize> {
    let model = CostModel::new(source);
    let size = |plan: &LogicalPlan| -> f64 {
        model
            .est_rows(plan)
            .unwrap_or_else(|| leaf_tuples(plan, source) as f64)
    };
    let sizes: Vec<f64> = leaves.iter().map(|leaf| size(leaf)).collect();
    let n = leaves.len();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let cheapest = |placed: &[bool], connected_only: bool, order: &[usize]| -> Option<usize> {
        (0..n)
            .filter(|&i| !placed[i])
            .filter(|&i| {
                !connected_only
                    || edges.iter().any(|e| {
                        e.from(i)
                            .is_some_and(|(_, _, other)| order.contains(&other))
                    })
            })
            .min_by(|&a, &b| sizes[a].total_cmp(&sizes[b]).then(a.cmp(&b)))
    };
    while order.len() < n {
        let next = cheapest(&placed, true, &order)
            .or_else(|| cheapest(&placed, false, &order))
            .expect("an unplaced input always remains");
        placed[next] = true;
        order.push(next);
    }
    order
}

/// Actual tuple count of a leaf subplan's base relation (stats-free
/// ordering fallback).
fn leaf_tuples(plan: &LogicalPlan, source: &dyn RelationSource) -> usize {
    match plan {
        LogicalPlan::Scan { name } => source
            .relation(name)
            .map(|rel| rel.len())
            .or_else(|| source.stored(name).map(|s| s.len()))
            .unwrap_or(0),
        LogicalPlan::Select { input, .. }
        | LogicalPlan::ThresholdFilter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::RenameRelation { input, .. }
        | LogicalPlan::RenameAttribute { input, .. } => leaf_tuples(input, source),
        LogicalPlan::Union { left, right }
        | LogicalPlan::Intersect { left, right }
        | LogicalPlan::Difference { left, right }
        | LogicalPlan::Product { left, right }
        | LogicalPlan::Join { left, right, .. } => {
            leaf_tuples(left, source) + leaf_tuples(right, source)
        }
    }
}

/// The cost-ordered chain operator. See the module docs for the
/// equivalence argument; mechanically, `open`:
///
/// 1. drains every input exactly once (so scan counters match the
///    left-deep tree, which also scans each leaf once);
/// 2. enumerates candidate combinations in the cheapest-first order,
///    probing hash indexes built on the pruning edges;
/// 3. sorts survivors lexicographically by input insertion indices
///    (= left-deep emission order) and re-evaluates each strictly
///    left-to-right through the level predicates/thresholds,
///    reproducing the exact `and_independent` sequence.
pub struct ChainOp {
    inputs: Vec<Box<dyn Operator>>,
    levels: Vec<Level>,
    edges: Vec<Edge>,
    order: Vec<usize>,
    buffer: VecDeque<Arc<Tuple>>,
}

impl ChainOp {
    /// The chosen exploration order, as input indices (for tests).
    pub fn exploration_order(&self) -> &[usize] {
        &self.order
    }
}

/// Per-step probe plan for the candidate enumeration.
struct Step {
    input: usize,
    /// `(local pos, partner pos, partner input)` of the primary probe
    /// edge — `None` when no edge connects this input to the placed
    /// prefix (full range; a cross-product step).
    probe: Option<(usize, usize, usize)>,
    /// Residual connecting edges, checked by direct value equality.
    filters: Vec<(usize, usize, usize)>,
}

fn enumerate(
    steps: &[Step],
    indexes: &HashMap<(usize, usize), HashMap<Value, Vec<u32>>>,
    tuples: &[Vec<Arc<Tuple>>],
    assignment: &mut Vec<u32>,
    depth: usize,
    out: &mut Vec<Vec<u32>>,
) {
    let Some(step) = steps.get(depth) else {
        out.push(assignment.clone());
        return;
    };
    fn matches_filters(
        step: &Step,
        tuples: &[Vec<Arc<Tuple>>],
        assignment: &[u32],
        candidate: &Arc<Tuple>,
    ) -> bool {
        step.filters.iter().all(|&(pos, other_pos, other)| {
            let partner = &tuples[other][assignment[other] as usize];
            candidate.value(pos).as_definite() == partner.value(other_pos).as_definite()
        })
    }
    match step.probe {
        Some((pos, other_pos, other)) => {
            let partner = &tuples[other][assignment[other] as usize];
            let Some(value) = partner.value(other_pos).as_definite() else {
                return;
            };
            let Some(bucket) = indexes[&(step.input, pos)].get(value) else {
                return;
            };
            for &i in bucket {
                if matches_filters(step, tuples, assignment, &tuples[step.input][i as usize]) {
                    assignment[step.input] = i;
                    enumerate(steps, indexes, tuples, assignment, depth + 1, out);
                }
            }
        }
        None => {
            for i in 0..tuples[step.input].len() as u32 {
                if matches_filters(step, tuples, assignment, &tuples[step.input][i as usize]) {
                    assignment[step.input] = i;
                    enumerate(steps, indexes, tuples, assignment, depth + 1, out);
                }
            }
        }
    }
}

impl Operator for ChainOp {
    fn schema(&self) -> &Arc<Schema> {
        &self
            .levels
            .last()
            .expect("a chain has at least two levels")
            .schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        // 1. Drain every input exactly once.
        let mut tuples: Vec<Vec<Arc<Tuple>>> = Vec::with_capacity(self.inputs.len());
        for input in &mut self.inputs {
            input.open(ctx)?;
            let mut buf = Vec::new();
            while let Some(tuple) = input.next(ctx)? {
                buf.push(tuple);
            }
            tuples.push(buf);
        }

        // 2. Probe plans along the exploration order: the first
        //    connecting edge indexes, the rest filter.
        let mut steps = Vec::with_capacity(self.order.len());
        for (depth, &input) in self.order.iter().enumerate() {
            let placed = &self.order[..depth];
            let mut connecting = self.edges.iter().filter_map(|edge| {
                edge.from(input)
                    .filter(|&(_, _, other)| placed.contains(&other))
            });
            let probe = connecting.next();
            let filters = connecting.collect();
            steps.push(Step {
                input,
                probe,
                filters,
            });
        }
        let mut indexes: HashMap<(usize, usize), HashMap<Value, Vec<u32>>> = HashMap::new();
        for step in &steps {
            let Some((pos, _, _)) = step.probe else {
                continue;
            };
            indexes.entry((step.input, pos)).or_insert_with(|| {
                let mut index: HashMap<Value, Vec<u32>> = HashMap::new();
                for (i, tuple) in tuples[step.input].iter().enumerate() {
                    if let Some(v) = tuple.value(pos).as_definite() {
                        index.entry(v.clone()).or_default().push(i as u32);
                    }
                }
                index
            });
        }

        // 3. Enumerate, order canonically, re-evaluate left-deep.
        let mut survivors = Vec::new();
        let mut assignment = vec![0u32; self.inputs.len()];
        if tuples.iter().all(|t| !t.is_empty()) {
            enumerate(
                &steps,
                &indexes,
                &tuples,
                &mut assignment,
                0,
                &mut survivors,
            );
        }
        survivors.sort_unstable();
        'combo: for assignment in survivors {
            let first = &tuples[0][assignment[0] as usize];
            let mut membership: SupportPair = first.membership();
            let mut values = first.values().to_vec();
            for (j, level) in self.levels.iter().enumerate() {
                let next = &tuples[j + 1][assignment[j + 1] as usize];
                // F_TM, exactly as ×̃ / ⋈̃ issue it left-to-right.
                membership = membership.and_independent(&next.membership());
                values.extend(next.values().iter().cloned());
                match &level.predicate {
                    Some(predicate) => {
                        // The fused σ̃(×̃) path: build the pair, revise
                        // by predicate support, test the threshold.
                        let pair = Tuple::new(&level.schema, values.clone(), membership)?;
                        let fss = predicate_support(&level.schema, &pair, predicate)?;
                        let revised = pair.membership().and_independent(&fss);
                        let admits = match level.threshold {
                            Some(t) => t.admits(&revised),
                            None => true,
                        };
                        if !(admits && revised.is_positive()) {
                            continue 'combo;
                        }
                        membership = revised;
                    }
                    None => {
                        // Bare ×̃: zero-support pairs are not stored
                        // (CWA_ER), then any membership filter.
                        if !membership.is_positive() {
                            continue 'combo;
                        }
                        if let Some(t) = level.threshold {
                            if !t.admits(&membership) {
                                continue 'combo;
                            }
                        }
                    }
                }
            }
            let schema = Arc::clone(self.schema());
            self.buffer
                .push_back(Arc::new(Tuple::new(&schema, values, membership)?));
        }
        Ok(())
    }

    fn next(&mut self, _ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        Ok(self.buffer.pop_front())
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.buffer.clear();
        for input in &mut self.inputs {
            input.close(ctx)?;
        }
        Ok(())
    }

    fn describe(&self) -> String {
        let order: Vec<String> = self
            .order
            .iter()
            .map(|&i| self.inputs[i].schema().name().to_owned())
            .collect();
        format!(
            "⋈̃ chain ({} inputs, {} eq edges, cost-ordered: {})",
            self.inputs.len(),
            self.edges.len(),
            order.join(" → "),
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        self.inputs.iter().map(|op| op.as_ref()).collect()
    }
}
