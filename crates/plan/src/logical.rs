//! The logical plan tree and its fluent builder.
//!
//! A [`LogicalPlan`] is a composable description of a §3 algebra
//! expression: every node is one extended operation (σ̃, ∪̃, π̃, ×̃,
//! ⋈̃, plus the documented setop/rename extensions). Plans are built
//! with the [`scan`] entry point and the [`PlanBuilder`] combinators,
//! optimized by [`crate::rewrite::optimize`], and executed by the
//! streaming operators in [`crate::ops`] via [`crate::exec`].
//!
//! Naming convention: unary operators (σ̃, π̃, threshold filters,
//! renames aside) preserve their input's relation name, so pushing a
//! selection below a ×̃ never changes how the product qualifies
//! clashing attribute names. Binary operators derive combined names
//! (`A∪B`, `A×B`), exactly like the algebra free functions.

use crate::error::PlanError;
use evirel_algebra::{predicate::Predicate, threshold::Threshold};
use evirel_relation::{ExtendedRelation, Schema};
use evirel_store::StoredRelation;
use std::collections::HashMap;
use std::sync::Arc;

/// Where scans resolve their relations. Implemented by
/// `evirel_query::Catalog` and by the standalone [`Bindings`].
///
/// A name resolves to an in-memory relation, a disk-backed
/// [`StoredRelation`] (scanned page-at-a-time through the buffer
/// pool by the plan layer's spill scan), or nothing. In-memory takes
/// precedence when a source binds both.
pub trait RelationSource {
    /// The in-memory relation bound to `name`, if any.
    fn relation(&self, name: &str) -> Option<Arc<ExtendedRelation>>;

    /// The disk-backed relation bound to `name`, if any. Sources
    /// without storage attachments (the default) return `None`.
    fn stored(&self, name: &str) -> Option<Arc<StoredRelation>> {
        let _ = name;
        None
    }

    /// Statistics for the relation bound to `name`, if the source
    /// collected any ([`Bindings`] computes them at bind time; stored
    /// bindings carry the segment's persisted block). `None` — the
    /// default — makes the planner fall back to its size heuristics;
    /// stats never change results, only cost estimates.
    fn stats(&self, name: &str) -> Option<Arc<evirel_store::RelStats>> {
        let _ = name;
        None
    }
}

/// The schema `name` scans as, from either binding kind.
pub(crate) fn source_schema(source: &dyn RelationSource, name: &str) -> Option<Arc<Schema>> {
    source
        .relation(name)
        .map(|rel| Arc::clone(rel.schema()))
        .or_else(|| source.stored(name).map(|s| Arc::clone(s.schema())))
}

/// A minimal name → relation map for running plans without a query
/// catalog (examples, benches, the integration pipeline). Holds both
/// in-memory relations and disk-backed stored relations.
#[derive(Debug, Default, Clone)]
pub struct Bindings {
    map: HashMap<String, Arc<ExtendedRelation>>,
    stored: HashMap<String, Arc<StoredRelation>>,
    stats: HashMap<String, Arc<evirel_store::RelStats>>,
}

impl Bindings {
    /// An empty binding set.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Bind (or rebind) `name` to a relation.
    pub fn bind(&mut self, name: impl Into<String>, rel: ExtendedRelation) -> &mut Self {
        self.bind_shared(name, Arc::new(rel))
    }

    /// Bind an already-shared relation without copying it. Statistics
    /// are computed in the same pass ([`evirel_store::compute_stats`])
    /// so cost-based planning sees in-memory bindings too.
    pub fn bind_shared(
        &mut self,
        name: impl Into<String>,
        rel: Arc<ExtendedRelation>,
    ) -> &mut Self {
        let name = name.into();
        self.stored.remove(&name);
        self.stats
            .insert(name.clone(), Arc::new(evirel_store::compute_stats(&rel)));
        self.map.insert(name, rel);
        self
    }

    /// Bind `name` to a disk-backed stored relation: scans stream its
    /// pages through the buffer pool instead of requiring a
    /// materialized [`ExtendedRelation`].
    pub fn bind_stored(
        &mut self,
        name: impl Into<String>,
        stored: Arc<StoredRelation>,
    ) -> &mut Self {
        let name = name.into();
        self.map.remove(&name);
        match stored.stats() {
            Some(stats) => self.stats.insert(name.clone(), stats),
            None => self.stats.remove(&name),
        };
        self.stored.insert(name, stored);
        self
    }
}

impl RelationSource for Bindings {
    fn relation(&self, name: &str) -> Option<Arc<ExtendedRelation>> {
        self.map.get(name).cloned()
    }

    fn stored(&self, name: &str) -> Option<Arc<StoredRelation>> {
        self.stored.get(name).cloned()
    }

    fn stats(&self, name: &str) -> Option<Arc<evirel_store::RelStats>> {
        self.stats.get(name).cloned()
    }
}

/// One node of a logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Read a named relation from the [`RelationSource`].
    Scan {
        /// Binding name.
        name: String,
    },
    /// Extended selection σ̃ (§3.1): revise memberships by predicate
    /// support, keep tuples the threshold admits.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Selection condition `P`.
        predicate: Predicate,
        /// Membership threshold `Q`.
        threshold: Threshold,
    },
    /// A membership-only filter: `Q` applied to the *stored* `(sn, sp)`
    /// — the query language's bare `WITH` clause. The optimizer fuses
    /// it into an adjacent σ̃ where possible.
    ThresholdFilter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Membership threshold `Q`.
        threshold: Threshold,
    },
    /// Extended projection π̃ (§3.3).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Attribute list (must include the keys).
        attrs: Vec<String>,
    },
    /// Extended cartesian product ×̃ (§3.4).
    Product {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Extended join ⋈̃ (§3.5) ≡ σ̃ ∘ ×̃; kept as its own node for
    /// builder ergonomics and expanded by the optimizer.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join predicate over the product's (qualified) names.
        on: Predicate,
        /// Membership threshold for the implied σ̃.
        threshold: Threshold,
    },
    /// Extended union ∪̃ (§3.2) — Dempster merge of key-matched tuples.
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Extended intersection (extension): key-matched merges only.
    Intersect {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Extended difference (extension): left tuples with no key match.
    Difference {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Rename the relation (ρ).
    RenameRelation {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// New relation name.
        name: String,
    },
    /// Rename one attribute (ρ).
    RenameAttribute {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Existing attribute name.
        from: String,
        /// New attribute name.
        to: String,
    },
}

/// Start a plan at a named relation: `scan("ra").select(p).project(a)`.
pub fn scan(name: impl Into<String>) -> PlanBuilder {
    PlanBuilder {
        plan: LogicalPlan::Scan { name: name.into() },
    }
}

/// Fluent builder over [`LogicalPlan`] — every combinator wraps the
/// current plan in one more node.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBuilder {
    plan: LogicalPlan,
}

impl PlanBuilder {
    /// σ̃ with the paper's default threshold `sn > 0`.
    pub fn select(self, predicate: Predicate) -> Self {
        self.select_where(predicate, Threshold::POSITIVE)
    }

    /// σ̃ with an explicit membership threshold.
    pub fn select_where(self, predicate: Predicate, threshold: Threshold) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Select {
                input: Box::new(self.plan),
                predicate,
                threshold,
            },
        }
    }

    /// Membership-only filter on the stored `(sn, sp)`.
    pub fn threshold(self, threshold: Threshold) -> Self {
        PlanBuilder {
            plan: LogicalPlan::ThresholdFilter {
                input: Box::new(self.plan),
                threshold,
            },
        }
    }

    /// π̃ onto the named attributes.
    pub fn project<S: Into<String>>(self, attrs: impl IntoIterator<Item = S>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                attrs: attrs.into_iter().map(Into::into).collect(),
            },
        }
    }

    /// ×̃ with another plan.
    pub fn product(self, other: impl Into<LogicalPlan>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Product {
                left: Box::new(self.plan),
                right: Box::new(other.into()),
            },
        }
    }

    /// ⋈̃ with the paper's default threshold.
    pub fn join(self, other: impl Into<LogicalPlan>, on: Predicate) -> Self {
        self.join_where(other, on, Threshold::POSITIVE)
    }

    /// ⋈̃ with an explicit membership threshold.
    pub fn join_where(
        self,
        other: impl Into<LogicalPlan>,
        on: Predicate,
        threshold: Threshold,
    ) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(other.into()),
                on,
                threshold,
            },
        }
    }

    /// ∪̃ with another plan.
    pub fn union(self, other: impl Into<LogicalPlan>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Union {
                left: Box::new(self.plan),
                right: Box::new(other.into()),
            },
        }
    }

    /// Extended intersection with another plan.
    pub fn intersect(self, other: impl Into<LogicalPlan>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Intersect {
                left: Box::new(self.plan),
                right: Box::new(other.into()),
            },
        }
    }

    /// Extended difference with another plan.
    pub fn difference(self, other: impl Into<LogicalPlan>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Difference {
                left: Box::new(self.plan),
                right: Box::new(other.into()),
            },
        }
    }

    /// ρ: rename the relation.
    pub fn rename(self, name: impl Into<String>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::RenameRelation {
                input: Box::new(self.plan),
                name: name.into(),
            },
        }
    }

    /// ρ: rename one attribute.
    pub fn rename_attr(self, from: impl Into<String>, to: impl Into<String>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::RenameAttribute {
                input: Box::new(self.plan),
                from: from.into(),
                to: to.into(),
            },
        }
    }

    /// Finish building.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

impl From<PlanBuilder> for LogicalPlan {
    fn from(b: PlanBuilder) -> LogicalPlan {
        b.plan
    }
}

impl LogicalPlan {
    /// The node's direct inputs.
    pub fn inputs(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => Vec::new(),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::ThresholdFilter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::RenameRelation { input, .. }
            | LogicalPlan::RenameAttribute { input, .. } => vec![input],
            LogicalPlan::Product { left, right }
            | LogicalPlan::Join { left, right, .. }
            | LogicalPlan::Union { left, right }
            | LogicalPlan::Intersect { left, right }
            | LogicalPlan::Difference { left, right } => vec![left, right],
        }
    }

    /// Render the plan as an indented operator tree (the logical half
    /// of `EXPLAIN`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match self {
            LogicalPlan::Scan { name } => format!("scan {name}"),
            LogicalPlan::Select {
                predicate,
                threshold,
                ..
            } => format!("σ̃[{predicate}] with {threshold}"),
            LogicalPlan::ThresholdFilter { threshold, .. } => {
                format!("σ̃[membership] with {threshold}")
            }
            LogicalPlan::Project { attrs, .. } => format!("π̃[{}]", attrs.join(", ")),
            LogicalPlan::Product { .. } => "×̃".to_owned(),
            LogicalPlan::Join { on, threshold, .. } => {
                if *threshold == Threshold::POSITIVE {
                    format!("⋈̃[{on}]")
                } else {
                    format!("⋈̃[{on}] with {threshold}")
                }
            }
            LogicalPlan::Union { .. } => "∪̃".to_owned(),
            LogicalPlan::Intersect { .. } => "∩̃".to_owned(),
            LogicalPlan::Difference { .. } => "−̃".to_owned(),
            LogicalPlan::RenameRelation { name, .. } => format!("ρ[{name}]"),
            LogicalPlan::RenameAttribute { from, to, .. } => format!("ρ[{from}→{to}]"),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for input in self.inputs() {
            input.render_into(depth + 1, out);
        }
    }
}

/// The output schema a plan produces, resolved against `source` —
/// used by the optimizer's schema-aware rules and by plan-time
/// semantic validation. Mirrors the physical operators exactly.
///
/// # Errors
/// Unknown relations, union-incompatible inputs, invalid projections
/// or renames.
pub fn schema_of(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
) -> Result<Arc<Schema>, PlanError> {
    match plan {
        LogicalPlan::Scan { name } => source_schema(source, name)
            .ok_or_else(|| PlanError::UnknownRelation { name: name.clone() }),
        LogicalPlan::Select { input, .. } | LogicalPlan::ThresholdFilter { input, .. } => {
            schema_of(input, source)
        }
        LogicalPlan::Project { input, attrs } => {
            let s = schema_of(input, source)?;
            let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let positions = evirel_algebra::project::projection_positions(&s, &names)?;
            Ok(Arc::new(evirel_algebra::project::projected_schema(
                &s, &positions,
            )?))
        }
        LogicalPlan::Product { left, right } | LogicalPlan::Join { left, right, .. } => {
            let ls = schema_of(left, source)?;
            let rs = schema_of(right, source)?;
            Ok(Arc::new(evirel_algebra::product::product_schema(&ls, &rs)?))
        }
        LogicalPlan::Union { left, right } => binary_compatible_schema(left, right, source, "∪"),
        LogicalPlan::Intersect { left, right } => {
            binary_compatible_schema(left, right, source, "∩")
        }
        LogicalPlan::Difference { left, right } => {
            binary_compatible_schema(left, right, source, "−")
        }
        LogicalPlan::RenameRelation { input, name } => {
            let s = schema_of(input, source)?;
            Ok(Arc::new(s.renamed(name.clone())))
        }
        LogicalPlan::RenameAttribute { input, from, to } => {
            let s = schema_of(input, source)?;
            Ok(Arc::new(evirel_algebra::rename::attribute_renamed_schema(
                &s, from, to,
            )?))
        }
    }
}

fn binary_compatible_schema(
    left: &LogicalPlan,
    right: &LogicalPlan,
    source: &dyn RelationSource,
    symbol: &str,
) -> Result<Arc<Schema>, PlanError> {
    let ls = schema_of(left, source)?;
    let rs = schema_of(right, source)?;
    ls.check_union_compatible(&rs)
        .map_err(|e| PlanError::Algebra(evirel_algebra::AlgebraError::Relation(e)))?;
    Ok(Arc::new(ls.renamed(format!(
        "{}{symbol}{}",
        ls.name(),
        rs.name()
    ))))
}

/// Plan-time semantic validation: every attribute referenced by a
/// selection, join, or projection must exist in its input's schema.
/// Errors carry the attribute name and the schema it was resolved
/// against — the check `evirel_query::plan::lower` reserved its
/// `Result` for.
///
/// # Errors
/// [`PlanError::UnknownAttribute`], plus schema-resolution failures.
pub fn validate_plan(plan: &LogicalPlan, source: &dyn RelationSource) -> Result<(), PlanError> {
    match plan {
        LogicalPlan::Select {
            input, predicate, ..
        } => {
            validate_plan(input, source)?;
            let s = schema_of(input, source)?;
            check_attrs(predicate, &s)
        }
        LogicalPlan::Join {
            left, right, on, ..
        } => {
            validate_plan(left, source)?;
            validate_plan(right, source)?;
            let ls = schema_of(left, source)?;
            let rs = schema_of(right, source)?;
            let s = evirel_algebra::product::product_schema(&ls, &rs)?;
            check_attrs(on, &s)
        }
        LogicalPlan::Project { input, attrs } => {
            validate_plan(input, source)?;
            let s = schema_of(input, source)?;
            for attr in attrs {
                if s.position(attr).is_err() {
                    return Err(PlanError::UnknownAttribute {
                        attr: attr.clone(),
                        schema: s.name().to_owned(),
                    });
                }
            }
            Ok(())
        }
        other => {
            for input in other.inputs() {
                validate_plan(input, source)?;
            }
            Ok(())
        }
    }
}

fn check_attrs(predicate: &Predicate, schema: &Schema) -> Result<(), PlanError> {
    for attr in predicate.referenced_attrs() {
        if schema.position(attr).is_err() {
            return Err(PlanError::UnknownAttribute {
                attr: attr.to_owned(),
                schema: schema.name().to_owned(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_algebra::{Operand, ThetaOp};
    use evirel_relation::{AttrDomain, RelationBuilder};

    fn bindings() -> Bindings {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("R")
                .key_str("k")
                .evidential("d", Arc::clone(&d))
                .build()
                .unwrap(),
        );
        let rel = RelationBuilder::new(Arc::clone(&schema))
            .tuple(|t| t.set_str("k", "a").set_evidence("d", [(&["x"][..], 1.0)]))
            .unwrap()
            .build();
        let other = RelationBuilder::new(Arc::new(schema.renamed("S")))
            .tuple(|t| t.set_str("k", "b").set_evidence("d", [(&["y"][..], 1.0)]))
            .unwrap()
            .build();
        let mut b = Bindings::new();
        b.bind("r", rel).bind("s", other);
        b
    }

    #[test]
    fn builder_composes_all_operators() {
        let plan = scan("r")
            .select(Predicate::is("d", ["x"]))
            .threshold(Threshold::SnAtLeast(0.5))
            .project(["k", "d"])
            .union(scan("s"))
            .build();
        assert!(matches!(plan, LogicalPlan::Union { .. }));
        let text = plan.render();
        assert!(text.contains("∪̃"), "{text}");
        assert!(text.contains("π̃[k, d]"), "{text}");
        assert!(text.contains("σ̃[d is {x}]"), "{text}");
        assert!(text.contains("scan r") && text.contains("scan s"), "{text}");

        let joined = scan("r")
            .join(
                scan("s"),
                Predicate::theta(Operand::attr("R.k"), ThetaOp::Eq, Operand::attr("S.k")),
            )
            .build();
        assert!(joined.render().contains("⋈̃"));
        let setops = scan("r")
            .intersect(scan("s"))
            .difference(scan("s"))
            .rename("t")
            .rename_attr("d", "e")
            .build();
        let text = setops.render();
        assert!(text.contains("∩̃") && text.contains("−̃"), "{text}");
        assert!(text.contains("ρ[t]") && text.contains("ρ[d→e]"), "{text}");
        let prod = scan("r").product(scan("s")).build();
        assert!(prod.render().contains("×̃"));
    }

    #[test]
    fn schema_resolution() {
        let b = bindings();
        let s = schema_of(&scan("r").build(), &b).unwrap();
        assert_eq!(s.name(), "R");
        // Unary operators preserve the input name.
        let s = schema_of(&scan("r").select(Predicate::is("d", ["x"])).build(), &b).unwrap();
        assert_eq!(s.name(), "R");
        let s = schema_of(&scan("r").project(["k"]).build(), &b).unwrap();
        assert_eq!(s.name(), "R");
        assert_eq!(s.arity(), 1);
        // Binary operators combine names; products qualify clashes.
        let s = schema_of(&scan("r").union(scan("s")).build(), &b).unwrap();
        assert_eq!(s.name(), "R∪S");
        let s = schema_of(&scan("r").product(scan("s")).build(), &b).unwrap();
        assert_eq!(s.name(), "R×S");
        assert!(s.position("R.k").is_ok() && s.position("S.k").is_ok());
        assert!(matches!(
            schema_of(&scan("zz").build(), &b),
            Err(PlanError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn validation_catches_unknown_attrs() {
        let b = bindings();
        let bad = scan("r").select(Predicate::is("nope", ["x"])).build();
        match validate_plan(&bad, &b) {
            Err(PlanError::UnknownAttribute { attr, schema }) => {
                assert_eq!(attr, "nope");
                assert_eq!(schema, "R");
            }
            other => panic!("{other:?}"),
        }
        let bad = scan("r").project(["k", "ghost"]).build();
        assert!(matches!(
            validate_plan(&bad, &b),
            Err(PlanError::UnknownAttribute { .. })
        ));
        // Join predicates validate against the qualified product schema.
        let good = scan("r")
            .join(
                scan("s"),
                Predicate::theta(Operand::attr("R.k"), ThetaOp::Eq, Operand::attr("S.k")),
            )
            .build();
        assert!(validate_plan(&good, &b).is_ok());
        let bad = scan("r")
            .join(
                scan("s"),
                Predicate::theta(Operand::attr("R.zz"), ThetaOp::Eq, Operand::attr("S.k")),
            )
            .build();
        assert!(matches!(
            validate_plan(&bad, &b),
            Err(PlanError::UnknownAttribute { .. })
        ));
        let ok = scan("r").select(Predicate::is("d", ["x"])).build();
        assert!(validate_plan(&ok, &b).is_ok());
    }
}
