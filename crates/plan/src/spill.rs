//! Spill-to-disk execution: stored-relation scans and segment-backed
//! merge build sides.
//!
//! Two pieces let the streaming operators run over data that never
//! fully fits in memory:
//!
//! * [`SpillScanOp`] — the [`Operator`] for a disk-backed
//!   [`StoredRelation`]: it decodes one page at a time through the
//!   shared [`evirel_store::BufferPool`], so a scan's
//!   working set is a single page regardless of relation size.
//!   Records keep insertion order and `f64` payloads round-trip as
//!   raw bits, so a stored scan is *bit-for-bit* equivalent to an
//!   in-memory [`crate::ops::ScanOp`] over the same tuples — the
//!   determinism contract the equivalence property suite checks.
//! * `SpillBuild` / `SpilledRight` (crate-private) — the merge
//!   operator's build side on disk. While draining its right input,
//!   [`crate::ops::MergeOp`]
//!   tracks the *exact encoded size* of what it has buffered
//!   (`codec::record_len`); past [`ExecContext::spill_threshold_bytes`]
//!   it migrates the buffer into a temp segment and keeps only a
//!   `key → (page, slot)` index in memory. Probes then pin one page
//!   through the buffer pool and decode one record. Spill files are
//!   unlinked as soon as the segment is open, so the kernel reclaims
//!   them when the merge closes — nothing leaks even on panic.

use crate::error::PlanError;
use crate::ops::{ExecContext, Operator};
use evirel_relation::{Schema, Tuple, Value};
use evirel_store::segment::RecordId;
use evirel_store::{BufferPool, Segment, SegmentWriter, StoredRelation};
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------- spill scan

/// Leaf operator: stream a stored relation's tuples in insertion
/// order, one decoded page at a time through the buffer pool.
pub struct SpillScanOp {
    name: String,
    stored: Arc<StoredRelation>,
    page: u64,
    buf: std::vec::IntoIter<Tuple>,
}

impl SpillScanOp {
    /// Scan `stored`, displayed as `name`.
    pub fn new(name: impl Into<String>, stored: Arc<StoredRelation>) -> SpillScanOp {
        SpillScanOp {
            name: name.into(),
            stored,
            page: 0,
            buf: Vec::new().into_iter(),
        }
    }

    /// The stored relation this operator scans.
    pub fn stored(&self) -> &Arc<StoredRelation> {
        &self.stored
    }
}

impl Operator for SpillScanOp {
    fn schema(&self) -> &Arc<Schema> {
        self.stored.schema()
    }

    fn open(&mut self, _ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.page = 0;
        self.buf = Vec::new().into_iter();
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        loop {
            if let Some(tuple) = self.buf.next() {
                ctx.stats.tuples_scanned += 1;
                return Ok(Some(Arc::new(tuple)));
            }
            if self.page >= self.stored.segment().page_count() {
                return Ok(None);
            }
            // The page is pinned only while it decodes.
            let tuples = self.stored.page_tuples(self.page)?;
            self.page += 1;
            self.buf = tuples.into_iter();
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.buf = Vec::new().into_iter();
        Ok(())
    }

    fn describe(&self) -> String {
        format!(
            "scan {} [stored: {} tuples, {} pages × {} B target]",
            self.name,
            self.stored.len(),
            self.stored.segment().page_count(),
            self.stored.segment().page_size(),
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        Vec::new()
    }

    fn stored_relation(&self) -> Option<&Arc<StoredRelation>> {
        Some(&self.stored)
    }
}

// --------------------------------------------------------- spill build

/// A merge build side being written to a temp segment.
pub(crate) struct SpillBuild {
    writer: SegmentWriter,
    path: std::path::PathBuf,
    schema: Arc<Schema>,
    index: HashMap<Vec<Value>, RecordId>,
}

impl SpillBuild {
    /// Start a temp-segment build side for tuples over `schema`.
    pub(crate) fn create(schema: &Arc<Schema>) -> Result<SpillBuild, PlanError> {
        let path = evirel_store::spill_path("merge-right");
        let writer = SegmentWriter::create(&path, schema, evirel_store::DEFAULT_PAGE_SIZE)?;
        Ok(SpillBuild {
            writer,
            path,
            schema: Arc::clone(schema),
            index: HashMap::new(),
        })
    }

    /// Append one right tuple under its (routing) key.
    pub(crate) fn append(&mut self, key: Vec<Value>, tuple: &Tuple) -> Result<(), PlanError> {
        let id = self.writer.append(tuple)?;
        self.index.insert(key, id);
        Ok(())
    }

    /// Finish writing and open the segment for probing. The temp file
    /// is unlinked immediately — the open handle keeps the data alive
    /// until the merge drops it.
    pub(crate) fn finish(self, pool: &Arc<BufferPool>) -> Result<SpilledRight, PlanError> {
        let path = self.writer.finish()?;
        let segment = Arc::new(Segment::open_with_schema(&path, self.schema)?);
        // Reclaimed by the kernel when the last handle drops; on
        // filesystems where unlink-while-open is not allowed the file
        // merely lingers until the OS temp cleaner runs.
        let _ = std::fs::remove_file(&self.path);
        Ok(SpilledRight {
            segment,
            pool: Arc::clone(pool),
            index: self.index,
        })
    }
}

/// A finished spilled build side: the temp segment plus the
/// `key → record` index probes go through.
pub(crate) struct SpilledRight {
    segment: Arc<Segment>,
    pool: Arc<BufferPool>,
    index: HashMap<Vec<Value>, RecordId>,
}

impl SpilledRight {
    /// `true` when `key` is indexed.
    pub(crate) fn contains(&self, key: &[Value]) -> bool {
        self.index.contains_key(key)
    }

    /// Decode the tuple stored under `key`, pinning its page only for
    /// the decode.
    pub(crate) fn fetch(&self, key: &[Value]) -> Result<Option<Tuple>, PlanError> {
        let Some(id) = self.index.get(key) else {
            return Ok(None);
        };
        let guard = self.pool.get(&self.segment, id.page)?;
        Ok(Some(self.segment.decode_record(&guard, id.slot)?))
    }
}

/// Index a stored relation's keys in ONE pass over its pages —
/// [`crate::ops::MergeOp`] uses this when its right child is a bare
/// stored scan, so the build side needs no re-spill (the segment on
/// disk *is* the build side) and no materialized tuples.
pub(crate) fn index_stored(
    stored: &Arc<StoredRelation>,
) -> Result<(SpilledRight, Vec<Vec<Value>>), PlanError> {
    let schema = Arc::clone(stored.schema());
    let mut index = HashMap::with_capacity(stored.len());
    let mut order = Vec::with_capacity(stored.len());
    for page in 0..stored.segment().page_count() {
        let tuples = stored.page_tuples(page)?;
        for (slot, tuple) in tuples.iter().enumerate() {
            let key = tuple.key(&schema);
            order.push(key.clone());
            index.insert(
                key,
                RecordId {
                    page,
                    slot: slot as u32,
                },
            );
        }
    }
    Ok((
        SpilledRight {
            segment: Arc::clone(stored.segment()),
            pool: Arc::clone(stored.pool()),
            index,
        },
        order,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{run, ScanOp};
    use evirel_relation::{AttrDomain, ExtendedRelation, RelationBuilder};

    fn rel(n: usize) -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap());
        let schema = Arc::new(
            Schema::builder("R")
                .key_str("k")
                .evidential("d", d)
                .build()
                .unwrap(),
        );
        let mut b = RelationBuilder::new(schema);
        for i in 0..n {
            let label = ["x", "y", "z"][i % 3];
            b = b
                .tuple(|t| {
                    t.set_str("k", format!("k{i:04}"))
                        .set_evidence_with_omega("d", [(&[label][..], 0.7)], 0.3)
                        .membership_pair(0.2 + 0.001 * (i as f64), 1.0)
                })
                .unwrap();
        }
        b.build()
    }

    fn store(rel: &ExtendedRelation, budget: usize) -> Arc<StoredRelation> {
        let path = evirel_store::spill_path("plan-test");
        evirel_store::write_segment(rel, &path, 512).unwrap();
        let stored = StoredRelation::open(&path, Arc::new(BufferPool::new(budget))).unwrap();
        std::fs::remove_file(&path).ok();
        Arc::new(stored)
    }

    #[test]
    fn spill_scan_matches_in_memory_scan_bit_for_bit() {
        let r = rel(300);
        let stored = store(&r, 1024); // ~2 pages of budget
        let mut mem_ctx = ExecContext::new();
        let mem = run(&mut ScanOp::new("r", Arc::new(r.clone())), &mut mem_ctx).unwrap();
        let mut disk_ctx = ExecContext::new();
        let disk = run(
            &mut SpillScanOp::new("r", Arc::clone(&stored)),
            &mut disk_ctx,
        )
        .unwrap();
        assert_eq!(mem.len(), disk.len());
        for (a, b) in mem.iter().zip(disk.iter()) {
            assert_eq!(a.values(), b.values());
            assert_eq!(a.membership().sn().to_bits(), b.membership().sn().to_bits());
            assert_eq!(a.membership().sp().to_bits(), b.membership().sp().to_bits());
        }
        assert_eq!(mem_ctx.stats.tuples_scanned, disk_ctx.stats.tuples_scanned);
        // The tiny budget forced evictions while scanning.
        let stats = stored.pool().stats();
        assert!(stats.evictions > 0, "{stats:?}");
    }

    #[test]
    fn spilled_build_side_fetches_exact_tuples() {
        let r = rel(100);
        let pool = Arc::new(BufferPool::new(2048));
        let mut build = SpillBuild::create(r.schema()).unwrap();
        for (key, tuple) in r.iter_keyed() {
            build.append(key, tuple).unwrap();
        }
        let spilled = build.finish(&pool).unwrap();
        for (key, tuple) in r.iter_keyed() {
            assert!(spilled.contains(&key));
            let fetched = spilled.fetch(&key).unwrap().unwrap();
            assert_eq!(fetched.values(), tuple.values());
        }
        assert!(spilled.fetch(&[Value::str("nope")]).unwrap().is_none());
    }

    #[test]
    fn index_stored_is_one_pass_and_ordered() {
        let r = rel(80);
        let stored = store(&r, 4096);
        let (spilled, order) = index_stored(&stored).unwrap();
        assert_eq!(order, r.keys().collect::<Vec<_>>());
        let key = vec![Value::str("k0042")];
        let fetched = spilled.fetch(&key).unwrap().unwrap();
        assert_eq!(fetched.values(), r.get_by_key(&key).unwrap().values());
    }
}
