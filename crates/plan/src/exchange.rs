//! Volcano-style exchange: encapsulated hash-partitioned parallelism.
//!
//! [`ExchangeOp`] runs N structurally identical copies of an operator
//! subtree — each reading only its hash-shard of the scanned
//! relations via [`ShardScanOp`] — on N `std::thread` workers, then
//! re-merges the shard outputs deterministically. Because the
//! extended operators pair tuples by *key equality* and every key is
//! routed to exactly one shard by the shared
//! [`evirel_algebra::partition::Partitioner`], the existing streaming
//! operators (σ̃, membership threshold, π̃, ∪̃, ∩̃, −̃, ρ) execute
//! sharded **unchanged** — parallelism is encapsulated in this one
//! operator, exactly Graefe's exchange design.
//!
//! ## Determinism
//!
//! Parallel execution reproduces the sequential streaming result bit
//! for bit:
//!
//! * **Tuples** are re-merged in the fragment's static *emit-domain
//!   order* (computed per node by the physical planner: scans in
//!   insertion order; ∪̃ = left order then right-only keys in right
//!   order; ∩̃/−̃ filter the left order by the right key set; unary
//!   operators preserve order), which equals the sequential emission
//!   order. Fragments for which no static order can match — a ∪̃ with
//!   a σ̃/threshold below its *left* subtree, a π̃ permuting composite
//!   key attributes — are not exchanged at that node; the planner
//!   recurses and may shard an inner fragment instead.
//! * **Side outputs**: each worker drives its shard plan with a
//!   private [`ExecContext`]; the per-worker conflict reports are
//!   re-merged slot-by-slot (the shard plans are structurally
//!   identical, so report slot *i* of every worker belongs to the
//!   same merging operator) with observations ordered by the same key
//!   rank — left-insertion order, matching what the sequential
//!   operator records. κ statistics and scan/merge counters are
//!   summed, so [`crate::ops::ExecStats`] is identical too.
//!
//! Workers own disjoint tuple sets, so no locks are needed; the only
//! synchronization is the scoped join at `open`.

use crate::error::PlanError;
use crate::ops::{ExecContext, Operator};
use evirel_algebra::conflict::ConflictReport;
use evirel_algebra::partition::Partitioner;
use evirel_relation::{ExtendedRelation, Schema, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A deterministic key → merge-rank map: the order in which the
/// re-merge emits tuples (and orders conflict observations).
///
/// The physical planner derives it from the fragment's static emit
/// domain; [`rank_keys`] builds the single-merge case directly. See
/// [`ExchangeOp`] for why the ranks must equal sequential emission
/// order.
pub type OrderMap = HashMap<Vec<Value>, usize>;

/// Assign ranks to `rel`'s keys in insertion order, skipping keys
/// already ranked. `canonical` (used by the integration pipeline's
/// entity matcher, which may pair *unequal* keys) maps a tuple's own
/// key to the key it is emitted and partitioned under.
pub fn rank_keys(
    map: &mut OrderMap,
    rel: &ExtendedRelation,
    canonical: Option<&HashMap<Vec<Value>, Vec<Value>>>,
) {
    for (key, _) in rel.iter_keyed() {
        let key = match canonical.and_then(|m| m.get(&key)) {
            Some(mapped) => mapped.clone(),
            None => key,
        };
        let next = map.len();
        map.entry(key).or_insert(next);
    }
}

// ---------------------------------------------------------- shard scan

/// Precompute the shard slot of every tuple of `rel` (optionally
/// routing via `canonical` keys — see [`rank_keys`]). All N shard
/// scans of one exchange share the result, so the relation is keyed
/// and hashed **once**, not once per worker.
pub fn compute_slots(
    rel: &ExtendedRelation,
    partitioner: Partitioner,
    canonical: Option<&HashMap<Vec<Value>, Vec<Value>>>,
) -> Arc<Vec<u32>> {
    Arc::new(
        rel.iter_keyed()
            .map(|(key, _)| {
                let route = match canonical.and_then(|m| m.get(&key)) {
                    Some(mapped) => mapped,
                    None => &key,
                };
                partitioner.slot_for_key(route) as u32
            })
            .collect(),
    )
}

/// Leaf: stream the tuples of one hash-shard of a relation, in
/// insertion order. The shard of a tuple is decided by its key (or by
/// a remapped *canonical* key — see [`rank_keys`]), so operators that
/// pair tuples by key equality see every partner in their own shard.
pub struct ShardScanOp {
    name: String,
    rel: Arc<ExtendedRelation>,
    partitioner: Partitioner,
    shard: usize,
    slots: Arc<Vec<u32>>,
    pos: usize,
}

impl ShardScanOp {
    /// Scan shard `shard` of `rel` under `partitioner`, hashing every
    /// key here; prefer [`ShardScanOp::with_slots`] when several
    /// shard scans cover one relation.
    pub fn new(
        name: impl Into<String>,
        rel: Arc<ExtendedRelation>,
        partitioner: Partitioner,
        shard: usize,
    ) -> ShardScanOp {
        let slots = compute_slots(&rel, partitioner, None);
        ShardScanOp::with_slots(name, rel, partitioner, shard, slots)
    }

    /// As [`ShardScanOp::new`], but route tuples by
    /// `key_map[key]` when present (tuples matched under a different
    /// canonical key must land in their partner's shard).
    pub fn with_key_map(
        name: impl Into<String>,
        rel: Arc<ExtendedRelation>,
        partitioner: Partitioner,
        shard: usize,
        key_map: &HashMap<Vec<Value>, Vec<Value>>,
    ) -> ShardScanOp {
        let slots = compute_slots(&rel, partitioner, Some(key_map));
        ShardScanOp::with_slots(name, rel, partitioner, shard, slots)
    }

    /// Scan shard `shard` of `rel` using slots precomputed by
    /// [`compute_slots`] — the zero-rehash constructor every exchange
    /// builder uses (one slot table shared across all N shards).
    pub fn with_slots(
        name: impl Into<String>,
        rel: Arc<ExtendedRelation>,
        partitioner: Partitioner,
        shard: usize,
        slots: Arc<Vec<u32>>,
    ) -> ShardScanOp {
        ShardScanOp {
            name: name.into(),
            rel,
            partitioner,
            shard,
            slots,
            pos: 0,
        }
    }
}

impl Operator for ShardScanOp {
    fn schema(&self) -> &Arc<Schema> {
        self.rel.schema()
    }

    fn open(&mut self, _ctx: &mut ExecContext) -> Result<(), PlanError> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        while let Some(&slot) = self.slots.get(self.pos) {
            if slot as usize != self.shard {
                self.pos += 1;
                continue;
            }
            let tuple = self
                .rel
                .get_shared(self.pos)
                .ok_or_else(|| PlanError::Pairing {
                    reason: "relation shrank under a shard scan".to_owned(),
                })?;
            self.pos += 1;
            // Each tuple is scanned by exactly one shard, so the
            // per-shard counts sum to the sequential scan count.
            ctx.stats.tuples_scanned += 1;
            return Ok(Some(tuple));
        }
        Ok(None)
    }

    fn close(&mut self, _ctx: &mut ExecContext) -> Result<(), PlanError> {
        Ok(())
    }

    fn describe(&self) -> String {
        format!(
            "scan {} shard {}/{} ({} tuples)",
            self.name,
            self.shard,
            self.partitioner.shards(),
            self.rel.len(),
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        Vec::new()
    }
}

// ------------------------------------------------------------ exchange

/// Hash-partition → N worker threads → deterministic re-merge.
///
/// Holds N structurally identical shard plans. `open` drives each to
/// completion on its own scoped thread with a private [`ExecContext`],
/// then re-merges tuples and side outputs in the order given by the
/// [`OrderMap`]; `next` streams the merged buffer; `close` flushes
/// the re-merged conflict reports into the caller's context.
pub struct ExchangeOp {
    shards: Vec<Box<dyn Operator>>,
    schema: Arc<Schema>,
    order: OrderMap,
    buffer: Vec<Arc<Tuple>>,
    pos: usize,
    merged_reports: Vec<ConflictReport>,
    /// How tuples were routed to shards, for `EXPLAIN` (`hash(key)
    /// partition` for the shardable family; the partitioned ⋈̃ names
    /// its join attributes).
    partition_desc: String,
}

impl ExchangeOp {
    /// Build an exchange over `shards` (all must emit the same
    /// schema; tuple re-merge follows `order`).
    ///
    /// # Errors
    /// [`PlanError::Pairing`] when `shards` is empty or the shard
    /// schemas disagree.
    pub fn new(shards: Vec<Box<dyn Operator>>, order: OrderMap) -> Result<ExchangeOp, PlanError> {
        ExchangeOp::with_partition_label(shards, order, "hash(key) partition".to_owned())
    }

    /// As [`ExchangeOp::new`], with an explicit partition description
    /// for `EXPLAIN` (the partitioned ⋈̃ routes by join attribute, not
    /// by key).
    ///
    /// # Errors
    /// As [`ExchangeOp::new`].
    pub fn with_partition_label(
        shards: Vec<Box<dyn Operator>>,
        order: OrderMap,
        partition_desc: String,
    ) -> Result<ExchangeOp, PlanError> {
        let first = shards.first().ok_or_else(|| PlanError::Pairing {
            reason: "exchange needs at least one shard".to_owned(),
        })?;
        let schema = Arc::clone(first.schema());
        for shard in &shards[1..] {
            let same = shard.schema().arity() == schema.arity()
                && shard
                    .schema()
                    .attrs()
                    .iter()
                    .zip(schema.attrs())
                    .all(|(a, b)| a.name() == b.name());
            if !same {
                return Err(PlanError::Pairing {
                    reason: "exchange shards disagree on schema".to_owned(),
                });
            }
        }
        Ok(ExchangeOp {
            shards,
            schema,
            order,
            buffer: Vec::new(),
            pos: 0,
            merged_reports: Vec::new(),
            partition_desc,
        })
    }

    /// Number of worker threads / shard plans.
    pub fn threads(&self) -> usize {
        self.shards.len()
    }

    fn rank_of(&self, key: &[Value]) -> usize {
        // Unknown keys (a projection that reordered a multi-attribute
        // key, say) sort after all ranked ones; the stable sort keeps
        // them in shard order, so the output stays deterministic.
        self.order.get(key).copied().unwrap_or(usize::MAX)
    }
}

impl Operator for ExchangeOp {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        let options = ctx.union_options.clone();
        let pool = Arc::clone(&ctx.pool);
        let spill_threshold = ctx.spill_threshold_bytes;
        // Drive every shard plan to completion, one scoped thread per
        // shard, each with a private context for side outputs — but
        // ONE shared buffer pool, so N workers spill and page under a
        // single byte budget.
        type WorkerOut = Result<(Vec<Arc<Tuple>>, ExecContext), PlanError>;
        let results: Vec<WorkerOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| {
                    let mut wctx = ExecContext::with_options(options.clone());
                    wctx.parallelism = 1;
                    wctx.pool = Arc::clone(&pool);
                    wctx.spill_threshold_bytes = spill_threshold;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        shard.open(&mut wctx)?;
                        while let Some(tuple) = shard.next(&mut wctx)? {
                            out.push(tuple);
                        }
                        shard.close(&mut wctx)?;
                        Ok((out, wctx))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("exchange worker panicked"))
                .collect()
        });

        let mut contexts = Vec::with_capacity(results.len());
        let mut merged: Vec<(usize, Arc<Tuple>)> = Vec::new();
        for result in results {
            let (tuples, wctx) = result?;
            for tuple in tuples {
                let rank = self.rank_of(&tuple.key(&self.schema));
                merged.push((rank, tuple));
            }
            contexts.push(wctx);
        }
        merged.sort_by_key(|(rank, _)| *rank);
        self.buffer = merged.into_iter().map(|(_, t)| t).collect();
        self.pos = 0;

        // Counters sum; conflicts/κ flow in via the re-merged reports
        // at close, exactly like a sequential merging operator.
        for wctx in &contexts {
            ctx.stats.tuples_scanned += wctx.stats.tuples_scanned;
            ctx.stats.pairs_merged += wctx.stats.pairs_merged;
        }
        // Slot-by-slot report re-merge: the shard plans are copies of
        // one tree, so every worker closes the same merging operators
        // in the same order.
        let slots = contexts
            .iter()
            .map(|c| c.reports().len())
            .max()
            .unwrap_or(0);
        self.merged_reports = (0..slots)
            .map(|slot| {
                let mut observations: Vec<(usize, &evirel_algebra::AttributeConflict)> = contexts
                    .iter()
                    .flat_map(|c| c.reports().get(slot).into_iter())
                    .flat_map(|report| report.conflicts())
                    .map(|c| (self.rank_of(&c.key), c))
                    .collect();
                observations.sort_by_key(|(rank, _)| *rank);
                let mut report = ConflictReport::new();
                for (_, c) in observations {
                    report.record(c.clone());
                }
                report
            })
            .collect();
        Ok(())
    }

    fn next(&mut self, _ctx: &mut ExecContext) -> Result<Option<Arc<Tuple>>, PlanError> {
        match self.buffer.get(self.pos) {
            Some(tuple) => {
                self.pos += 1;
                Ok(Some(Arc::clone(tuple)))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<(), PlanError> {
        for report in self.merged_reports.drain(..) {
            ctx.record_report(report);
        }
        self.buffer.clear();
        Ok(())
    }

    fn describe(&self) -> String {
        format!(
            "⇄ exchange ({} threads, {}; identical shard plans, shard 0 shown)",
            self.shards.len(),
            self.partition_desc,
        )
    }

    fn children(&self) -> Vec<&dyn Operator> {
        // All shard plans are structurally identical; rendering one
        // representative keeps EXPLAIN readable.
        self.shards
            .first()
            .map(|s| s.as_ref())
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{run, DempsterMerger, MergeOp};
    use evirel_algebra::union::UnionOptions;
    use evirel_relation::{AttrDomain, RelationBuilder};

    fn pair(n: usize) -> (Arc<ExtendedRelation>, Arc<ExtendedRelation>) {
        let domain = Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap());
        let schema = |name: &str| {
            Arc::new(
                Schema::builder(name)
                    .key_str("k")
                    .evidential("d", Arc::clone(&domain))
                    .build()
                    .unwrap(),
            )
        };
        let mut a = RelationBuilder::new(schema("A"));
        let mut b = RelationBuilder::new(schema("B"));
        for i in 0..n {
            let k = format!("key-{i}");
            a = a
                .tuple(|t| {
                    t.set_str("k", k.clone())
                        .set_evidence_with_omega("d", [(&["x"][..], 0.6)], 0.4)
                })
                .unwrap();
            if i % 2 == 0 {
                b = b
                    .tuple(|t| {
                        t.set_str("k", k.clone()).set_evidence_with_omega(
                            "d",
                            [(&["x"][..], 0.3), (&["y"][..], 0.3)],
                            0.4,
                        )
                    })
                    .unwrap();
            }
        }
        (Arc::new(a.build()), Arc::new(b.build()))
    }

    fn union_over_shards(
        a: &Arc<ExtendedRelation>,
        b: &Arc<ExtendedRelation>,
        threads: usize,
    ) -> ExchangeOp {
        let partitioner = Partitioner::new(threads);
        let shards = (0..threads)
            .map(|s| {
                Box::new(
                    MergeOp::union(
                        Box::new(ShardScanOp::new("a", Arc::clone(a), partitioner, s)),
                        Box::new(ShardScanOp::new("b", Arc::clone(b), partitioner, s)),
                        Box::new(DempsterMerger::new(UnionOptions::default())),
                    )
                    .unwrap(),
                ) as Box<dyn Operator>
            })
            .collect();
        let mut order = OrderMap::new();
        rank_keys(&mut order, a, None);
        rank_keys(&mut order, b, None);
        ExchangeOp::new(shards, order).unwrap()
    }

    #[test]
    fn exchange_union_matches_sequential_merge() {
        let (a, b) = pair(256);
        let mut seq_ctx = ExecContext::new();
        let mut seq_op = MergeOp::union(
            Box::new(crate::ops::ScanOp::new("a", Arc::clone(&a))),
            Box::new(crate::ops::ScanOp::new("b", Arc::clone(&b))),
            Box::new(DempsterMerger::new(UnionOptions::default())),
        )
        .unwrap();
        let seq = run(&mut seq_op, &mut seq_ctx).unwrap();

        for threads in [2usize, 4] {
            let mut par_ctx = ExecContext::new();
            let mut exchange = union_over_shards(&a, &b, threads);
            let par = run(&mut exchange, &mut par_ctx).unwrap();
            assert!(seq.approx_eq(&par));
            // Bit-for-bit: same insertion order, same stats, same
            // report observation order.
            for (s, p) in seq.iter().zip(par.iter()) {
                assert_eq!(s.key(seq.schema()), p.key(par.schema()));
            }
            assert_eq!(seq_ctx.stats, par_ctx.stats);
            assert_eq!(
                seq_ctx.conflict_report().conflicts(),
                par_ctx.conflict_report().conflicts()
            );
        }
    }

    #[test]
    fn shard_scans_partition_the_relation() {
        let (a, _) = pair(100);
        let partitioner = Partitioner::new(4);
        let mut seen = 0usize;
        for s in 0..4 {
            let mut op = ShardScanOp::new("a", Arc::clone(&a), partitioner, s);
            let mut ctx = ExecContext::new();
            op.open(&mut ctx).unwrap();
            let mut shard_count = 0usize;
            while op.next(&mut ctx).unwrap().is_some() {
                shard_count += 1;
            }
            op.close(&mut ctx).unwrap();
            assert_eq!(ctx.stats.tuples_scanned, shard_count);
            seen += shard_count;
        }
        assert_eq!(seen, a.len());
    }

    #[test]
    fn empty_exchange_rejected() {
        assert!(matches!(
            ExchangeOp::new(Vec::new(), OrderMap::new()),
            Err(PlanError::Pairing { .. })
        ));
    }
}
