//! # evirel-plan — logical plans and streaming operators
//!
//! The composable query layer over the §3 algebra, in two halves:
//!
//! 1. **Logical**: a [`LogicalPlan`] tree with a fluent builder
//!    (`scan(r).select(p).threshold(q).project(a)…`) covering all
//!    five paper operators (σ̃, ∪̃, π̃, ×̃, ⋈̃) plus the setop/rename
//!    extensions, and a rewrite optimizer ([`optimize`]) with
//!    predicate pushdown through π̃/×̃, projection pruning,
//!    threshold-into-select fusion, select fusion, and σ̃-under-∪̃
//!    distribution for key-crisp predicates. Every rule application
//!    is recorded and surfaced by `EXPLAIN`.
//! 2. **Physical**: a pull-based [`Operator`] trait
//!    (`open`/`next`/`close` over extended tuples) with streaming
//!    implementations — scan, select, membership threshold, project,
//!    product, a hash-probing ⋈̃, and a key-indexed ∪̃/∩̃ merge that
//!    builds its index once and streams probes. Composed queries no
//!    longer materialize an [`evirel_relation::ExtendedRelation`]
//!    between operators, and side outputs (∪̃ conflict reports, κ
//!    statistics) flow through the shared [`ExecContext`] instead of
//!    being dropped. With [`ExecContext::parallelism`] > 1, shardable
//!    fragments run through the Volcano-style [`exchange`] operator:
//!    hash-partition by key, N worker threads, deterministic re-merge
//!    — parallel execution reproduces sequential output bit for bit.
//!
//! The algebra free functions (`select`, `union_extended`, …) remain
//! the *naive single-node implementations* of the same operators;
//! [`reference::execute_reference`] composes them into an independent
//! oracle that the equivalence property suite checks the streaming
//! executor against. `evirel-query` lowers EQL onto this crate, and
//! `evirel-integrate`'s merge stage runs through [`ops::MergeOp`]
//! with its method-registry merger.
//!
//! ```
//! use evirel_plan::{scan, execute_plan, Bindings, ExecContext};
//! use evirel_algebra::{Predicate, Threshold};
//! use evirel_workload::restaurant_db_a;
//!
//! let mut bindings = Bindings::new();
//! bindings.bind("ra", restaurant_db_a().restaurants);
//! let plan = scan("ra")
//!     .select(Predicate::is("speciality", ["si"]))
//!     .project(["rname", "speciality"])
//!     .build();
//! let mut ctx = ExecContext::new();
//! let result = execute_plan(&plan, &bindings, &mut ctx).unwrap();
//! assert_eq!(result.len(), 2); // the paper's Table 2, streamed
//! ```

pub mod chain;
pub mod cost;
pub mod error;
pub mod exchange;
pub mod exec;
pub mod logical;
pub mod ops;
pub mod reference;
pub mod rewrite;
pub mod spill;

pub use chain::ChainOp;
pub use cost::{stats_enabled, CostModel, NO_STATS_ENV};
pub use error::PlanError;
pub use exchange::{compute_slots, rank_keys, ExchangeOp, OrderMap, ShardScanOp};
pub use exec::{
    collect_meters, execute_optimized, execute_optimized_metered, execute_plan,
    explain_analyze_with, explain_plan, explain_plan_with, open_plan, physical, physical_with,
    planned_rewrites, OpMeter,
};
pub use logical::{
    scan, schema_of, validate_plan, Bindings, LogicalPlan, PlanBuilder, RelationSource,
};
pub use ops::{
    default_parallelism, parse_parallelism, run, DempsterMerger, ExecContext, ExecStats, MergeEmit,
    MergeOp, MergePairing, MeteredOp, Operator, ScanOp, TupleMerger, MAX_PARALLELISM,
};
pub use rewrite::{optimize, Rewrite};
pub use spill::SpillScanOp;
// The storage-engine types that appear in this crate's public API
// (`RelationSource::stored`, `ExecContext::pool`), re-exported so
// callers need not depend on `evirel-store` directly.
pub use evirel_store::{BufferPool, PoolStats, StoredRelation};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, PlanError>;
