//! Physical planning and execution.
//!
//! [`physical`] lowers an (ideally optimized) [`LogicalPlan`] into an
//! [`Operator`] tree; [`execute_plan`] optimizes, builds, and drives
//! it to a materialized relation; [`explain_plan`] renders all three
//! stages — logical tree, fired rewrite rules, optimized tree,
//! physical tree.
//!
//! Physical fusion: a σ̃ directly above a ×̃ whose predicate carries an
//! equality conjunct between definite attributes of opposite sides
//! becomes a [`HashJoinOp`] — the streaming ⋈̃ that builds its key
//! index once and probes it per left tuple.
//!
//! Parallelism: when [`ExecContext::parallelism`] > 1, the largest
//! subtrees whose operators pair tuples by key equality (σ̃, member-
//! ship threshold, π̃, ∪̃, ∩̃, −̃, ρ over scans) and that contain at
//! least one ∪̃/∩̃ merge are wrapped in an
//! [`crate::exchange::ExchangeOp`]: each worker thread runs an
//! identical copy of the subtree over one hash-shard of the scans and
//! the outputs re-merge deterministically — see [`crate::exchange`].

use crate::cost::{stats_enabled, CostModel};
use crate::error::PlanError;
use crate::exchange::{compute_slots, ExchangeOp, OrderMap, ShardScanOp};
use crate::logical::{LogicalPlan, RelationSource};
use crate::ops::{
    run, DempsterMerger, DifferenceOp, HashJoinOp, MergeOp, MeteredOp, Operator, ProductOp,
    ProjectOp, RenameOp, ScanOp, SelectOp, ThresholdOp,
};
use crate::rewrite::{optimize, Rewrite};
use crate::ExecContext;
use evirel_algebra::partition::Partitioner;
use evirel_algebra::predicate::Predicate;
use evirel_algebra::threshold::Threshold;
use evirel_algebra::union::UnionOptions;
use evirel_relation::ExtendedRelation;
use std::collections::HashMap;
use std::sync::Arc;

/// Below this many scanned tuples per worker, an exchange cannot pay
/// for its partitioning and re-merge overhead (mirrors the parallel
/// union's fallback in `evirel_algebra::par`).
const MIN_TUPLES_PER_SHARD: usize = 64;

/// Cost-model floor per exchange worker, in [`CostModel::est_cost`]
/// units (≈ rows touched: a scanned tuple costs 1, a merged pair its
/// κ-inflated memo weight). Roughly `MIN_TUPLES_PER_SHARD` tuples
/// each scanned and touched once more downstream.
const MIN_COST_PER_SHARD: f64 = 128.0;

/// Lower a logical plan into a physical operator tree, without
/// optimizing or running it. Single-threaded; see [`physical_with`]
/// for the parallel variant.
///
/// # Errors
/// Unknown relations, invalid projections/renames/thresholds,
/// incompatible schemas.
pub fn physical(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<Box<dyn Operator>, PlanError> {
    physical_with(plan, source, options, 1)
}

/// [`physical`] with an explicit thread budget: parallelizable
/// subtrees are wrapped in an exchange when `parallelism > 1` and the
/// scanned inputs are large enough to amortize it.
///
/// # Errors
/// As [`physical`].
pub fn physical_with(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    parallelism: usize,
) -> Result<Box<dyn Operator>, PlanError> {
    physical_impl(plan, source, options, parallelism, false)
}

/// Is `plan`'s fragment worth `parallelism` exchange workers? With
/// statistics, compare the cost model's total-work estimate against a
/// per-worker floor (so a highly selective fragment over a large scan
/// is not sharded for nothing); without them, fall back to the
/// scanned-tuple heuristic.
fn exchange_pays_off(plan: &LogicalPlan, source: &dyn RelationSource, parallelism: usize) -> bool {
    if stats_enabled() {
        if let Some(cost) = CostModel::new(source).est_cost(plan) {
            return cost >= parallelism as f64 * MIN_COST_PER_SHARD;
        }
    }
    fragment_scan_tuples(plan, source) >= parallelism * MIN_TUPLES_PER_SHARD
}

/// Wrap `op` in the `EXPLAIN`-analyze meter when requested, tagging
/// it with the cost model's row estimate for `plan`.
fn meter_wrap(
    op: Box<dyn Operator>,
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    meter: bool,
) -> Box<dyn Operator> {
    if !meter {
        return op;
    }
    let est = if stats_enabled() {
        CostModel::new(source).est_rows(plan)
    } else {
        None
    };
    Box::new(MeteredOp::new(op, est))
}

fn physical_impl(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    parallelism: usize,
    meter: bool,
) -> Result<Box<dyn Operator>, PlanError> {
    if parallelism > 1
        && shardable(plan)
        && contains_merge(plan)
        && exchange_pays_off(plan, source, parallelism)
    {
        if let Some(op) = build_exchange(plan, source, options, parallelism)? {
            return Ok(meter_wrap(op, plan, source, meter));
        }
    }
    // ≥3-way ⋈̃/×̃ spines with statistics available run through the
    // cost-ordered chain operator (bit-identical to the left-deep
    // lowering below — see `crate::chain`).
    let mut build_leaf =
        |leaf: &LogicalPlan| physical_impl(leaf, source, options, parallelism, meter);
    if let Some(op) = crate::chain::try_build_chain(plan, source, &mut build_leaf)? {
        return Ok(meter_wrap(op, plan, source, meter));
    }
    let op = physical_node(plan, source, options, parallelism, meter)?;
    Ok(meter_wrap(op, plan, source, meter))
}

fn physical_node(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    parallelism: usize,
    meter: bool,
) -> Result<Box<dyn Operator>, PlanError> {
    Ok(match plan {
        LogicalPlan::Scan { name } => match source.relation(name) {
            Some(rel) => Box::new(ScanOp::new(name.clone(), rel)),
            // Disk-backed binding: stream pages through the buffer
            // pool instead of requiring a materialized relation.
            None => match source.stored(name) {
                Some(stored) => Box::new(crate::spill::SpillScanOp::new(name.clone(), stored)),
                None => return Err(PlanError::UnknownRelation { name: name.clone() }),
            },
        },
        LogicalPlan::Select {
            input,
            predicate,
            threshold,
        } => {
            if let LogicalPlan::Product { left, right } = &**input {
                return build_join(
                    left,
                    right,
                    predicate,
                    threshold,
                    source,
                    options,
                    parallelism,
                    meter,
                );
            }
            Box::new(SelectOp::new(
                physical_impl(input, source, options, parallelism, meter)?,
                predicate.clone(),
                *threshold,
            )?)
        }
        LogicalPlan::ThresholdFilter { input, threshold } => Box::new(ThresholdOp::new(
            physical_impl(input, source, options, parallelism, meter)?,
            *threshold,
        )?),
        LogicalPlan::Project { input, attrs } => Box::new(ProjectOp::new(
            physical_impl(input, source, options, parallelism, meter)?,
            attrs,
        )?),
        LogicalPlan::Product { left, right } => Box::new(ProductOp::new(
            physical_impl(left, source, options, parallelism, meter)?,
            physical_impl(right, source, options, parallelism, meter)?,
        )?),
        LogicalPlan::Join {
            left,
            right,
            on,
            threshold,
        } => {
            return build_join(
                left,
                right,
                on,
                threshold,
                source,
                options,
                parallelism,
                meter,
            )
        }
        LogicalPlan::Union { left, right } => Box::new(sized_merge(
            MergeOp::union(
                physical_impl(left, source, options, parallelism, meter)?,
                physical_impl(right, source, options, parallelism, meter)?,
                Box::new(DempsterMerger::new(options.clone())),
            )?,
            right,
            source,
        )),
        LogicalPlan::Intersect { left, right } => Box::new(sized_merge(
            MergeOp::intersect(
                physical_impl(left, source, options, parallelism, meter)?,
                physical_impl(right, source, options, parallelism, meter)?,
                Box::new(DempsterMerger::new(options.clone())),
            )?,
            right,
            source,
        )),
        LogicalPlan::Difference { left, right } => Box::new(DifferenceOp::new(
            physical_impl(left, source, options, parallelism, meter)?,
            physical_impl(right, source, options, parallelism, meter)?,
        )?),
        LogicalPlan::RenameRelation { input, name } => Box::new(RenameOp::relation(
            physical_impl(input, source, options, parallelism, meter)?,
            name,
        )),
        LogicalPlan::RenameAttribute { input, from, to } => Box::new(RenameOp::attribute(
            physical_impl(input, source, options, parallelism, meter)?,
            from,
            to,
        )?),
    })
}

/// Attach the cost model's build-side estimate to a merge, when
/// statistics cover its right (build) input. The estimate only picks
/// the build path (eager spill vs pre-sized map) — see
/// [`MergeOp::with_build_estimate`].
fn sized_merge(op: MergeOp, right: &LogicalPlan, source: &dyn RelationSource) -> MergeOp {
    if !stats_enabled() {
        return op;
    }
    match CostModel::new(source).build_estimate(right) {
        Some((bytes, rows)) => op.with_build_estimate(bytes, rows),
        None => op,
    }
}

/// Can this whole subtree execute over hash-shards of its scans?
/// True for the key-preserving family: every operator pairs or
/// filters tuples by full-key equality, so routing each key to one
/// shard is semantics-preserving. ×̃/⋈̃ pair *across* keys and stay
/// outside exchange fragments.
fn shardable(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Select { input, .. }
        | LogicalPlan::ThresholdFilter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::RenameRelation { input, .. }
        | LogicalPlan::RenameAttribute { input, .. } => shardable(input),
        LogicalPlan::Union { left, right }
        | LogicalPlan::Intersect { left, right }
        | LogicalPlan::Difference { left, right } => shardable(left) && shardable(right),
        LogicalPlan::Product { .. } | LogicalPlan::Join { .. } => false,
    }
}

/// Does the subtree contain a ∪̃/∩̃ merge? Dempster combination is
/// what dominates merge cost, so only fragments that merge are worth
/// an exchange.
fn contains_merge(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Union { .. } | LogicalPlan::Intersect { .. } => true,
        LogicalPlan::Scan { .. } => false,
        LogicalPlan::Select { input, .. }
        | LogicalPlan::ThresholdFilter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::RenameRelation { input, .. }
        | LogicalPlan::RenameAttribute { input, .. } => contains_merge(input),
        LogicalPlan::Difference { left, right } | LogicalPlan::Product { left, right } => {
            contains_merge(left) || contains_merge(right)
        }
        LogicalPlan::Join { left, right, .. } => contains_merge(left) || contains_merge(right),
    }
}

/// Total tuples the fragment's scan leaves would produce.
fn fragment_scan_tuples(plan: &LogicalPlan, source: &dyn RelationSource) -> usize {
    match plan {
        LogicalPlan::Scan { name } => source
            .relation(name)
            .map(|rel| rel.len())
            .or_else(|| source.stored(name).map(|s| s.len()))
            .unwrap_or(0),
        LogicalPlan::Select { input, .. }
        | LogicalPlan::ThresholdFilter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::RenameRelation { input, .. }
        | LogicalPlan::RenameAttribute { input, .. } => fragment_scan_tuples(input, source),
        LogicalPlan::Union { left, right }
        | LogicalPlan::Intersect { left, right }
        | LogicalPlan::Difference { left, right }
        | LogicalPlan::Product { left, right } => {
            fragment_scan_tuples(left, source) + fragment_scan_tuples(right, source)
        }
        LogicalPlan::Join { left, right, .. } => {
            fragment_scan_tuples(left, source) + fragment_scan_tuples(right, source)
        }
    }
}

/// The static emission-order domain of a shardable fragment: every
/// key it can emit, in sequential emission order, plus whether the
/// key *set* is exact (no data-dependent filtering below).
struct EmitDomain {
    /// Keys in the order the sequential plan would emit them.
    order: Vec<Vec<evirel_relation::Value>>,
    /// The same keys, for membership tests.
    set: std::collections::HashSet<Vec<evirel_relation::Value>>,
    /// `false` when a σ̃/threshold below makes the emitted key set a
    /// data-dependent subset of `order`.
    exact: bool,
}

/// Compute the emit domain, or `None` when no static order can be
/// guaranteed to match sequential emission — then the fragment is not
/// exchanged (the planner recurses and may still exchange a subtree):
///
/// * a ∪̃ whose *left* subtree has an inexact key set: a left key
///   dropped at runtime but present on the right would be emitted in
///   the right-only phase, while any static map ranks it in the left
///   block (filters on the *right* subtree are fine — dropped right
///   keys are simply absent, which cannot reorder survivors);
/// * a π̃ that permutes key attributes: the re-merge ranks tuples by
///   their emitted key, which must align positionally with the scan
///   keys the map was built from.
fn emit_domain(plan: &LogicalPlan, source: &dyn RelationSource) -> Option<EmitDomain> {
    match plan {
        LogicalPlan::Scan { name } => {
            // Stored (disk-backed) bindings decline the exchange:
            // computing their emit domain would require a full scan up
            // front, defeating the point of paging. They run through
            // the sequential spill scan instead (still streaming).
            let rel = source.relation(name)?;
            let order: Vec<_> = rel.iter_keyed().map(|(key, _)| key).collect();
            let set = order.iter().cloned().collect();
            Some(EmitDomain {
                order,
                set,
                exact: true,
            })
        }
        LogicalPlan::Select { input, .. } | LogicalPlan::ThresholdFilter { input, .. } => {
            let mut domain = emit_domain(input, source)?;
            domain.exact = false;
            Some(domain)
        }
        LogicalPlan::Project { input, .. } => {
            let key_names = |schema: &evirel_relation::Schema| -> Vec<String> {
                schema
                    .key_positions()
                    .iter()
                    .map(|&p| schema.attr(p).name().to_owned())
                    .collect()
            };
            let in_schema = crate::logical::schema_of(input, source).ok()?;
            let out_schema = crate::logical::schema_of(plan, source).ok()?;
            if key_names(&in_schema) != key_names(&out_schema) {
                return None;
            }
            emit_domain(input, source)
        }
        LogicalPlan::RenameRelation { input, .. } | LogicalPlan::RenameAttribute { input, .. } => {
            emit_domain(input, source)
        }
        LogicalPlan::Union { left, right } => {
            let l = emit_domain(left, source)?;
            if !l.exact {
                return None;
            }
            let r = emit_domain(right, source)?;
            let mut order = l.order;
            order.extend(r.order.into_iter().filter(|k| !l.set.contains(k)));
            let mut set = l.set;
            set.extend(r.set);
            Some(EmitDomain {
                order,
                set,
                exact: r.exact,
            })
        }
        LogicalPlan::Intersect { left, right } => {
            let l = emit_domain(left, source)?;
            let r = emit_domain(right, source)?;
            let order: Vec<_> = l.order.into_iter().filter(|k| r.set.contains(k)).collect();
            let set = order.iter().cloned().collect();
            Some(EmitDomain {
                order,
                set,
                exact: l.exact && r.exact,
            })
        }
        LogicalPlan::Difference { left, right } => {
            let l = emit_domain(left, source)?;
            let r = emit_domain(right, source)?;
            // An inexact right set under −̃ *adds* emitted keys
            // relative to the static order: a right key dropped at
            // runtime no longer subtracts its left partner, which the
            // map below never ranked. No static order can cover that,
            // so decline the exchange here (the planner recurses and
            // may still exchange the subtrees). An inexact LEFT only
            // removes emitted keys, which cannot reorder survivors.
            if !r.exact {
                return None;
            }
            let order: Vec<_> = l.order.into_iter().filter(|k| !r.set.contains(k)).collect();
            let set = order.iter().cloned().collect();
            Some(EmitDomain {
                order,
                set,
                exact: l.exact,
            })
        }
        LogicalPlan::Product { .. } | LogicalPlan::Join { .. } => None,
    }
}

/// Wrap a shardable fragment in an exchange: N identical shard plans
/// over [`ShardScanOp`] leaves (sharing one precomputed slot table
/// per scanned relation) plus the emit-domain order map. `Ok(None)`
/// when [`emit_domain`] cannot guarantee sequential emission order —
/// the caller then plans this node sequentially and recurses.
fn build_exchange(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    threads: usize,
) -> Result<Option<Box<dyn Operator>>, PlanError> {
    let Some(domain) = emit_domain(plan, source) else {
        return Ok(None);
    };
    let order: OrderMap = domain
        .order
        .into_iter()
        .enumerate()
        .map(|(rank, key)| (key, rank))
        .collect();
    let partitioner = Partitioner::new(threads);
    let mut slot_tables: HashMap<String, Arc<Vec<u32>>> = HashMap::new();
    let shards = (0..threads)
        .map(|shard| physical_shard(plan, source, options, partitioner, shard, &mut slot_tables))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Some(Box::new(ExchangeOp::new(shards, order)?)))
}

/// [`physical`] restricted to the shardable family, with scan leaves
/// replaced by [`ShardScanOp`]s of one shard. `slot_tables` caches
/// one precomputed slot table per scanned relation so N shards hash
/// every key once, not N times.
fn physical_shard(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    partitioner: Partitioner,
    shard: usize,
    slot_tables: &mut HashMap<String, Arc<Vec<u32>>>,
) -> Result<Box<dyn Operator>, PlanError> {
    let mut build = |input| physical_shard(input, source, options, partitioner, shard, slot_tables);
    Ok(match plan {
        LogicalPlan::Scan { name } => {
            let rel = source
                .relation(name)
                .ok_or_else(|| PlanError::UnknownRelation { name: name.clone() })?;
            let slots = slot_tables
                .entry(name.clone())
                .or_insert_with(|| compute_slots(&rel, partitioner, None));
            Box::new(ShardScanOp::with_slots(
                name.clone(),
                rel,
                partitioner,
                shard,
                Arc::clone(slots),
            ))
        }
        LogicalPlan::Select {
            input,
            predicate,
            threshold,
        } => Box::new(SelectOp::new(build(input)?, predicate.clone(), *threshold)?),
        LogicalPlan::ThresholdFilter { input, threshold } => {
            Box::new(ThresholdOp::new(build(input)?, *threshold)?)
        }
        LogicalPlan::Project { input, attrs } => Box::new(ProjectOp::new(build(input)?, attrs)?),
        LogicalPlan::Union { left, right } => Box::new(MergeOp::union(
            build(left)?,
            build(right)?,
            Box::new(DempsterMerger::new(options.clone())),
        )?),
        LogicalPlan::Intersect { left, right } => Box::new(MergeOp::intersect(
            build(left)?,
            build(right)?,
            Box::new(DempsterMerger::new(options.clone())),
        )?),
        LogicalPlan::Difference { left, right } => {
            Box::new(DifferenceOp::new(build(left)?, build(right)?)?)
        }
        LogicalPlan::RenameRelation { input, name } => {
            Box::new(RenameOp::relation(build(input)?, name))
        }
        LogicalPlan::RenameAttribute { input, from, to } => {
            Box::new(RenameOp::attribute(build(input)?, from, to)?)
        }
        LogicalPlan::Product { .. } | LogicalPlan::Join { .. } => {
            return Err(PlanError::Pairing {
                reason: "×̃/⋈̃ cannot appear inside an exchange fragment".to_owned(),
            })
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn build_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    predicate: &Predicate,
    threshold: &Threshold,
    source: &dyn RelationSource,
    options: &UnionOptions,
    parallelism: usize,
    meter: bool,
) -> Result<Box<dyn Operator>, PlanError> {
    if parallelism > 1 {
        if let Some(op) =
            build_partitioned_join(left, right, predicate, threshold, source, parallelism)?
        {
            return Ok(op);
        }
    }
    let left_op = physical_impl(left, source, options, parallelism, meter)?;
    let right_op = physical_impl(right, source, options, parallelism, meter)?;
    let product_schema =
        evirel_algebra::product::product_schema(left_op.schema(), right_op.schema())?;
    match HashJoinOp::indexable_conjunct(
        predicate,
        left_op.schema(),
        right_op.schema(),
        &product_schema,
    ) {
        Some((lp, rp)) => Ok(Box::new(HashJoinOp::new(
            left_op,
            right_op,
            predicate.clone(),
            *threshold,
            lp,
            rp,
        )?)),
        None => Ok(Box::new(SelectOp::new(
            Box::new(ProductOp::new(left_op, right_op)?),
            predicate.clone(),
            *threshold,
        )?)),
    }
}

/// The base in-memory relation under a pure filter chain (σ̃ /
/// membership thresholds over a scan — the shapes that commute with
/// per-tuple sharding), or `None` for anything else.
fn filter_chain_base(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Scan { name } => Some(name),
        LogicalPlan::Select { input, .. } | LogicalPlan::ThresholdFilter { input, .. } => {
            filter_chain_base(input)
        }
        _ => None,
    }
}

/// Rebuild a filter chain over one shard scan of its base relation.
fn shard_filter_chain(
    plan: &LogicalPlan,
    rel: &Arc<ExtendedRelation>,
    partitioner: Partitioner,
    shard: usize,
    slots: &Arc<Vec<u32>>,
) -> Result<Box<dyn Operator>, PlanError> {
    Ok(match plan {
        LogicalPlan::Scan { name } => Box::new(ShardScanOp::with_slots(
            name.clone(),
            Arc::clone(rel),
            partitioner,
            shard,
            Arc::clone(slots),
        )),
        LogicalPlan::Select {
            input,
            predicate,
            threshold,
        } => Box::new(SelectOp::new(
            shard_filter_chain(input, rel, partitioner, shard, slots)?,
            predicate.clone(),
            *threshold,
        )?),
        LogicalPlan::ThresholdFilter { input, threshold } => Box::new(ThresholdOp::new(
            shard_filter_chain(input, rel, partitioner, shard, slots)?,
            *threshold,
        )?),
        _ => {
            return Err(PlanError::Pairing {
                reason: "partitioned ⋈̃ sides must be filter chains over scans".to_owned(),
            })
        }
    })
}

/// Partitioned ⋈̃: when both join sides are filter chains over
/// in-memory scans, the predicate has a hashable equality conjunct,
/// and the cost model estimates enough work to amortize `parallelism`
/// workers, shard **both** sides by the join attribute's value —
/// equal values land in the same shard, so each worker's hash join
/// sees every matching pair — and re-merge worker outputs in
/// sequential emission order (left insertion order × matching right
/// insertion order, which is exactly how the sequential hash join
/// emits). `Ok(None)` declines to the sequential lowering.
fn build_partitioned_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    predicate: &Predicate,
    threshold: &Threshold,
    source: &dyn RelationSource,
    parallelism: usize,
) -> Result<Option<Box<dyn Operator>>, PlanError> {
    if !stats_enabled() {
        return Ok(None);
    }
    let (Some(l_name), Some(r_name)) = (filter_chain_base(left), filter_chain_base(right)) else {
        return Ok(None);
    };
    let (Some(l_rel), Some(r_rel)) = (source.relation(l_name), source.relation(r_name)) else {
        return Ok(None);
    };
    let l_schema = crate::logical::schema_of(left, source)?;
    let r_schema = crate::logical::schema_of(right, source)?;
    let product_schema = Arc::new(evirel_algebra::product::product_schema(
        &l_schema, &r_schema,
    )?);
    let Some((lp, rp)) =
        HashJoinOp::indexable_conjunct(predicate, &l_schema, &r_schema, &product_schema)
    else {
        return Ok(None);
    };
    let join_plan = LogicalPlan::Join {
        left: Box::new(left.clone()),
        right: Box::new(right.clone()),
        on: predicate.clone(),
        threshold: *threshold,
    };
    let model = CostModel::new(source);
    match model.est_cost(&join_plan) {
        Some(cost) if cost >= parallelism as f64 * MIN_COST_PER_SHARD => {}
        _ => return Ok(None),
    }
    // Rank every join-value-matching pair in sequential emission
    // order. Filters above the scans only *remove* emissions, so the
    // map is a superset of what the workers emit — supersets cannot
    // reorder survivors.
    let mut r_index: HashMap<&evirel_relation::Value, Vec<usize>> = HashMap::new();
    for (i, tuple) in r_rel.iter().enumerate() {
        if let Some(v) = tuple.value(rp).as_definite() {
            r_index.entry(v).or_default().push(i);
        }
    }
    let r_tuples: Vec<_> = r_rel.iter().collect();
    let mut order: OrderMap = HashMap::new();
    for l_tuple in l_rel.iter() {
        let Some(v) = l_tuple.value(lp).as_definite() else {
            continue;
        };
        let Some(bucket) = r_index.get(v) else {
            continue;
        };
        let l_key = l_tuple.key(&l_schema);
        for &ri in bucket {
            let mut key = l_key.clone();
            key.extend(r_tuples[ri].key(&r_schema));
            let rank = order.len();
            order.entry(key).or_insert(rank);
        }
    }
    drop(r_index);
    drop(r_tuples);
    let partitioner = Partitioner::new(parallelism);
    let slot_by_attr = |rel: &Arc<ExtendedRelation>, pos: usize| -> Arc<Vec<u32>> {
        Arc::new(
            rel.iter()
                .map(|t| match t.value(pos).as_definite() {
                    Some(v) => partitioner.slot_for_key(std::slice::from_ref(v)) as u32,
                    // A non-definite join attribute cannot match any
                    // probe; the shard it lands in is irrelevant.
                    None => 0,
                })
                .collect(),
        )
    };
    let l_slots = slot_by_attr(&l_rel, lp);
    let r_slots = slot_by_attr(&r_rel, rp);
    let shards = (0..parallelism)
        .map(|shard| -> Result<Box<dyn Operator>, PlanError> {
            Ok(Box::new(HashJoinOp::new(
                shard_filter_chain(left, &l_rel, partitioner, shard, &l_slots)?,
                shard_filter_chain(right, &r_rel, partitioner, shard, &r_slots)?,
                predicate.clone(),
                *threshold,
                lp,
                rp,
            )?))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Some(Box::new(ExchangeOp::with_partition_label(
        shards,
        order,
        format!(
            "hash({} = {}) partition",
            l_schema.attr(lp).name(),
            r_schema.attr(rp).name()
        ),
    )?)))
}

/// Optimize and execute a plan, materializing the result. Side
/// outputs (conflict reports, κ stats) accumulate in `ctx`, and
/// [`ExecContext::parallelism`] governs whether shardable fragments
/// run through an exchange.
///
/// # Errors
/// Plan-build and operator errors.
pub fn execute_plan(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    ctx: &mut ExecContext,
) -> Result<ExtendedRelation, PlanError> {
    let (optimized, _) = optimize(plan, source);
    let options = ctx.union_options.clone();
    let mut op = physical_with(&optimized, source, &options, ctx.parallelism)?;
    run(op.as_mut(), ctx)
}

/// Execute an **already optimized** plan, skipping the rewrite pass —
/// the fast path for prepared plans: callers that cached the output
/// of [`crate::optimize`] (keyed by catalog generation, so the plan
/// still matches the bindings) lower and execute it directly,
/// amortizing the per-query optimizer cost across re-executions.
///
/// # Errors
/// As [`execute_plan`], minus rewrite-stage errors (there is no
/// rewrite stage).
pub fn execute_optimized(
    optimized: &LogicalPlan,
    source: &dyn RelationSource,
    ctx: &mut ExecContext,
) -> Result<ExtendedRelation, PlanError> {
    let options = ctx.union_options.clone();
    let mut op = physical_with(optimized, source, &options, ctx.parallelism)?;
    run(op.as_mut(), ctx)
}

/// One operator's row accounting from a metered execution: what the
/// cost model predicted vs what the operator actually emitted. The
/// slow-query log attaches these so planner mis-estimates are visible
/// in production, not just under `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMeter {
    /// The operator's `describe()` line.
    pub describe: String,
    /// Cost-model row estimate; `None` when statistics were
    /// unavailable for this node.
    pub est_rows: Option<u64>,
    /// Rows the operator actually emitted.
    pub actual_rows: u64,
}

/// Collect every metered node under `op`, pre-order (root first).
pub fn collect_meters(op: &dyn Operator, out: &mut Vec<OpMeter>) {
    if let Some((est_rows, actual_rows)) = op.metered() {
        out.push(OpMeter {
            describe: op.describe(),
            est_rows,
            actual_rows,
        });
    }
    for child in op.children() {
        collect_meters(child, out);
    }
}

/// [`execute_optimized`] with every operator wrapped in a row meter
/// (the `EXPLAIN ANALYZE` machinery), returning the per-operator
/// est-vs-actual counts alongside the result. Metering is observation
/// only: [`MeteredOp`] passes tuples through untouched, so the result
/// is identical to the unmetered path — the slow-query log relies on
/// that to instrument production queries without changing them.
///
/// # Errors
/// As [`execute_optimized`].
pub fn execute_optimized_metered(
    optimized: &LogicalPlan,
    source: &dyn RelationSource,
    ctx: &mut ExecContext,
) -> Result<(ExtendedRelation, Vec<OpMeter>), PlanError> {
    let options = ctx.union_options.clone();
    let mut op = physical_impl(optimized, source, &options, ctx.parallelism, true)?;
    let rel = run(op.as_mut(), ctx)?;
    let mut meters = Vec::new();
    collect_meters(op.as_ref(), &mut meters);
    Ok((rel, meters))
}

/// Optimize and lower a plan into an operator tree without running it
/// — for callers that want to pull tuples themselves.
///
/// # Errors
/// As [`execute_plan`], minus execution.
pub fn open_plan(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<Box<dyn Operator>, PlanError> {
    let (optimized, _) = optimize(plan, source);
    physical(&optimized, source, options)
}

/// Render the full `EXPLAIN`: logical tree, fired rewrites, optimized
/// tree, physical operator tree.
///
/// # Errors
/// Plan-build errors (the physical tree must be constructible).
pub fn explain_plan(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<String, PlanError> {
    explain_plan_with(plan, source, options, 1)
}

/// [`explain_plan`] with a thread budget, so the physical section
/// shows exchange nodes exactly as [`execute_plan`] would build them
/// at that parallelism.
///
/// # Errors
/// As [`explain_plan`].
pub fn explain_plan_with(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    parallelism: usize,
) -> Result<String, PlanError> {
    let (optimized, fired) = optimize(plan, source);
    let op = physical_with(&optimized, source, options, parallelism)?;
    Ok(render_explain(plan, &optimized, &fired, op.as_ref(), None))
}

/// `EXPLAIN` with *actual* row counts: build the physical tree with
/// every operator wrapped in a row meter, execute the plan to
/// completion (side outputs land in `ctx` exactly as
/// [`execute_plan`]'s would), and render each physical line with its
/// `[est≈N act=M]` suffix — estimates from the cost model (`est=?`
/// when statistics are unavailable), actuals from the meters. When
/// execution fails the tree is still rendered (meters show rows
/// emitted up to the failure) with the error appended.
///
/// # Errors
/// Plan-build errors; *execution* errors are folded into the rendered
/// text instead, so a failing query still explains itself.
pub fn explain_analyze_with(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    ctx: &mut ExecContext,
) -> Result<String, PlanError> {
    let (optimized, fired) = optimize(plan, source);
    let options = ctx.union_options.clone();
    let mut op = physical_impl(&optimized, source, &options, ctx.parallelism, true)?;
    let run_error = run(op.as_mut(), ctx).err();
    Ok(render_explain(
        plan,
        &optimized,
        &fired,
        op.as_ref(),
        run_error,
    ))
}

fn render_explain(
    plan: &LogicalPlan,
    optimized: &LogicalPlan,
    fired: &[Rewrite],
    op: &dyn Operator,
    run_error: Option<PlanError>,
) -> String {
    let mut out = String::new();
    out.push_str("logical:\n");
    push_indented(&mut out, &plan.render());
    out.push_str("rewrites:\n");
    if fired.is_empty() {
        out.push_str("  (none)\n");
    } else {
        for rewrite in fired {
            out.push_str(&format!("  - {rewrite}\n"));
        }
    }
    out.push_str("optimized:\n");
    push_indented(&mut out, &optimized.render());
    out.push_str("physical:\n");
    push_indented(&mut out, &crate::ops::render_physical(op));
    if let Some(e) = run_error {
        out.push_str(&format!("execution failed: {e}\n"));
    }
    out
}

/// The rewrites [`optimize`] would apply, without executing anything.
pub fn planned_rewrites(plan: &LogicalPlan, source: &dyn RelationSource) -> Vec<Rewrite> {
    optimize(plan, source).1
}

fn push_indented(out: &mut String, text: &str) {
    for line in text.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{scan, Bindings};
    use evirel_algebra::{Operand, ThetaOp};
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, Value, ValueKind};
    use std::sync::Arc;

    fn bindings() -> Bindings {
        let d = Arc::new(AttrDomain::categorical("spec", ["mu", "it"]).unwrap());
        let r_schema = Arc::new(
            Schema::builder("R")
                .key_str("rname")
                .evidential("spec", d)
                .build()
                .unwrap(),
        );
        let r = RelationBuilder::new(r_schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_evidence("spec", [(&["mu"][..], 0.8), (&["it"][..], 0.2)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "olive")
                    .set_evidence("spec", [(&["it"][..], 1.0)])
            })
            .unwrap()
            .build();
        let m_schema = Arc::new(
            Schema::builder("RM")
                .key_str("rname")
                .definite("mname", ValueKind::Str)
                .build()
                .unwrap(),
        );
        let m = RelationBuilder::new(m_schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_str("mname", "alice")
                    .membership_pair(0.9, 1.0)
            })
            .unwrap()
            .tuple(|t| t.set_str("rname", "wok").set_str("mname", "bob"))
            .unwrap()
            .build();
        let mut b = Bindings::new();
        b.bind("r", r).bind("rm", m);
        b
    }

    #[test]
    fn join_runs_as_hash_join() {
        let b = bindings();
        let on = Predicate::theta(
            Operand::attr("R.rname"),
            ThetaOp::Eq,
            Operand::attr("RM.rname"),
        );
        let plan = scan("r").join(scan("rm"), on).build();
        let text = explain_plan(&plan, &b, &UnionOptions::default()).unwrap();
        assert!(text.contains("hash rname = rname"), "{text}");
        assert!(text.contains("join-expansion"), "{text}");
        let mut ctx = ExecContext::new();
        let out = execute_plan(&plan, &b, &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        let t = out
            .get_by_key(&[Value::str("mehl"), Value::str("mehl")])
            .unwrap();
        assert!((t.membership().sn() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn non_equi_join_falls_back_to_product_select() {
        let b = bindings();
        let on = Predicate::theta(
            Operand::attr("R.rname"),
            ThetaOp::Ne,
            Operand::attr("RM.rname"),
        );
        let plan = scan("r").join(scan("rm"), on).build();
        let text = explain_plan(&plan, &b, &UnionOptions::default()).unwrap();
        assert!(!text.contains("hash"), "{text}");
        assert!(text.contains("×̃"), "{text}");
        let mut ctx = ExecContext::new();
        let out = execute_plan(&plan, &b, &mut ctx).unwrap();
        // mehl–wok, olive–mehl, olive–wok survive the ≠ predicate.
        assert_eq!(out.len(), 3);
    }

    /// End to end through the planner: at parallelism 4 a ∪̃ pipeline
    /// is wrapped in an exchange, EXPLAIN renders the exchange node,
    /// and execution at 2/4/8 threads reproduces the sequential
    /// result bit for bit — relation, insertion order, stats, and
    /// conflict-report observation order.
    #[test]
    fn parallel_union_builds_exchange_and_matches_sequential() {
        use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
        let (ga, gb) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples: 600,
                seed: 7,
                ..Default::default()
            },
            key_overlap: 0.5,
            conflict_bias: 0.3,
        })
        .unwrap();
        let mut b = Bindings::new();
        b.bind("ga", ga).bind("gb", gb);
        let plan = scan("ga")
            .union(scan("gb"))
            .select(Predicate::is("e0", ["v0", "v1"]))
            .project(["k", "e0"])
            .build();
        let options = UnionOptions {
            on_total_conflict: evirel_algebra::ConflictPolicy::Vacuous,
            ..Default::default()
        };

        let text = explain_plan_with(&plan, &b, &options, 4).unwrap();
        assert!(text.contains("⇄ exchange (4 threads"), "{text}");
        assert!(text.contains("shard 0/4"), "{text}");
        // At parallelism 1 the same plan has no exchange node.
        let text = explain_plan(&plan, &b, &options).unwrap();
        assert!(!text.contains("exchange"), "{text}");

        let mut seq_ctx = ExecContext::with_options(options.clone());
        seq_ctx.parallelism = 1;
        let seq = execute_plan(&plan, &b, &mut seq_ctx).unwrap();
        assert!(!seq_ctx.conflict_report().is_empty());
        for threads in [2usize, 4, 8] {
            let mut ctx = ExecContext::with_options(options.clone());
            ctx.parallelism = threads;
            let par = execute_plan(&plan, &b, &mut ctx).unwrap();
            assert!(
                seq.approx_eq(&par),
                "relation diverged at {threads} threads"
            );
            for (s, p) in seq.iter().zip(par.iter()) {
                assert_eq!(s.key(seq.schema()), p.key(par.schema()));
            }
            assert_eq!(
                seq_ctx.stats, ctx.stats,
                "stats diverged at {threads} threads"
            );
            assert_eq!(
                seq_ctx.conflict_report().conflicts(),
                ctx.conflict_report().conflicts(),
                "report diverged at {threads} threads"
            );
        }
    }

    /// A σ̃ below a ∪̃'s *left* subtree makes the left key set
    /// data-dependent: a dropped left key present on the right is
    /// emitted in the right-only phase, which no static order map can
    /// rank. Such fragments must decline the exchange (and stay
    /// sequential-correct); a σ̃ below the *right* subtree only
    /// removes tuples, so it still exchanges.
    #[test]
    fn filter_below_union_left_declines_exchange() {
        use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
        let (ga, gb) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples: 600,
                seed: 11,
                ..Default::default()
            },
            key_overlap: 0.5,
            conflict_bias: 0.0,
        })
        .unwrap();
        let mut b = Bindings::new();
        b.bind("ga", ga).bind("gb", gb);
        let options = UnionOptions::default();

        // Filter on the left: no exchange node anywhere.
        let left_filtered = scan("ga")
            .select(Predicate::is("e0", ["v0", "v1", "v2"]))
            .union(scan("gb"))
            .build();
        let text = explain_plan_with(&left_filtered, &b, &options, 4).unwrap();
        assert!(!text.contains("exchange"), "{text}");
        // Parallel execution (sequential fallback) still matches.
        let mut seq_ctx = ExecContext::with_parallelism(1);
        let seq = execute_plan(&left_filtered, &b, &mut seq_ctx).unwrap();
        let mut par_ctx = ExecContext::with_parallelism(4);
        let par = execute_plan(&left_filtered, &b, &mut par_ctx).unwrap();
        assert!(seq.approx_eq(&par));
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.key(seq.schema()), p.key(par.schema()));
        }

        // The same filter on the right subtree keeps the exchange and
        // stays bit-for-bit with sequential.
        let right_filtered = scan("ga")
            .union(scan("gb").select(Predicate::is("e0", ["v0", "v1", "v2"])))
            .build();
        let text = explain_plan_with(&right_filtered, &b, &options, 4).unwrap();
        assert!(text.contains("⇄ exchange (4 threads"), "{text}");
        let mut seq_ctx = ExecContext::with_parallelism(1);
        let seq = execute_plan(&right_filtered, &b, &mut seq_ctx).unwrap();
        let mut par_ctx = ExecContext::with_parallelism(4);
        let par = execute_plan(&right_filtered, &b, &mut par_ctx).unwrap();
        assert!(seq.approx_eq(&par));
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.key(seq.schema()), p.key(par.schema()));
        }
    }

    /// A π̃ that permutes a composite key's attribute order would make
    /// emitted keys miss the order map, so the exchange is built
    /// *below* the projection instead of above it — parallel order
    /// stays sequential-exact either way.
    #[test]
    fn key_permuting_projection_pushes_exchange_below() {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap());
        let schema = |name: &str| {
            Arc::new(
                Schema::builder(name)
                    .key_str("k1")
                    .key_str("k2")
                    .evidential("d", Arc::clone(&d))
                    .build()
                    .unwrap(),
            )
        };
        let mut a = RelationBuilder::new(schema("A"));
        let mut b = RelationBuilder::new(schema("B"));
        for i in 0..400 {
            let label = ["x", "y", "z"][i % 3];
            a = a
                .tuple(|t| {
                    t.set_str("k1", format!("a-{i}"))
                        .set_str("k2", format!("b-{}", i / 2))
                        .set_evidence_with_omega("d", [(&[label][..], 0.6)], 0.4)
                })
                .unwrap();
            if i % 2 == 0 {
                b = b
                    .tuple(|t| {
                        t.set_str("k1", format!("a-{i}"))
                            .set_str("k2", format!("b-{}", i / 2))
                            .set_evidence_with_omega("d", [(&["x"][..], 0.5)], 0.5)
                    })
                    .unwrap();
            }
        }
        let mut bindings = Bindings::new();
        bindings.bind("a", a.build()).bind("b", b.build());
        let plan = scan("a")
            .union(scan("b"))
            .project(["k2", "k1", "d"]) // key attrs swapped
            .build();
        let options = UnionOptions::default();
        let text = explain_plan_with(&plan, &bindings, &options, 4).unwrap();
        // Exchange present, but *under* the projection.
        let pi_line = text.lines().position(|l| l.contains("π̃")).unwrap();
        let ex_line = text
            .lines()
            .position(|l| l.contains("⇄ exchange"))
            .expect("exchange still built below the projection");
        assert!(ex_line > pi_line, "{text}");
        let mut seq_ctx = ExecContext::with_parallelism(1);
        let seq = execute_plan(&plan, &bindings, &mut seq_ctx).unwrap();
        let mut par_ctx = ExecContext::with_parallelism(4);
        let par = execute_plan(&plan, &bindings, &mut par_ctx).unwrap();
        assert!(seq.approx_eq(&par));
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.key(seq.schema()), p.key(par.schema()));
        }
        assert_eq!(seq_ctx.stats, par_ctx.stats);
    }

    /// A large equality ⋈̃ at parallelism 4 runs through the
    /// join-attribute-partitioned exchange (stats on) and reproduces
    /// the sequential output bit for bit, stats included.
    #[test]
    fn parallel_join_partitions_by_join_attribute() {
        use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
        let (ga, gb) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples: 600,
                seed: 13,
                ..Default::default()
            },
            key_overlap: 0.5,
            conflict_bias: 0.0,
        })
        .unwrap();
        let mut b = Bindings::new();
        b.bind("ga", ga).bind("gb", gb);
        let on = Predicate::theta(Operand::attr("GA.k"), ThetaOp::Eq, Operand::attr("GB.k"));
        let plan = scan("ga").join(scan("gb"), on).build();
        let options = UnionOptions::default();
        let text = explain_plan_with(&plan, &b, &options, 4).unwrap();
        if crate::cost::stats_enabled() {
            assert!(
                text.contains("⇄ exchange (4 threads, hash(k = k) partition"),
                "{text}"
            );
        } else {
            assert!(!text.contains("exchange"), "{text}");
        }
        let mut seq_ctx = ExecContext::with_parallelism(1);
        let seq = execute_plan(&plan, &b, &mut seq_ctx).unwrap();
        assert!(!seq.is_empty());
        let mut par_ctx = ExecContext::with_parallelism(4);
        let par = execute_plan(&plan, &b, &mut par_ctx).unwrap();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.values(), p.values());
            assert_eq!(s.membership().sn().to_bits(), p.membership().sn().to_bits());
        }
        assert_eq!(seq_ctx.stats, par_ctx.stats);
    }

    /// `EXPLAIN`-analyze executes the plan and annotates every
    /// physical line with estimated vs actual row counts.
    #[test]
    fn explain_analyze_shows_estimates_and_actuals() {
        let b = bindings();
        let plan = scan("r")
            .select(Predicate::is("spec", ["mu"]))
            .project(["rname", "spec"])
            .build();
        let mut ctx = ExecContext::new();
        let text = explain_analyze_with(&plan, &b, &mut ctx).unwrap();
        assert!(text.contains("physical:"), "{text}");
        assert!(text.contains("act="), "{text}");
        if crate::cost::stats_enabled() {
            // Bound relations publish stats, so estimates resolve.
            assert!(text.contains("[est≈"), "{text}");
        } else {
            assert!(text.contains("[est=? act="), "{text}");
        }
        // The analyze pass really executed: emitted rows were counted.
        assert!(ctx.stats.tuples_emitted > 0, "{:?}", ctx.stats);
        // The root line shows the actual row count of the result.
        let root = text
            .lines()
            .skip_while(|l| !l.starts_with("physical:"))
            .nth(1)
            .unwrap();
        assert!(root.contains("act=1"), "{root}");
    }

    #[test]
    fn explain_sections_present() {
        let b = bindings();
        let plan = scan("r")
            .select(Predicate::is("spec", ["mu"]))
            .threshold(Threshold::SnAtLeast(0.5))
            .project(["rname", "spec"])
            .build();
        let text = explain_plan(&plan, &b, &UnionOptions::default()).unwrap();
        for section in ["logical:", "rewrites:", "optimized:", "physical:"] {
            assert!(text.contains(section), "{text}");
        }
        assert!(text.contains("threshold-fusion"), "{text}");
    }
}
