//! Physical planning and execution.
//!
//! [`physical`] lowers an (ideally optimized) [`LogicalPlan`] into an
//! [`Operator`] tree; [`execute_plan`] optimizes, builds, and drives
//! it to a materialized relation; [`explain_plan`] renders all three
//! stages — logical tree, fired rewrite rules, optimized tree,
//! physical tree.
//!
//! Physical fusion: a σ̃ directly above a ×̃ whose predicate carries an
//! equality conjunct between definite attributes of opposite sides
//! becomes a [`HashJoinOp`] — the streaming ⋈̃ that builds its key
//! index once and probes it per left tuple.
//!
//! Parallelism: when [`ExecContext::parallelism`] > 1, the largest
//! subtrees whose operators pair tuples by key equality (σ̃, member-
//! ship threshold, π̃, ∪̃, ∩̃, −̃, ρ over scans) and that contain at
//! least one ∪̃/∩̃ merge are wrapped in an
//! [`crate::exchange::ExchangeOp`]: each worker thread runs an
//! identical copy of the subtree over one hash-shard of the scans and
//! the outputs re-merge deterministically — see [`crate::exchange`].

use crate::error::PlanError;
use crate::exchange::{compute_slots, ExchangeOp, OrderMap, ShardScanOp};
use crate::logical::{LogicalPlan, RelationSource};
use crate::ops::{
    run, DempsterMerger, DifferenceOp, HashJoinOp, MergeOp, Operator, ProductOp, ProjectOp,
    RenameOp, ScanOp, SelectOp, ThresholdOp,
};
use crate::rewrite::{optimize, Rewrite};
use crate::ExecContext;
use evirel_algebra::partition::Partitioner;
use evirel_algebra::predicate::Predicate;
use evirel_algebra::threshold::Threshold;
use evirel_algebra::union::UnionOptions;
use evirel_relation::ExtendedRelation;
use std::collections::HashMap;
use std::sync::Arc;

/// Below this many scanned tuples per worker, an exchange cannot pay
/// for its partitioning and re-merge overhead (mirrors the parallel
/// union's fallback in `evirel_algebra::par`).
const MIN_TUPLES_PER_SHARD: usize = 64;

/// Lower a logical plan into a physical operator tree, without
/// optimizing or running it. Single-threaded; see [`physical_with`]
/// for the parallel variant.
///
/// # Errors
/// Unknown relations, invalid projections/renames/thresholds,
/// incompatible schemas.
pub fn physical(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<Box<dyn Operator>, PlanError> {
    physical_with(plan, source, options, 1)
}

/// [`physical`] with an explicit thread budget: parallelizable
/// subtrees are wrapped in an exchange when `parallelism > 1` and the
/// scanned inputs are large enough to amortize it.
///
/// # Errors
/// As [`physical`].
pub fn physical_with(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    parallelism: usize,
) -> Result<Box<dyn Operator>, PlanError> {
    if parallelism > 1
        && shardable(plan)
        && contains_merge(plan)
        && fragment_scan_tuples(plan, source) >= parallelism * MIN_TUPLES_PER_SHARD
    {
        if let Some(op) = build_exchange(plan, source, options, parallelism)? {
            return Ok(op);
        }
    }
    Ok(match plan {
        LogicalPlan::Scan { name } => match source.relation(name) {
            Some(rel) => Box::new(ScanOp::new(name.clone(), rel)),
            // Disk-backed binding: stream pages through the buffer
            // pool instead of requiring a materialized relation.
            None => match source.stored(name) {
                Some(stored) => Box::new(crate::spill::SpillScanOp::new(name.clone(), stored)),
                None => return Err(PlanError::UnknownRelation { name: name.clone() }),
            },
        },
        LogicalPlan::Select {
            input,
            predicate,
            threshold,
        } => {
            if let LogicalPlan::Product { left, right } = &**input {
                return build_join(
                    left,
                    right,
                    predicate,
                    threshold,
                    source,
                    options,
                    parallelism,
                );
            }
            Box::new(SelectOp::new(
                physical_with(input, source, options, parallelism)?,
                predicate.clone(),
                *threshold,
            )?)
        }
        LogicalPlan::ThresholdFilter { input, threshold } => Box::new(ThresholdOp::new(
            physical_with(input, source, options, parallelism)?,
            *threshold,
        )?),
        LogicalPlan::Project { input, attrs } => Box::new(ProjectOp::new(
            physical_with(input, source, options, parallelism)?,
            attrs,
        )?),
        LogicalPlan::Product { left, right } => Box::new(ProductOp::new(
            physical_with(left, source, options, parallelism)?,
            physical_with(right, source, options, parallelism)?,
        )?),
        LogicalPlan::Join {
            left,
            right,
            on,
            threshold,
        } => return build_join(left, right, on, threshold, source, options, parallelism),
        LogicalPlan::Union { left, right } => Box::new(MergeOp::union(
            physical_with(left, source, options, parallelism)?,
            physical_with(right, source, options, parallelism)?,
            Box::new(DempsterMerger::new(options.clone())),
        )?),
        LogicalPlan::Intersect { left, right } => Box::new(MergeOp::intersect(
            physical_with(left, source, options, parallelism)?,
            physical_with(right, source, options, parallelism)?,
            Box::new(DempsterMerger::new(options.clone())),
        )?),
        LogicalPlan::Difference { left, right } => Box::new(DifferenceOp::new(
            physical_with(left, source, options, parallelism)?,
            physical_with(right, source, options, parallelism)?,
        )?),
        LogicalPlan::RenameRelation { input, name } => Box::new(RenameOp::relation(
            physical_with(input, source, options, parallelism)?,
            name,
        )),
        LogicalPlan::RenameAttribute { input, from, to } => Box::new(RenameOp::attribute(
            physical_with(input, source, options, parallelism)?,
            from,
            to,
        )?),
    })
}

/// Can this whole subtree execute over hash-shards of its scans?
/// True for the key-preserving family: every operator pairs or
/// filters tuples by full-key equality, so routing each key to one
/// shard is semantics-preserving. ×̃/⋈̃ pair *across* keys and stay
/// outside exchange fragments.
fn shardable(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Select { input, .. }
        | LogicalPlan::ThresholdFilter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::RenameRelation { input, .. }
        | LogicalPlan::RenameAttribute { input, .. } => shardable(input),
        LogicalPlan::Union { left, right }
        | LogicalPlan::Intersect { left, right }
        | LogicalPlan::Difference { left, right } => shardable(left) && shardable(right),
        LogicalPlan::Product { .. } | LogicalPlan::Join { .. } => false,
    }
}

/// Does the subtree contain a ∪̃/∩̃ merge? Dempster combination is
/// what dominates merge cost, so only fragments that merge are worth
/// an exchange.
fn contains_merge(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Union { .. } | LogicalPlan::Intersect { .. } => true,
        LogicalPlan::Scan { .. } => false,
        LogicalPlan::Select { input, .. }
        | LogicalPlan::ThresholdFilter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::RenameRelation { input, .. }
        | LogicalPlan::RenameAttribute { input, .. } => contains_merge(input),
        LogicalPlan::Difference { left, right } | LogicalPlan::Product { left, right } => {
            contains_merge(left) || contains_merge(right)
        }
        LogicalPlan::Join { left, right, .. } => contains_merge(left) || contains_merge(right),
    }
}

/// Total tuples the fragment's scan leaves would produce.
fn fragment_scan_tuples(plan: &LogicalPlan, source: &dyn RelationSource) -> usize {
    match plan {
        LogicalPlan::Scan { name } => source
            .relation(name)
            .map(|rel| rel.len())
            .or_else(|| source.stored(name).map(|s| s.len()))
            .unwrap_or(0),
        LogicalPlan::Select { input, .. }
        | LogicalPlan::ThresholdFilter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::RenameRelation { input, .. }
        | LogicalPlan::RenameAttribute { input, .. } => fragment_scan_tuples(input, source),
        LogicalPlan::Union { left, right }
        | LogicalPlan::Intersect { left, right }
        | LogicalPlan::Difference { left, right }
        | LogicalPlan::Product { left, right } => {
            fragment_scan_tuples(left, source) + fragment_scan_tuples(right, source)
        }
        LogicalPlan::Join { left, right, .. } => {
            fragment_scan_tuples(left, source) + fragment_scan_tuples(right, source)
        }
    }
}

/// The static emission-order domain of a shardable fragment: every
/// key it can emit, in sequential emission order, plus whether the
/// key *set* is exact (no data-dependent filtering below).
struct EmitDomain {
    /// Keys in the order the sequential plan would emit them.
    order: Vec<Vec<evirel_relation::Value>>,
    /// The same keys, for membership tests.
    set: std::collections::HashSet<Vec<evirel_relation::Value>>,
    /// `false` when a σ̃/threshold below makes the emitted key set a
    /// data-dependent subset of `order`.
    exact: bool,
}

/// Compute the emit domain, or `None` when no static order can be
/// guaranteed to match sequential emission — then the fragment is not
/// exchanged (the planner recurses and may still exchange a subtree):
///
/// * a ∪̃ whose *left* subtree has an inexact key set: a left key
///   dropped at runtime but present on the right would be emitted in
///   the right-only phase, while any static map ranks it in the left
///   block (filters on the *right* subtree are fine — dropped right
///   keys are simply absent, which cannot reorder survivors);
/// * a π̃ that permutes key attributes: the re-merge ranks tuples by
///   their emitted key, which must align positionally with the scan
///   keys the map was built from.
fn emit_domain(plan: &LogicalPlan, source: &dyn RelationSource) -> Option<EmitDomain> {
    match plan {
        LogicalPlan::Scan { name } => {
            // Stored (disk-backed) bindings decline the exchange:
            // computing their emit domain would require a full scan up
            // front, defeating the point of paging. They run through
            // the sequential spill scan instead (still streaming).
            let rel = source.relation(name)?;
            let order: Vec<_> = rel.iter_keyed().map(|(key, _)| key).collect();
            let set = order.iter().cloned().collect();
            Some(EmitDomain {
                order,
                set,
                exact: true,
            })
        }
        LogicalPlan::Select { input, .. } | LogicalPlan::ThresholdFilter { input, .. } => {
            let mut domain = emit_domain(input, source)?;
            domain.exact = false;
            Some(domain)
        }
        LogicalPlan::Project { input, .. } => {
            let key_names = |schema: &evirel_relation::Schema| -> Vec<String> {
                schema
                    .key_positions()
                    .iter()
                    .map(|&p| schema.attr(p).name().to_owned())
                    .collect()
            };
            let in_schema = crate::logical::schema_of(input, source).ok()?;
            let out_schema = crate::logical::schema_of(plan, source).ok()?;
            if key_names(&in_schema) != key_names(&out_schema) {
                return None;
            }
            emit_domain(input, source)
        }
        LogicalPlan::RenameRelation { input, .. } | LogicalPlan::RenameAttribute { input, .. } => {
            emit_domain(input, source)
        }
        LogicalPlan::Union { left, right } => {
            let l = emit_domain(left, source)?;
            if !l.exact {
                return None;
            }
            let r = emit_domain(right, source)?;
            let mut order = l.order;
            order.extend(r.order.into_iter().filter(|k| !l.set.contains(k)));
            let mut set = l.set;
            set.extend(r.set);
            Some(EmitDomain {
                order,
                set,
                exact: r.exact,
            })
        }
        LogicalPlan::Intersect { left, right } => {
            let l = emit_domain(left, source)?;
            let r = emit_domain(right, source)?;
            let order: Vec<_> = l.order.into_iter().filter(|k| r.set.contains(k)).collect();
            let set = order.iter().cloned().collect();
            Some(EmitDomain {
                order,
                set,
                exact: l.exact && r.exact,
            })
        }
        LogicalPlan::Difference { left, right } => {
            let l = emit_domain(left, source)?;
            let r = emit_domain(right, source)?;
            // An inexact right set under −̃ *adds* emitted keys
            // relative to the static order: a right key dropped at
            // runtime no longer subtracts its left partner, which the
            // map below never ranked. No static order can cover that,
            // so decline the exchange here (the planner recurses and
            // may still exchange the subtrees). An inexact LEFT only
            // removes emitted keys, which cannot reorder survivors.
            if !r.exact {
                return None;
            }
            let order: Vec<_> = l.order.into_iter().filter(|k| !r.set.contains(k)).collect();
            let set = order.iter().cloned().collect();
            Some(EmitDomain {
                order,
                set,
                exact: l.exact,
            })
        }
        LogicalPlan::Product { .. } | LogicalPlan::Join { .. } => None,
    }
}

/// Wrap a shardable fragment in an exchange: N identical shard plans
/// over [`ShardScanOp`] leaves (sharing one precomputed slot table
/// per scanned relation) plus the emit-domain order map. `Ok(None)`
/// when [`emit_domain`] cannot guarantee sequential emission order —
/// the caller then plans this node sequentially and recurses.
fn build_exchange(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    threads: usize,
) -> Result<Option<Box<dyn Operator>>, PlanError> {
    let Some(domain) = emit_domain(plan, source) else {
        return Ok(None);
    };
    let order: OrderMap = domain
        .order
        .into_iter()
        .enumerate()
        .map(|(rank, key)| (key, rank))
        .collect();
    let partitioner = Partitioner::new(threads);
    let mut slot_tables: HashMap<String, Arc<Vec<u32>>> = HashMap::new();
    let shards = (0..threads)
        .map(|shard| physical_shard(plan, source, options, partitioner, shard, &mut slot_tables))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Some(Box::new(ExchangeOp::new(shards, order)?)))
}

/// [`physical`] restricted to the shardable family, with scan leaves
/// replaced by [`ShardScanOp`]s of one shard. `slot_tables` caches
/// one precomputed slot table per scanned relation so N shards hash
/// every key once, not N times.
fn physical_shard(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    partitioner: Partitioner,
    shard: usize,
    slot_tables: &mut HashMap<String, Arc<Vec<u32>>>,
) -> Result<Box<dyn Operator>, PlanError> {
    let mut build = |input| physical_shard(input, source, options, partitioner, shard, slot_tables);
    Ok(match plan {
        LogicalPlan::Scan { name } => {
            let rel = source
                .relation(name)
                .ok_or_else(|| PlanError::UnknownRelation { name: name.clone() })?;
            let slots = slot_tables
                .entry(name.clone())
                .or_insert_with(|| compute_slots(&rel, partitioner, None));
            Box::new(ShardScanOp::with_slots(
                name.clone(),
                rel,
                partitioner,
                shard,
                Arc::clone(slots),
            ))
        }
        LogicalPlan::Select {
            input,
            predicate,
            threshold,
        } => Box::new(SelectOp::new(build(input)?, predicate.clone(), *threshold)?),
        LogicalPlan::ThresholdFilter { input, threshold } => {
            Box::new(ThresholdOp::new(build(input)?, *threshold)?)
        }
        LogicalPlan::Project { input, attrs } => Box::new(ProjectOp::new(build(input)?, attrs)?),
        LogicalPlan::Union { left, right } => Box::new(MergeOp::union(
            build(left)?,
            build(right)?,
            Box::new(DempsterMerger::new(options.clone())),
        )?),
        LogicalPlan::Intersect { left, right } => Box::new(MergeOp::intersect(
            build(left)?,
            build(right)?,
            Box::new(DempsterMerger::new(options.clone())),
        )?),
        LogicalPlan::Difference { left, right } => {
            Box::new(DifferenceOp::new(build(left)?, build(right)?)?)
        }
        LogicalPlan::RenameRelation { input, name } => {
            Box::new(RenameOp::relation(build(input)?, name))
        }
        LogicalPlan::RenameAttribute { input, from, to } => {
            Box::new(RenameOp::attribute(build(input)?, from, to)?)
        }
        LogicalPlan::Product { .. } | LogicalPlan::Join { .. } => {
            return Err(PlanError::Pairing {
                reason: "×̃/⋈̃ cannot appear inside an exchange fragment".to_owned(),
            })
        }
    })
}

fn build_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    predicate: &Predicate,
    threshold: &Threshold,
    source: &dyn RelationSource,
    options: &UnionOptions,
    parallelism: usize,
) -> Result<Box<dyn Operator>, PlanError> {
    let left_op = physical_with(left, source, options, parallelism)?;
    let right_op = physical_with(right, source, options, parallelism)?;
    let product_schema =
        evirel_algebra::product::product_schema(left_op.schema(), right_op.schema())?;
    match HashJoinOp::indexable_conjunct(
        predicate,
        left_op.schema(),
        right_op.schema(),
        &product_schema,
    ) {
        Some((lp, rp)) => Ok(Box::new(HashJoinOp::new(
            left_op,
            right_op,
            predicate.clone(),
            *threshold,
            lp,
            rp,
        )?)),
        None => Ok(Box::new(SelectOp::new(
            Box::new(ProductOp::new(left_op, right_op)?),
            predicate.clone(),
            *threshold,
        )?)),
    }
}

/// Optimize and execute a plan, materializing the result. Side
/// outputs (conflict reports, κ stats) accumulate in `ctx`, and
/// [`ExecContext::parallelism`] governs whether shardable fragments
/// run through an exchange.
///
/// # Errors
/// Plan-build and operator errors.
pub fn execute_plan(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    ctx: &mut ExecContext,
) -> Result<ExtendedRelation, PlanError> {
    let (optimized, _) = optimize(plan, source);
    let options = ctx.union_options.clone();
    let mut op = physical_with(&optimized, source, &options, ctx.parallelism)?;
    run(op.as_mut(), ctx)
}

/// Execute an **already optimized** plan, skipping the rewrite pass —
/// the fast path for prepared plans: callers that cached the output
/// of [`crate::optimize`] (keyed by catalog generation, so the plan
/// still matches the bindings) lower and execute it directly,
/// amortizing the per-query optimizer cost across re-executions.
///
/// # Errors
/// As [`execute_plan`], minus rewrite-stage errors (there is no
/// rewrite stage).
pub fn execute_optimized(
    optimized: &LogicalPlan,
    source: &dyn RelationSource,
    ctx: &mut ExecContext,
) -> Result<ExtendedRelation, PlanError> {
    let options = ctx.union_options.clone();
    let mut op = physical_with(optimized, source, &options, ctx.parallelism)?;
    run(op.as_mut(), ctx)
}

/// Optimize and lower a plan into an operator tree without running it
/// — for callers that want to pull tuples themselves.
///
/// # Errors
/// As [`execute_plan`], minus execution.
pub fn open_plan(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<Box<dyn Operator>, PlanError> {
    let (optimized, _) = optimize(plan, source);
    physical(&optimized, source, options)
}

/// Render the full `EXPLAIN`: logical tree, fired rewrites, optimized
/// tree, physical operator tree.
///
/// # Errors
/// Plan-build errors (the physical tree must be constructible).
pub fn explain_plan(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<String, PlanError> {
    explain_plan_with(plan, source, options, 1)
}

/// [`explain_plan`] with a thread budget, so the physical section
/// shows exchange nodes exactly as [`execute_plan`] would build them
/// at that parallelism.
///
/// # Errors
/// As [`explain_plan`].
pub fn explain_plan_with(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    parallelism: usize,
) -> Result<String, PlanError> {
    let (optimized, fired) = optimize(plan, source);
    let op = physical_with(&optimized, source, options, parallelism)?;
    let mut out = String::new();
    out.push_str("logical:\n");
    push_indented(&mut out, &plan.render());
    out.push_str("rewrites:\n");
    if fired.is_empty() {
        out.push_str("  (none)\n");
    } else {
        for rewrite in &fired {
            out.push_str(&format!("  - {rewrite}\n"));
        }
    }
    out.push_str("optimized:\n");
    push_indented(&mut out, &optimized.render());
    out.push_str("physical:\n");
    push_indented(&mut out, &crate::ops::render_physical(op.as_ref()));
    Ok(out)
}

/// The rewrites [`optimize`] would apply, without executing anything.
pub fn planned_rewrites(plan: &LogicalPlan, source: &dyn RelationSource) -> Vec<Rewrite> {
    optimize(plan, source).1
}

fn push_indented(out: &mut String, text: &str) {
    for line in text.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{scan, Bindings};
    use evirel_algebra::{Operand, ThetaOp};
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, Value, ValueKind};
    use std::sync::Arc;

    fn bindings() -> Bindings {
        let d = Arc::new(AttrDomain::categorical("spec", ["mu", "it"]).unwrap());
        let r_schema = Arc::new(
            Schema::builder("R")
                .key_str("rname")
                .evidential("spec", d)
                .build()
                .unwrap(),
        );
        let r = RelationBuilder::new(r_schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_evidence("spec", [(&["mu"][..], 0.8), (&["it"][..], 0.2)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "olive")
                    .set_evidence("spec", [(&["it"][..], 1.0)])
            })
            .unwrap()
            .build();
        let m_schema = Arc::new(
            Schema::builder("RM")
                .key_str("rname")
                .definite("mname", ValueKind::Str)
                .build()
                .unwrap(),
        );
        let m = RelationBuilder::new(m_schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_str("mname", "alice")
                    .membership_pair(0.9, 1.0)
            })
            .unwrap()
            .tuple(|t| t.set_str("rname", "wok").set_str("mname", "bob"))
            .unwrap()
            .build();
        let mut b = Bindings::new();
        b.bind("r", r).bind("rm", m);
        b
    }

    #[test]
    fn join_runs_as_hash_join() {
        let b = bindings();
        let on = Predicate::theta(
            Operand::attr("R.rname"),
            ThetaOp::Eq,
            Operand::attr("RM.rname"),
        );
        let plan = scan("r").join(scan("rm"), on).build();
        let text = explain_plan(&plan, &b, &UnionOptions::default()).unwrap();
        assert!(text.contains("hash rname = rname"), "{text}");
        assert!(text.contains("join-expansion"), "{text}");
        let mut ctx = ExecContext::new();
        let out = execute_plan(&plan, &b, &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        let t = out
            .get_by_key(&[Value::str("mehl"), Value::str("mehl")])
            .unwrap();
        assert!((t.membership().sn() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn non_equi_join_falls_back_to_product_select() {
        let b = bindings();
        let on = Predicate::theta(
            Operand::attr("R.rname"),
            ThetaOp::Ne,
            Operand::attr("RM.rname"),
        );
        let plan = scan("r").join(scan("rm"), on).build();
        let text = explain_plan(&plan, &b, &UnionOptions::default()).unwrap();
        assert!(!text.contains("hash"), "{text}");
        assert!(text.contains("×̃"), "{text}");
        let mut ctx = ExecContext::new();
        let out = execute_plan(&plan, &b, &mut ctx).unwrap();
        // mehl–wok, olive–mehl, olive–wok survive the ≠ predicate.
        assert_eq!(out.len(), 3);
    }

    /// End to end through the planner: at parallelism 4 a ∪̃ pipeline
    /// is wrapped in an exchange, EXPLAIN renders the exchange node,
    /// and execution at 2/4/8 threads reproduces the sequential
    /// result bit for bit — relation, insertion order, stats, and
    /// conflict-report observation order.
    #[test]
    fn parallel_union_builds_exchange_and_matches_sequential() {
        use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
        let (ga, gb) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples: 600,
                seed: 7,
                ..Default::default()
            },
            key_overlap: 0.5,
            conflict_bias: 0.3,
        })
        .unwrap();
        let mut b = Bindings::new();
        b.bind("ga", ga).bind("gb", gb);
        let plan = scan("ga")
            .union(scan("gb"))
            .select(Predicate::is("e0", ["v0", "v1"]))
            .project(["k", "e0"])
            .build();
        let options = UnionOptions {
            on_total_conflict: evirel_algebra::ConflictPolicy::Vacuous,
            ..Default::default()
        };

        let text = explain_plan_with(&plan, &b, &options, 4).unwrap();
        assert!(text.contains("⇄ exchange (4 threads"), "{text}");
        assert!(text.contains("shard 0/4"), "{text}");
        // At parallelism 1 the same plan has no exchange node.
        let text = explain_plan(&plan, &b, &options).unwrap();
        assert!(!text.contains("exchange"), "{text}");

        let mut seq_ctx = ExecContext::with_options(options.clone());
        seq_ctx.parallelism = 1;
        let seq = execute_plan(&plan, &b, &mut seq_ctx).unwrap();
        assert!(!seq_ctx.conflict_report().is_empty());
        for threads in [2usize, 4, 8] {
            let mut ctx = ExecContext::with_options(options.clone());
            ctx.parallelism = threads;
            let par = execute_plan(&plan, &b, &mut ctx).unwrap();
            assert!(
                seq.approx_eq(&par),
                "relation diverged at {threads} threads"
            );
            for (s, p) in seq.iter().zip(par.iter()) {
                assert_eq!(s.key(seq.schema()), p.key(par.schema()));
            }
            assert_eq!(
                seq_ctx.stats, ctx.stats,
                "stats diverged at {threads} threads"
            );
            assert_eq!(
                seq_ctx.conflict_report().conflicts(),
                ctx.conflict_report().conflicts(),
                "report diverged at {threads} threads"
            );
        }
    }

    /// A σ̃ below a ∪̃'s *left* subtree makes the left key set
    /// data-dependent: a dropped left key present on the right is
    /// emitted in the right-only phase, which no static order map can
    /// rank. Such fragments must decline the exchange (and stay
    /// sequential-correct); a σ̃ below the *right* subtree only
    /// removes tuples, so it still exchanges.
    #[test]
    fn filter_below_union_left_declines_exchange() {
        use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};
        let (ga, gb) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples: 600,
                seed: 11,
                ..Default::default()
            },
            key_overlap: 0.5,
            conflict_bias: 0.0,
        })
        .unwrap();
        let mut b = Bindings::new();
        b.bind("ga", ga).bind("gb", gb);
        let options = UnionOptions::default();

        // Filter on the left: no exchange node anywhere.
        let left_filtered = scan("ga")
            .select(Predicate::is("e0", ["v0", "v1", "v2"]))
            .union(scan("gb"))
            .build();
        let text = explain_plan_with(&left_filtered, &b, &options, 4).unwrap();
        assert!(!text.contains("exchange"), "{text}");
        // Parallel execution (sequential fallback) still matches.
        let mut seq_ctx = ExecContext::with_parallelism(1);
        let seq = execute_plan(&left_filtered, &b, &mut seq_ctx).unwrap();
        let mut par_ctx = ExecContext::with_parallelism(4);
        let par = execute_plan(&left_filtered, &b, &mut par_ctx).unwrap();
        assert!(seq.approx_eq(&par));
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.key(seq.schema()), p.key(par.schema()));
        }

        // The same filter on the right subtree keeps the exchange and
        // stays bit-for-bit with sequential.
        let right_filtered = scan("ga")
            .union(scan("gb").select(Predicate::is("e0", ["v0", "v1", "v2"])))
            .build();
        let text = explain_plan_with(&right_filtered, &b, &options, 4).unwrap();
        assert!(text.contains("⇄ exchange (4 threads"), "{text}");
        let mut seq_ctx = ExecContext::with_parallelism(1);
        let seq = execute_plan(&right_filtered, &b, &mut seq_ctx).unwrap();
        let mut par_ctx = ExecContext::with_parallelism(4);
        let par = execute_plan(&right_filtered, &b, &mut par_ctx).unwrap();
        assert!(seq.approx_eq(&par));
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.key(seq.schema()), p.key(par.schema()));
        }
    }

    /// A π̃ that permutes a composite key's attribute order would make
    /// emitted keys miss the order map, so the exchange is built
    /// *below* the projection instead of above it — parallel order
    /// stays sequential-exact either way.
    #[test]
    fn key_permuting_projection_pushes_exchange_below() {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap());
        let schema = |name: &str| {
            Arc::new(
                Schema::builder(name)
                    .key_str("k1")
                    .key_str("k2")
                    .evidential("d", Arc::clone(&d))
                    .build()
                    .unwrap(),
            )
        };
        let mut a = RelationBuilder::new(schema("A"));
        let mut b = RelationBuilder::new(schema("B"));
        for i in 0..400 {
            let label = ["x", "y", "z"][i % 3];
            a = a
                .tuple(|t| {
                    t.set_str("k1", format!("a-{i}"))
                        .set_str("k2", format!("b-{}", i / 2))
                        .set_evidence_with_omega("d", [(&[label][..], 0.6)], 0.4)
                })
                .unwrap();
            if i % 2 == 0 {
                b = b
                    .tuple(|t| {
                        t.set_str("k1", format!("a-{i}"))
                            .set_str("k2", format!("b-{}", i / 2))
                            .set_evidence_with_omega("d", [(&["x"][..], 0.5)], 0.5)
                    })
                    .unwrap();
            }
        }
        let mut bindings = Bindings::new();
        bindings.bind("a", a.build()).bind("b", b.build());
        let plan = scan("a")
            .union(scan("b"))
            .project(["k2", "k1", "d"]) // key attrs swapped
            .build();
        let options = UnionOptions::default();
        let text = explain_plan_with(&plan, &bindings, &options, 4).unwrap();
        // Exchange present, but *under* the projection.
        let pi_line = text.lines().position(|l| l.contains("π̃")).unwrap();
        let ex_line = text
            .lines()
            .position(|l| l.contains("⇄ exchange"))
            .expect("exchange still built below the projection");
        assert!(ex_line > pi_line, "{text}");
        let mut seq_ctx = ExecContext::with_parallelism(1);
        let seq = execute_plan(&plan, &bindings, &mut seq_ctx).unwrap();
        let mut par_ctx = ExecContext::with_parallelism(4);
        let par = execute_plan(&plan, &bindings, &mut par_ctx).unwrap();
        assert!(seq.approx_eq(&par));
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.key(seq.schema()), p.key(par.schema()));
        }
        assert_eq!(seq_ctx.stats, par_ctx.stats);
    }

    #[test]
    fn explain_sections_present() {
        let b = bindings();
        let plan = scan("r")
            .select(Predicate::is("spec", ["mu"]))
            .threshold(Threshold::SnAtLeast(0.5))
            .project(["rname", "spec"])
            .build();
        let text = explain_plan(&plan, &b, &UnionOptions::default()).unwrap();
        for section in ["logical:", "rewrites:", "optimized:", "physical:"] {
            assert!(text.contains(section), "{text}");
        }
        assert!(text.contains("threshold-fusion"), "{text}");
    }
}
