//! Physical planning and execution.
//!
//! [`physical`] lowers an (ideally optimized) [`LogicalPlan`] into an
//! [`Operator`] tree; [`execute_plan`] optimizes, builds, and drives
//! it to a materialized relation; [`explain_plan`] renders all three
//! stages — logical tree, fired rewrite rules, optimized tree,
//! physical tree.
//!
//! Physical fusion: a σ̃ directly above a ×̃ whose predicate carries an
//! equality conjunct between definite attributes of opposite sides
//! becomes a [`HashJoinOp`] — the streaming ⋈̃ that builds its key
//! index once and probes it per left tuple.

use crate::error::PlanError;
use crate::logical::{LogicalPlan, RelationSource};
use crate::ops::{
    run, DempsterMerger, DifferenceOp, HashJoinOp, MergeOp, Operator, ProductOp, ProjectOp,
    RenameOp, ScanOp, SelectOp, ThresholdOp,
};
use crate::rewrite::{optimize, Rewrite};
use crate::ExecContext;
use evirel_algebra::predicate::Predicate;
use evirel_algebra::threshold::Threshold;
use evirel_algebra::union::UnionOptions;
use evirel_relation::ExtendedRelation;

/// Lower a logical plan into a physical operator tree, without
/// optimizing or running it.
///
/// # Errors
/// Unknown relations, invalid projections/renames/thresholds,
/// incompatible schemas.
pub fn physical(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<Box<dyn Operator>, PlanError> {
    Ok(match plan {
        LogicalPlan::Scan { name } => {
            let rel = source
                .relation(name)
                .ok_or_else(|| PlanError::UnknownRelation { name: name.clone() })?;
            Box::new(ScanOp::new(name.clone(), rel))
        }
        LogicalPlan::Select {
            input,
            predicate,
            threshold,
        } => {
            if let LogicalPlan::Product { left, right } = &**input {
                return build_join(left, right, predicate, threshold, source, options);
            }
            Box::new(SelectOp::new(
                physical(input, source, options)?,
                predicate.clone(),
                *threshold,
            )?)
        }
        LogicalPlan::ThresholdFilter { input, threshold } => Box::new(ThresholdOp::new(
            physical(input, source, options)?,
            *threshold,
        )?),
        LogicalPlan::Project { input, attrs } => {
            Box::new(ProjectOp::new(physical(input, source, options)?, attrs)?)
        }
        LogicalPlan::Product { left, right } => Box::new(ProductOp::new(
            physical(left, source, options)?,
            physical(right, source, options)?,
        )?),
        LogicalPlan::Join {
            left,
            right,
            on,
            threshold,
        } => return build_join(left, right, on, threshold, source, options),
        LogicalPlan::Union { left, right } => Box::new(MergeOp::union(
            physical(left, source, options)?,
            physical(right, source, options)?,
            Box::new(DempsterMerger {
                options: options.clone(),
            }),
        )?),
        LogicalPlan::Intersect { left, right } => Box::new(MergeOp::intersect(
            physical(left, source, options)?,
            physical(right, source, options)?,
            Box::new(DempsterMerger {
                options: options.clone(),
            }),
        )?),
        LogicalPlan::Difference { left, right } => Box::new(DifferenceOp::new(
            physical(left, source, options)?,
            physical(right, source, options)?,
        )?),
        LogicalPlan::RenameRelation { input, name } => {
            Box::new(RenameOp::relation(physical(input, source, options)?, name))
        }
        LogicalPlan::RenameAttribute { input, from, to } => Box::new(RenameOp::attribute(
            physical(input, source, options)?,
            from,
            to,
        )?),
    })
}

fn build_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    predicate: &Predicate,
    threshold: &Threshold,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<Box<dyn Operator>, PlanError> {
    let left_op = physical(left, source, options)?;
    let right_op = physical(right, source, options)?;
    let product_schema =
        evirel_algebra::product::product_schema(left_op.schema(), right_op.schema())?;
    match HashJoinOp::indexable_conjunct(
        predicate,
        left_op.schema(),
        right_op.schema(),
        &product_schema,
    ) {
        Some((lp, rp)) => Ok(Box::new(HashJoinOp::new(
            left_op,
            right_op,
            predicate.clone(),
            *threshold,
            lp,
            rp,
        )?)),
        None => Ok(Box::new(SelectOp::new(
            Box::new(ProductOp::new(left_op, right_op)?),
            predicate.clone(),
            *threshold,
        )?)),
    }
}

/// Optimize and execute a plan, materializing the result. Side
/// outputs (conflict reports, κ stats) accumulate in `ctx`.
///
/// # Errors
/// Plan-build and operator errors.
pub fn execute_plan(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    ctx: &mut ExecContext,
) -> Result<ExtendedRelation, PlanError> {
    let (optimized, _) = optimize(plan, source);
    let options = ctx.union_options.clone();
    let mut op = physical(&optimized, source, &options)?;
    run(op.as_mut(), ctx)
}

/// Optimize and lower a plan into an operator tree without running it
/// — for callers that want to pull tuples themselves.
///
/// # Errors
/// As [`execute_plan`], minus execution.
pub fn open_plan(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<Box<dyn Operator>, PlanError> {
    let (optimized, _) = optimize(plan, source);
    physical(&optimized, source, options)
}

/// Render the full `EXPLAIN`: logical tree, fired rewrites, optimized
/// tree, physical operator tree.
///
/// # Errors
/// Plan-build errors (the physical tree must be constructible).
pub fn explain_plan(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<String, PlanError> {
    let (optimized, fired) = optimize(plan, source);
    let op = physical(&optimized, source, options)?;
    let mut out = String::new();
    out.push_str("logical:\n");
    push_indented(&mut out, &plan.render());
    out.push_str("rewrites:\n");
    if fired.is_empty() {
        out.push_str("  (none)\n");
    } else {
        for rewrite in &fired {
            out.push_str(&format!("  - {rewrite}\n"));
        }
    }
    out.push_str("optimized:\n");
    push_indented(&mut out, &optimized.render());
    out.push_str("physical:\n");
    push_indented(&mut out, &crate::ops::render_physical(op.as_ref()));
    Ok(out)
}

/// The rewrites [`optimize`] would apply, without executing anything.
pub fn planned_rewrites(plan: &LogicalPlan, source: &dyn RelationSource) -> Vec<Rewrite> {
    optimize(plan, source).1
}

fn push_indented(out: &mut String, text: &str) {
    for line in text.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{scan, Bindings};
    use evirel_algebra::{Operand, ThetaOp};
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, Value, ValueKind};
    use std::sync::Arc;

    fn bindings() -> Bindings {
        let d = Arc::new(AttrDomain::categorical("spec", ["mu", "it"]).unwrap());
        let r_schema = Arc::new(
            Schema::builder("R")
                .key_str("rname")
                .evidential("spec", d)
                .build()
                .unwrap(),
        );
        let r = RelationBuilder::new(r_schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_evidence("spec", [(&["mu"][..], 0.8), (&["it"][..], 0.2)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("rname", "olive")
                    .set_evidence("spec", [(&["it"][..], 1.0)])
            })
            .unwrap()
            .build();
        let m_schema = Arc::new(
            Schema::builder("RM")
                .key_str("rname")
                .definite("mname", ValueKind::Str)
                .build()
                .unwrap(),
        );
        let m = RelationBuilder::new(m_schema)
            .tuple(|t| {
                t.set_str("rname", "mehl")
                    .set_str("mname", "alice")
                    .membership_pair(0.9, 1.0)
            })
            .unwrap()
            .tuple(|t| t.set_str("rname", "wok").set_str("mname", "bob"))
            .unwrap()
            .build();
        let mut b = Bindings::new();
        b.bind("r", r).bind("rm", m);
        b
    }

    #[test]
    fn join_runs_as_hash_join() {
        let b = bindings();
        let on = Predicate::theta(
            Operand::attr("R.rname"),
            ThetaOp::Eq,
            Operand::attr("RM.rname"),
        );
        let plan = scan("r").join(scan("rm"), on).build();
        let text = explain_plan(&plan, &b, &UnionOptions::default()).unwrap();
        assert!(text.contains("hash rname = rname"), "{text}");
        assert!(text.contains("join-expansion"), "{text}");
        let mut ctx = ExecContext::new();
        let out = execute_plan(&plan, &b, &mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        let t = out
            .get_by_key(&[Value::str("mehl"), Value::str("mehl")])
            .unwrap();
        assert!((t.membership().sn() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn non_equi_join_falls_back_to_product_select() {
        let b = bindings();
        let on = Predicate::theta(
            Operand::attr("R.rname"),
            ThetaOp::Ne,
            Operand::attr("RM.rname"),
        );
        let plan = scan("r").join(scan("rm"), on).build();
        let text = explain_plan(&plan, &b, &UnionOptions::default()).unwrap();
        assert!(!text.contains("hash"), "{text}");
        assert!(text.contains("×̃"), "{text}");
        let mut ctx = ExecContext::new();
        let out = execute_plan(&plan, &b, &mut ctx).unwrap();
        // mehl–wok, olive–mehl, olive–wok survive the ≠ predicate.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn explain_sections_present() {
        let b = bindings();
        let plan = scan("r")
            .select(Predicate::is("spec", ["mu"]))
            .threshold(Threshold::SnAtLeast(0.5))
            .project(["rname", "spec"])
            .build();
        let text = explain_plan(&plan, &b, &UnionOptions::default()).unwrap();
        for section in ["logical:", "rewrites:", "optimized:", "physical:"] {
            assert!(text.contains(section), "{text}");
        }
        assert!(text.contains("threshold-fusion"), "{text}");
    }
}
