//! Logical rewrite rules.
//!
//! [`optimize`] normalizes a plan (⋈̃ expands to σ̃ ∘ ×̃, per the
//! paper's own definition) and then applies a fixpoint of
//! equivalence-preserving rules:
//!
//! * **select-fusion** — `σ̃_A(σ̃_B(R)) → σ̃_{B∧A}(R)`; sound because
//!   the multiplicative `F_TM` makes successive revisions commute.
//! * **threshold-into-select fusion** — a membership filter directly
//!   above a default-threshold σ̃ becomes that σ̃'s threshold `Q`; a
//!   `sn > 0` filter is the identity on CWA_ER relations and is
//!   pruned outright.
//! * **predicate pushdown through π̃** — σ̃ commutes with π̃ (selection
//!   retains attribute values, projection retains membership), so the
//!   filter runs before the reshape whenever the projection keeps
//!   every referenced attribute.
//! * **predicate pushdown through ×̃** — conjuncts that reference only
//!   one side move below the product (unqualifying attribute names as
//!   needed); sound because both tuple membership and conjunction
//!   support compose multiplicatively.
//! * **σ̃-under-∪̃ distribution** — fires only for default-threshold
//!   selections whose predicates are *crisp and union-invariant*
//!   (every referenced attribute is a key attribute, no evidence-set
//!   literals): key values are definite, equal on matched tuples, and
//!   untouched by the Dempster merge, so filtering before merging is
//!   exact. Predicates over merged evidential attributes must NOT be
//!   distributed — their support depends on the combined evidence.
//!   Note the distributed form merges (and therefore reports
//!   conflicts for) only the entities that survive the filter; the
//!   result relation is identical, but conflict reports cover fewer
//!   tuples and a total conflict on a filtered-out entity no longer
//!   aborts.
//! * **projection pruning** — nested π̃ collapse to the outermost
//!   list; an identity π̃ disappears.

use crate::logical::{schema_of, LogicalPlan, RelationSource};
use evirel_algebra::predicate::Predicate;
use evirel_algebra::threshold::Threshold;
use std::collections::HashMap;

/// One recorded rule application — surfaced by `EXPLAIN`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rewrite {
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable description of what moved.
    pub detail: String,
}

impl std::fmt::Display for Rewrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

/// Optimize a plan, returning the rewritten tree and every rule
/// application in firing order. Schema-dependent rules consult
/// `source`; when a schema cannot be resolved the rule simply does
/// not fire and execution surfaces the underlying error.
pub fn optimize(plan: &LogicalPlan, source: &dyn RelationSource) -> (LogicalPlan, Vec<Rewrite>) {
    let mut fired = Vec::new();
    let mut plan = expand_joins(plan.clone(), &mut fired);
    // Fixpoint: each pass rewrites bottom-up; the bound is a safety
    // net (every rule strictly shrinks or pushes nodes downward).
    for _ in 0..64 {
        let mut changed = false;
        plan = pass(&plan, source, &mut fired, &mut changed);
        if !changed {
            break;
        }
    }
    (plan, fired)
}

/// ⋈̃ ≡ σ̃ ∘ ×̃ (§3.5) — normalize so the pushdown rules see the
/// product; the physical layer re-fuses eligible σ̃(×̃) pairs into a
/// hash join.
fn expand_joins(plan: LogicalPlan, fired: &mut Vec<Rewrite>) -> LogicalPlan {
    let plan = map_inputs(plan, &mut |p| expand_joins(p, fired));
    if let LogicalPlan::Join {
        left,
        right,
        on,
        threshold,
    } = plan
    {
        fired.push(Rewrite {
            rule: "join-expansion",
            detail: format!("⋈̃[{on}] expanded to σ̃ ∘ ×̃"),
        });
        LogicalPlan::Select {
            input: Box::new(LogicalPlan::Product { left, right }),
            predicate: on,
            threshold,
        }
    } else {
        plan
    }
}

fn pass(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    fired: &mut Vec<Rewrite>,
    changed: &mut bool,
) -> LogicalPlan {
    let node = map_inputs(plan.clone(), &mut |p| pass(&p, source, fired, changed));
    match try_rules(&node, source) {
        Some((new, rewrite)) => {
            fired.push(rewrite);
            *changed = true;
            new
        }
        None => node,
    }
}

fn try_rules(plan: &LogicalPlan, source: &dyn RelationSource) -> Option<(LogicalPlan, Rewrite)> {
    pushdown_project(plan)
        .or_else(|| pushdown_product(plan, source))
        .or_else(|| distribute_union(plan, source))
        .or_else(|| fuse_select(plan))
        .or_else(|| fuse_threshold(plan))
        .or_else(|| prune_project(plan, source))
}

fn pushdown_project(plan: &LogicalPlan) -> Option<(LogicalPlan, Rewrite)> {
    let LogicalPlan::Select {
        input,
        predicate,
        threshold,
    } = plan
    else {
        return None;
    };
    let LogicalPlan::Project {
        input: inner,
        attrs,
    } = &**input
    else {
        return None;
    };
    if !predicate
        .referenced_attrs()
        .iter()
        .all(|a| attrs.iter().any(|x| x == a))
    {
        return None;
    }
    Some((
        LogicalPlan::Project {
            input: Box::new(LogicalPlan::Select {
                input: inner.clone(),
                predicate: predicate.clone(),
                threshold: *threshold,
            }),
            attrs: attrs.clone(),
        },
        Rewrite {
            rule: "predicate-pushdown-project",
            detail: format!("σ̃[{predicate}] pushed below π̃"),
        },
    ))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Side {
    Left,
    Right,
}

fn pushdown_product(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
) -> Option<(LogicalPlan, Rewrite)> {
    let LogicalPlan::Select {
        input,
        predicate,
        threshold,
    } = plan
    else {
        return None;
    };
    let LogicalPlan::Product { left, right } = &**input else {
        return None;
    };
    let ls = schema_of(left, source).ok()?;
    let rs = schema_of(right, source).ok()?;
    let prod = evirel_algebra::product::product_schema(&ls, &rs).ok()?;
    // Product-schema name → (side, pre-qualification name).
    let l_arity = ls.arity();
    let mut origin: HashMap<&str, (Side, &str)> = HashMap::new();
    for (i, attr) in prod.attrs().iter().enumerate() {
        let entry = if i < l_arity {
            (Side::Left, ls.attr(i).name())
        } else {
            (Side::Right, rs.attr(i - l_arity).name())
        };
        origin.insert(attr.name(), entry);
    }

    let mut pushed = [Vec::new(), Vec::new()]; // [left, right]
    let mut residual = Vec::new();
    for conjunct in predicate.conjuncts() {
        let attrs = conjunct.referenced_attrs();
        let sides: Option<Vec<Side>> = attrs
            .iter()
            .map(|a| origin.get(*a).map(|(side, _)| *side))
            .collect();
        match sides {
            Some(sides) if !sides.is_empty() && sides.iter().all(|s| *s == sides[0]) => {
                let unqualified = conjunct.map_attrs(&|a| origin[a].1.to_owned());
                pushed[if sides[0] == Side::Left { 0 } else { 1 }].push(unqualified);
            }
            _ => residual.push(conjunct.clone()),
        }
    }
    if pushed.iter().all(Vec::is_empty) {
        return None;
    }
    let detail = format!(
        "{} conjunct(s) pushed below ×̃ ({} residual)",
        pushed[0].len() + pushed[1].len(),
        residual.len()
    );
    let [lp, rp] = pushed;
    let side = |child: &LogicalPlan, push: Vec<Predicate>| -> Box<LogicalPlan> {
        Box::new(match Predicate::from_conjuncts(push) {
            Some(predicate) => LogicalPlan::Select {
                input: Box::new(child.clone()),
                predicate,
                threshold: Threshold::POSITIVE,
            },
            None => child.clone(),
        })
    };
    let product = LogicalPlan::Product {
        left: side(left, lp),
        right: side(right, rp),
    };
    let new = match Predicate::from_conjuncts(residual) {
        Some(predicate) => LogicalPlan::Select {
            input: Box::new(product),
            predicate,
            threshold: *threshold,
        },
        None if *threshold != Threshold::POSITIVE => LogicalPlan::ThresholdFilter {
            input: Box::new(product),
            threshold: *threshold,
        },
        None => product,
    };
    Some((
        new,
        Rewrite {
            rule: "predicate-pushdown-product",
            detail,
        },
    ))
}

fn distribute_union(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
) -> Option<(LogicalPlan, Rewrite)> {
    let LogicalPlan::Select {
        input,
        predicate,
        threshold,
    } = plan
    else {
        return None;
    };
    if *threshold != Threshold::POSITIVE {
        // A non-default Q on the combined membership cannot be applied
        // per side: F over Ψ is not monotone in each argument alone.
        return None;
    }
    let LogicalPlan::Union { left, right } = &**input else {
        return None;
    };
    if predicate.has_evidence_literal() {
        return None;
    }
    // Crisp and union-invariant: every referenced attribute is a key
    // attribute (definite, equal on matched tuples, untouched by ∪̃).
    let schema = schema_of(left, source).ok()?;
    for attr in predicate.referenced_attrs() {
        let pos = schema.position(attr).ok()?;
        if !schema.attr(pos).is_key() {
            return None;
        }
    }
    let side = |child: &LogicalPlan| {
        Box::new(LogicalPlan::Select {
            input: Box::new(child.clone()),
            predicate: predicate.clone(),
            threshold: Threshold::POSITIVE,
        })
    };
    Some((
        LogicalPlan::Union {
            left: side(left),
            right: side(right),
        },
        Rewrite {
            rule: "select-under-union",
            detail: format!("key-crisp σ̃[{predicate}] distributed over ∪̃"),
        },
    ))
}

fn fuse_select(plan: &LogicalPlan) -> Option<(LogicalPlan, Rewrite)> {
    let LogicalPlan::Select {
        input,
        predicate,
        threshold,
    } = plan
    else {
        return None;
    };
    let LogicalPlan::Select {
        input: inner,
        predicate: inner_pred,
        threshold: inner_threshold,
    } = &**input
    else {
        return None;
    };
    if *inner_threshold != Threshold::POSITIVE {
        return None;
    }
    Some((
        LogicalPlan::Select {
            input: inner.clone(),
            predicate: inner_pred.clone().and(predicate.clone()),
            threshold: *threshold,
        },
        Rewrite {
            rule: "select-fusion",
            detail: "adjacent σ̃ fused into one conjunction".to_owned(),
        },
    ))
}

fn fuse_threshold(plan: &LogicalPlan) -> Option<(LogicalPlan, Rewrite)> {
    let LogicalPlan::ThresholdFilter { input, threshold } = plan else {
        return None;
    };
    if *threshold == Threshold::POSITIVE {
        // CWA_ER: stored tuples already have sn > 0.
        return Some((
            input.as_ref().clone(),
            Rewrite {
                rule: "threshold-fusion",
                detail: "identity sn > 0 filter pruned".to_owned(),
            },
        ));
    }
    let LogicalPlan::Select {
        input: inner,
        predicate,
        threshold: inner_threshold,
    } = &**input
    else {
        return None;
    };
    if *inner_threshold != Threshold::POSITIVE {
        return None;
    }
    Some((
        LogicalPlan::Select {
            input: inner.clone(),
            predicate: predicate.clone(),
            threshold: *threshold,
        },
        Rewrite {
            rule: "threshold-fusion",
            detail: format!("membership filter fused into σ̃ as Q = {threshold}"),
        },
    ))
}

fn prune_project(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
) -> Option<(LogicalPlan, Rewrite)> {
    let LogicalPlan::Project { input, attrs } = plan else {
        return None;
    };
    if let LogicalPlan::Project {
        input: inner,
        attrs: inner_attrs,
    } = &**input
    {
        if attrs.iter().all(|a| inner_attrs.contains(a)) {
            return Some((
                LogicalPlan::Project {
                    input: inner.clone(),
                    attrs: attrs.clone(),
                },
                Rewrite {
                    rule: "projection-pruning",
                    detail: "nested π̃ collapsed to the outer list".to_owned(),
                },
            ));
        }
    }
    let schema = schema_of(input, source).ok()?;
    if schema.arity() == attrs.len()
        && schema
            .attrs()
            .iter()
            .zip(attrs.iter())
            .all(|(a, n)| a.name() == n)
    {
        return Some((
            input.as_ref().clone(),
            Rewrite {
                rule: "projection-pruning",
                detail: "identity π̃ removed".to_owned(),
            },
        ));
    }
    None
}

/// Rebuild a node with every direct input passed through `f`.
fn map_inputs(plan: LogicalPlan, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    let map = |b: Box<LogicalPlan>, f: &mut dyn FnMut(LogicalPlan) -> LogicalPlan| Box::new(f(*b));
    match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Select {
            input,
            predicate,
            threshold,
        } => LogicalPlan::Select {
            input: map(input, f),
            predicate,
            threshold,
        },
        LogicalPlan::ThresholdFilter { input, threshold } => LogicalPlan::ThresholdFilter {
            input: map(input, f),
            threshold,
        },
        LogicalPlan::Project { input, attrs } => LogicalPlan::Project {
            input: map(input, f),
            attrs,
        },
        LogicalPlan::Product { left, right } => LogicalPlan::Product {
            left: map(left, f),
            right: map(right, f),
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            threshold,
        } => LogicalPlan::Join {
            left: map(left, f),
            right: map(right, f),
            on,
            threshold,
        },
        LogicalPlan::Union { left, right } => LogicalPlan::Union {
            left: map(left, f),
            right: map(right, f),
        },
        LogicalPlan::Intersect { left, right } => LogicalPlan::Intersect {
            left: map(left, f),
            right: map(right, f),
        },
        LogicalPlan::Difference { left, right } => LogicalPlan::Difference {
            left: map(left, f),
            right: map(right, f),
        },
        LogicalPlan::RenameRelation { input, name } => LogicalPlan::RenameRelation {
            input: map(input, f),
            name,
        },
        LogicalPlan::RenameAttribute { input, from, to } => LogicalPlan::RenameAttribute {
            input: map(input, f),
            from,
            to,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{scan, Bindings};
    use evirel_algebra::{Operand, ThetaOp};
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, ValueKind};
    use std::sync::Arc;

    fn bindings() -> Bindings {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("R")
                .key_str("k")
                .definite("phone", ValueKind::Str)
                .evidential("d", Arc::clone(&d))
                .build()
                .unwrap(),
        );
        let mk = |name: &str| {
            RelationBuilder::new(Arc::new(schema.renamed(name)))
                .tuple(|t| {
                    t.set_str("k", "a")
                        .set_str("phone", "1")
                        .set_evidence("d", [(&["x"][..], 1.0)])
                })
                .unwrap()
                .build()
        };
        let mut b = Bindings::new();
        b.bind("r", mk("R")).bind("s", mk("S"));
        b
    }

    fn rules(fired: &[Rewrite]) -> Vec<&'static str> {
        fired.iter().map(|r| r.rule).collect()
    }

    #[test]
    fn pushes_select_below_project() {
        let b = bindings();
        let plan = scan("r")
            .project(["k", "d"])
            .select(Predicate::is("d", ["x"]))
            .build();
        let (optimized, fired) = optimize(&plan, &b);
        assert!(rules(&fired).contains(&"predicate-pushdown-project"));
        // π̃ is now the root, σ̃ below it.
        assert!(matches!(optimized, LogicalPlan::Project { .. }));
        // A predicate over a projected-away attribute stays put.
        let plan = scan("r")
            .project(["k", "d"])
            .select(Predicate::is("phone", ["1"]))
            .build();
        let (_, fired) = optimize(&plan, &b);
        assert!(!rules(&fired).contains(&"predicate-pushdown-project"));
    }

    #[test]
    fn splits_conjuncts_through_product() {
        let b = bindings();
        // Every attribute clashes between R and S, so the product
        // qualifies them all; the left conjunct must be unqualified
        // when pushed.
        let pred = Predicate::is("R.d", ["x"]).and(Predicate::theta(
            Operand::attr("R.k"),
            ThetaOp::Eq,
            Operand::attr("S.k"),
        ));
        let plan = scan("r").product(scan("s")).select(pred).build();
        let (optimized, fired) = optimize(&plan, &b);
        assert!(rules(&fired).contains(&"predicate-pushdown-product"));
        // Residual mixed conjunct stays above the product; the left
        // conjunct now references the unqualified name below it.
        let LogicalPlan::Select { input, .. } = &optimized else {
            panic!("{optimized:?}")
        };
        let LogicalPlan::Product { left, .. } = &**input else {
            panic!("{optimized:?}")
        };
        let LogicalPlan::Select { predicate, .. } = &**left else {
            panic!("{optimized:?}")
        };
        assert_eq!(predicate.referenced_attrs(), vec!["d"]);
    }

    #[test]
    fn ambiguous_attr_pushdown_unqualifies() {
        let b = bindings();
        // "d" clashes between R and S, so the product qualifies both;
        // a conjunct on R.d must be unqualified when pushed left.
        let pred = Predicate::is("R.d", ["x"]);
        let plan = scan("r").product(scan("s")).select(pred).build();
        let (optimized, fired) = optimize(&plan, &b);
        assert!(rules(&fired).contains(&"predicate-pushdown-product"));
        let LogicalPlan::Product { left, .. } = &optimized else {
            panic!("{optimized:?}")
        };
        let LogicalPlan::Select { predicate, .. } = &**left else {
            panic!("{optimized:?}")
        };
        assert_eq!(predicate.referenced_attrs(), vec!["d"]);
    }

    #[test]
    fn distributes_key_crisp_select_over_union() {
        let b = bindings();
        let plan = scan("r")
            .union(scan("s"))
            .select(Predicate::theta(
                Operand::attr("k"),
                ThetaOp::Eq,
                Operand::value("a"),
            ))
            .build();
        let (optimized, fired) = optimize(&plan, &b);
        assert!(rules(&fired).contains(&"select-under-union"));
        assert!(matches!(optimized, LogicalPlan::Union { .. }));
        // Evidential predicates must not distribute.
        let plan = scan("r")
            .union(scan("s"))
            .select(Predicate::is("d", ["x"]))
            .build();
        let (_, fired) = optimize(&plan, &b);
        assert!(!rules(&fired).contains(&"select-under-union"));
        // Nor non-default thresholds.
        let plan = scan("r")
            .union(scan("s"))
            .select_where(
                Predicate::theta(Operand::attr("k"), ThetaOp::Eq, Operand::value("a")),
                Threshold::SnAtLeast(0.5),
            )
            .build();
        let (_, fired) = optimize(&plan, &b);
        assert!(!rules(&fired).contains(&"select-under-union"));
    }

    #[test]
    fn fuses_selects_and_thresholds() {
        let b = bindings();
        let plan = scan("r")
            .select(Predicate::is("d", ["x"]))
            .threshold(Threshold::SnAtLeast(0.5))
            .build();
        let (optimized, fired) = optimize(&plan, &b);
        assert!(rules(&fired).contains(&"threshold-fusion"));
        let LogicalPlan::Select { threshold, .. } = &optimized else {
            panic!("{optimized:?}")
        };
        assert_eq!(*threshold, Threshold::SnAtLeast(0.5));

        let plan = scan("r")
            .select(Predicate::is("d", ["x"]))
            .select(Predicate::is("phone", ["1"]))
            .build();
        let (optimized, fired) = optimize(&plan, &b);
        assert!(rules(&fired).contains(&"select-fusion"));
        assert!(matches!(
            optimized,
            LogicalPlan::Select { ref predicate, .. } if matches!(predicate, Predicate::And(_, _))
        ));

        // Identity sn > 0 filter is pruned.
        let plan = scan("r").threshold(Threshold::POSITIVE).build();
        let (optimized, _) = optimize(&plan, &b);
        assert!(matches!(optimized, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn prunes_projections() {
        let b = bindings();
        let plan = scan("r")
            .project(["k", "phone", "d"])
            .project(["k", "d"])
            .build();
        let (optimized, fired) = optimize(&plan, &b);
        assert!(rules(&fired).contains(&"projection-pruning"));
        let LogicalPlan::Project { input, attrs } = &optimized else {
            panic!("{optimized:?}")
        };
        assert_eq!(attrs, &["k", "d"]);
        assert!(matches!(&**input, LogicalPlan::Scan { .. }));
        // Identity projection disappears entirely.
        let plan = scan("r").project(["k", "phone", "d"]).build();
        let (optimized, _) = optimize(&plan, &b);
        assert!(matches!(optimized, LogicalPlan::Scan { .. }));
    }

    #[test]
    fn join_expands_then_pushes() {
        let b = bindings();
        let plan = scan("r")
            .join(
                scan("s"),
                Predicate::theta(Operand::attr("R.k"), ThetaOp::Eq, Operand::attr("S.k")),
            )
            .select(Predicate::is("R.d", ["x"]))
            .build();
        let (_, fired) = optimize(&plan, &b);
        let fired = rules(&fired);
        assert!(fired.contains(&"join-expansion"), "{fired:?}");
        assert!(fired.contains(&"select-fusion"), "{fired:?}");
        assert!(fired.contains(&"predicate-pushdown-product"), "{fired:?}");
    }
}
