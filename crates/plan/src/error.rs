//! Error type for the plan layer.

use evirel_algebra::AlgebraError;
use evirel_relation::RelationError;
use std::fmt;

/// Errors produced while resolving, optimizing, building, or running
/// a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// An underlying algebra error from an operator kernel
    /// (predicate support, tuple merging, projection validation, …).
    Algebra(AlgebraError),
    /// An underlying relational-model error.
    Relation(RelationError),
    /// A scanned relation is not bound in the [`crate::RelationSource`].
    UnknownRelation {
        /// The missing name.
        name: String,
    },
    /// A predicate or projection referenced an attribute absent from
    /// its input schema — caught at plan time, before any operator
    /// runs.
    UnknownAttribute {
        /// The missing attribute.
        attr: String,
        /// The schema it was resolved against.
        schema: String,
    },
    /// A custom tuple merger rejected a matched pair (e.g. an
    /// integration method applied to a value it cannot handle).
    Merge {
        /// Attribute being merged (empty when not attribute-specific).
        attr: String,
        /// Why the merger refused.
        reason: String,
    },
    /// A merge pairing referenced keys absent from the inputs.
    Pairing {
        /// Explanation.
        reason: String,
    },
    /// A storage-engine failure from a stored scan or a spilled merge
    /// build side.
    Store(evirel_store::StoreError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Algebra(e) => write!(f, "algebra error: {e}"),
            Self::Relation(e) => write!(f, "relation error: {e}"),
            Self::UnknownRelation { name } => write!(f, "unknown relation {name:?}"),
            Self::UnknownAttribute { attr, schema } => {
                write!(f, "unknown attribute {attr:?} in schema {schema:?}")
            }
            Self::Merge { attr, reason } => {
                if attr.is_empty() {
                    write!(f, "merge failed: {reason}")
                } else {
                    write!(f, "merge failed on attribute {attr:?}: {reason}")
                }
            }
            Self::Pairing { reason } => write!(f, "invalid merge pairing: {reason}"),
            Self::Store(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Algebra(e) => Some(e),
            Self::Relation(e) => Some(e),
            Self::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for PlanError {
    fn from(e: AlgebraError) -> Self {
        PlanError::Algebra(e)
    }
}

impl From<RelationError> for PlanError {
    fn from(e: RelationError) -> Self {
        PlanError::Relation(e)
    }
}

impl From<evirel_store::StoreError> for PlanError {
    fn from(e: evirel_store::StoreError) -> Self {
        PlanError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = PlanError::UnknownRelation { name: "zz".into() };
        assert!(e.to_string().contains("zz"));
        let e = PlanError::UnknownAttribute {
            attr: "nope".into(),
            schema: "RA".into(),
        };
        assert!(e.to_string().contains("nope") && e.to_string().contains("RA"));
        let e = PlanError::Merge {
            attr: "seats".into(),
            reason: "aggregate needs numbers".into(),
        };
        assert!(e.to_string().contains("seats"));
        let e: PlanError = AlgebraError::PredicateType { reason: "x".into() }.into();
        assert!(matches!(e, PlanError::Algebra(_)));
    }
}
