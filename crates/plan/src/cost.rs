//! Cardinality and cost estimation over [`RelStats`] blocks — the
//! planner-side half of the statistics subsystem.
//!
//! Every size-sensitive planning decision reads estimates from here:
//! the chain reorderer picks the cheapest ×̃/⋈̃ exploration order,
//! [`crate::ops::MergeOp`] sizes (or eagerly spills) its build side,
//! and [`crate::exec::physical_with`] places exchanges by estimated
//! fragment cost. Estimates are **advisory only**: every consumer is
//! bit-for-bit result-identical with and without them (proptest
//! pinned), so a missing [`RelStats`] block — a v2 segment, a
//! pre-stats file, or `EVIREL_NO_STATS=1` — just reinstates the old
//! fixed heuristics.
//!
//! Formulas (documented in ARCHITECTURE.md):
//!
//! * σ̃ selectivity — per-conjunct: `IS {c…}` uses the evidential
//!   plausibility profile (Σ pls of the target singletons / tuples);
//!   definite `=` literal uses `1/distinct(attr)`; other θ
//!   comparisons default to ⅓; `AND` multiplies, `OR` adds with the
//!   independence correction, `NOT` complements.
//! * ×̃ output = |L|·|R|; ⋈̃ output = |L|·|R| · Π over definite `=`
//!   conjuncts of `1/max(distinct_L, distinct_R)`.
//! * ∪̃/∩̃/−̃ output via distinct-key overlap: the two key sketches'
//!   union estimate gives `|keys_L ∪ keys_R|`, hence the expected
//!   number of merged pairs.
//! * Merge cost inflates pairings by the product of average focal
//!   widths (memo-table growth) and by `1 + mean κ` when an
//!   observed-conflict summary is present — low-conflict, narrow
//!   inputs merge cheaper, which is what makes the chain ordering
//!   κ-aware.

use crate::logical::{LogicalPlan, RelationSource};
use evirel_algebra::{Operand, Predicate, ThetaOp};
use evirel_relation::{AttrType, Schema, Value};
use evirel_store::RelStats;
use std::sync::Arc;

/// Environment knob disabling statistics-driven planning: set (and
/// not `0`/empty) means every stats lookup reports "none", so all
/// consumers take their heuristic fallback paths. CI runs the plan
/// and query suites under `EVIREL_NO_STATS=1` to keep those paths
/// exercised end-to-end.
pub const NO_STATS_ENV: &str = "EVIREL_NO_STATS";

/// `false` when [`NO_STATS_ENV`] disables statistics. Read per call:
/// planning happens once per query, and tests toggle the knob.
pub fn stats_enabled() -> bool {
    match std::env::var(NO_STATS_ENV) {
        Ok(v) => v.is_empty() || v == "0",
        Err(_) => true,
    }
}

/// Default selectivity for predicates the model cannot resolve
/// against a profile.
const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;
/// Default selectivity of an unresolvable equality conjunct.
const DEFAULT_EQ_SELECTIVITY: f64 = 0.15;
/// Pass fraction assumed for a bare membership threshold.
const THRESHOLD_SELECTIVITY: f64 = 0.9;
/// Memo-growth weight for a merge with no focal-width information.
const DEFAULT_MERGE_WEIGHT: f64 = 2.0;

/// Cardinality/cost estimator over a [`RelationSource`]'s statistics.
///
/// All entry points return `Option`: `None` means "some required
/// statistic is missing" and instructs the caller to fall back to
/// its heuristic. No estimate is ever fabricated from thin air — a
/// chain with one stats-less leaf plans exactly like a pre-stats
/// build.
pub struct CostModel<'a> {
    source: &'a dyn RelationSource,
}

impl<'a> CostModel<'a> {
    /// A model reading statistics (and schemas) from `source`.
    pub fn new(source: &'a dyn RelationSource) -> CostModel<'a> {
        CostModel { source }
    }

    /// Statistics for a scan of `name`, honoring [`NO_STATS_ENV`].
    pub fn rel_stats(&self, name: &str) -> Option<Arc<RelStats>> {
        if !stats_enabled() {
            return None;
        }
        self.source.stats(name)
    }

    /// The base-relation stats + schema a unary chain bottoms out in:
    /// `Select`/`ThresholdFilter`/`RenameRelation` pass through,
    /// `Scan` resolves. Projections and attribute renames decline
    /// (positions/names would no longer line up with the block).
    fn leaf_stats(&self, plan: &LogicalPlan) -> Option<(Arc<RelStats>, Arc<Schema>)> {
        match plan {
            LogicalPlan::Scan { name } => {
                let stats = self.rel_stats(name)?;
                let schema = crate::logical::source_schema(self.source, name)?;
                Some((stats, schema))
            }
            LogicalPlan::Select { input, .. }
            | LogicalPlan::ThresholdFilter { input, .. }
            | LogicalPlan::RenameRelation { input, .. } => self.leaf_stats(input),
            _ => None,
        }
    }

    /// Estimated output rows of `plan`; `None` when any required
    /// statistic is missing.
    pub fn est_rows(&self, plan: &LogicalPlan) -> Option<f64> {
        match plan {
            LogicalPlan::Scan { name } => Some(self.rel_stats(name)?.tuples as f64),
            LogicalPlan::Select {
                input, predicate, ..
            } => {
                let rows = self.est_rows(input)?;
                Some(rows * self.selectivity(input, predicate))
            }
            LogicalPlan::ThresholdFilter { input, .. } => {
                Some(self.est_rows(input)? * THRESHOLD_SELECTIVITY)
            }
            LogicalPlan::Project { input, .. }
            | LogicalPlan::RenameRelation { input, .. }
            | LogicalPlan::RenameAttribute { input, .. } => self.est_rows(input),
            LogicalPlan::Product { left, right } => {
                Some(self.est_rows(left)? * self.est_rows(right)?)
            }
            LogicalPlan::Join {
                left, right, on, ..
            } => {
                let l = self.est_rows(left)?;
                let r = self.est_rows(right)?;
                Some(l * r * self.join_selectivity(left, right, on))
            }
            LogicalPlan::Union { left, right } => {
                let l = self.est_rows(left)?;
                let r = self.est_rows(right)?;
                let overlap = self.key_overlap(left, right, l, r);
                Some((l + r - overlap).max(l.max(r)))
            }
            LogicalPlan::Intersect { left, right } => {
                let l = self.est_rows(left)?;
                let r = self.est_rows(right)?;
                Some(self.key_overlap(left, right, l, r))
            }
            LogicalPlan::Difference { left, right } => {
                let l = self.est_rows(left)?;
                let r = self.est_rows(right)?;
                Some((l - self.key_overlap(left, right, l, r)).max(0.0))
            }
        }
    }

    /// Estimated total work (rows touched, with merges inflated by
    /// memo growth) of executing `plan`; `None` when any required
    /// statistic is missing. This is the quantity the exchange
    /// placement compares against its per-worker floor.
    pub fn est_cost(&self, plan: &LogicalPlan) -> Option<f64> {
        match plan {
            LogicalPlan::Scan { .. } => self.est_rows(plan),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::ThresholdFilter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::RenameRelation { input, .. }
            | LogicalPlan::RenameAttribute { input, .. } => {
                Some(self.est_cost(input)? + self.est_rows(input)?)
            }
            LogicalPlan::Product { left, right } => {
                let (cl, cr) = (self.est_cost(left)?, self.est_cost(right)?);
                Some(cl + cr + self.est_rows(left)? * self.est_rows(right)?)
            }
            LogicalPlan::Join { left, right, .. } => {
                let (cl, cr) = (self.est_cost(left)?, self.est_cost(right)?);
                let (l, r) = (self.est_rows(left)?, self.est_rows(right)?);
                Some(cl + cr + l + r + self.est_rows(plan)?)
            }
            LogicalPlan::Union { left, right }
            | LogicalPlan::Intersect { left, right }
            | LogicalPlan::Difference { left, right } => {
                let (cl, cr) = (self.est_cost(left)?, self.est_cost(right)?);
                let (l, r) = (self.est_rows(left)?, self.est_rows(right)?);
                let pairs = self.key_overlap(left, right, l, r);
                Some(cl + cr + l + r + self.merge_weight(left, right) * pairs)
            }
        }
    }

    /// Estimated `(bytes, rows)` of `plan`'s output, for sizing a
    /// merge build side. Bytes scale the leaf relation's encoded
    /// size by the estimated surviving-row fraction.
    pub fn build_estimate(&self, plan: &LogicalPlan) -> Option<(u64, u64)> {
        let (stats, _) = self.leaf_stats(plan)?;
        let rows = self.est_rows(plan)?;
        if stats.tuples == 0 {
            return Some((0, 0));
        }
        let fraction = (rows / stats.tuples as f64).clamp(0.0, 1.0);
        Some(((stats.bytes as f64 * fraction) as u64, rows.max(0.0) as u64))
    }

    /// Memo-growth weight for merging `left` with `right`: the
    /// product of average focal widths, inflated by observed mean κ
    /// when either input carries a conflict summary.
    fn merge_weight(&self, left: &LogicalPlan, right: &LogicalPlan) -> f64 {
        let mut weight = match (self.leaf_stats(left), self.leaf_stats(right)) {
            (Some((l, _)), Some((r, _))) => l.avg_focal_width() * r.avg_focal_width(),
            _ => DEFAULT_MERGE_WEIGHT,
        };
        for side in [left, right] {
            if let Some((stats, _)) = self.leaf_stats(side) {
                if let Some(k) = &stats.kappa {
                    if k.observations > 0 {
                        weight *= 1.0 + k.sum / k.observations as f64;
                    }
                }
            }
        }
        weight
    }

    /// Expected number of key-matched pairs between two inputs, from
    /// the leaves' distinct-key sketches (inclusion–exclusion over
    /// the sketch union); conservative `min/2` fallback when either
    /// sketch is unavailable.
    fn key_overlap(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        l_rows: f64,
        r_rows: f64,
    ) -> f64 {
        let fallback = l_rows.min(r_rows) / 2.0;
        let (Some((ls, _)), Some((rs, _))) = (self.leaf_stats(left), self.leaf_stats(right)) else {
            return fallback;
        };
        let dl = ls.distinct_keys();
        let dr = rs.distinct_keys();
        let union = ls.key_sketch.union_estimate(&rs.key_sketch);
        let overlap_keys = (dl + dr - union).clamp(0.0, dl.min(dr));
        // Scale the key overlap by how much of each leaf survives to
        // the merge (filters thin the match probability).
        let l_frac = if ls.tuples > 0 {
            (l_rows / ls.tuples as f64).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let r_frac = if rs.tuples > 0 {
            (r_rows / rs.tuples as f64).clamp(0.0, 1.0)
        } else {
            0.0
        };
        (overlap_keys * l_frac * r_frac).min(l_rows.min(r_rows))
    }

    /// Estimated pass fraction of `predicate` over `input`'s tuples.
    /// Always returns a usable number — unresolvable conjuncts take
    /// defaults — because selectivity only ever *scales* an estimate
    /// that already required real statistics.
    pub fn selectivity(&self, input: &LogicalPlan, predicate: &Predicate) -> f64 {
        match predicate {
            Predicate::And(a, b) => self.selectivity(input, a) * self.selectivity(input, b),
            Predicate::Or(a, b) => {
                let (sa, sb) = (self.selectivity(input, a), self.selectivity(input, b));
                (sa + sb - sa * sb).clamp(0.0, 1.0)
            }
            Predicate::Not(inner) => (1.0 - self.selectivity(input, inner)).max(0.05),
            Predicate::Is { attr, values } => self
                .is_selectivity(input, attr, values)
                .unwrap_or(DEFAULT_SELECTIVITY),
            Predicate::Theta { left, op, right } => match (left, op, right) {
                (Operand::Attr(attr), ThetaOp::Eq, Operand::Value(_))
                | (Operand::Value(_), ThetaOp::Eq, Operand::Attr(attr)) => self
                    .attr_distinct(input, attr)
                    .map(|d| 1.0 / d.max(1.0))
                    .unwrap_or(DEFAULT_EQ_SELECTIVITY),
                (Operand::Attr(a), ThetaOp::Eq, Operand::Attr(b)) => {
                    match (self.attr_distinct(input, a), self.attr_distinct(input, b)) {
                        (Some(da), Some(db)) => 1.0 / da.max(db).max(1.0),
                        _ => DEFAULT_EQ_SELECTIVITY,
                    }
                }
                _ => DEFAULT_SELECTIVITY,
            },
        }
    }

    /// Join selectivity: the product over definite `=` conjuncts of
    /// `1/max(distinct_L, distinct_R)`, with defaults for everything
    /// else.
    fn join_selectivity(&self, left: &LogicalPlan, right: &LogicalPlan, on: &Predicate) -> f64 {
        let mut conjuncts = Vec::new();
        flatten_and(on, &mut conjuncts);
        let mut sel = 1.0;
        for c in conjuncts {
            sel *= match c {
                Predicate::Theta {
                    left: Operand::Attr(a),
                    op: ThetaOp::Eq,
                    right: Operand::Attr(b),
                } => {
                    // One attribute per side, in either order.
                    let combos = [
                        (self.attr_distinct(left, a), self.attr_distinct(right, b)),
                        (self.attr_distinct(left, b), self.attr_distinct(right, a)),
                    ];
                    combos
                        .iter()
                        .find_map(|(l, r)| match (l, r) {
                            (Some(dl), Some(dr)) => Some(1.0 / dl.max(*dr).max(1.0)),
                            _ => None,
                        })
                        .unwrap_or(DEFAULT_EQ_SELECTIVITY)
                }
                other => self.selectivity(left, other),
            };
        }
        sel
    }

    /// Distinct-value estimate for a (possibly dot-qualified)
    /// definite attribute resolved against `plan`'s leaf relation.
    fn attr_distinct(&self, plan: &LogicalPlan, attr: &str) -> Option<f64> {
        let (stats, schema) = self.leaf_stats(plan)?;
        let pos = resolve_attr(&schema, attr)?;
        stats.distinct_at(pos)
    }

    /// Plausibility-profile selectivity for `attr IS {values}`.
    fn is_selectivity(&self, plan: &LogicalPlan, attr: &str, values: &[Value]) -> Option<f64> {
        let (stats, schema) = self.leaf_stats(plan)?;
        let pos = resolve_attr(&schema, attr)?;
        match schema.attr(pos).ty() {
            AttrType::Evidential(domain) => {
                let mut sel = 0.0;
                for v in values {
                    let idx = domain.index_of(v).ok()?;
                    sel += stats.plausibility_fraction(pos, idx)?;
                }
                Some(sel.clamp(0.0, 1.0))
            }
            AttrType::Definite(_) => stats
                .distinct_at(pos)
                .map(|d| (values.len() as f64 / d.max(1.0)).clamp(0.0, 1.0)),
        }
    }
}

/// Resolve a predicate attribute name against a leaf schema: the
/// plain name first, then (for names the product qualified as
/// `rel.attr`) the suffix after the last dot.
fn resolve_attr(schema: &Schema, attr: &str) -> Option<usize> {
    if let Ok(pos) = schema.position(attr) {
        return Some(pos);
    }
    let suffix = attr.rsplit('.').next()?;
    schema.position(suffix).ok()
}

/// Flatten nested `And` nodes into a conjunct list.
pub(crate) fn flatten_and<'p>(pred: &'p Predicate, out: &mut Vec<&'p Predicate>) {
    match pred {
        Predicate::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{scan, Bindings};
    use evirel_workload::generator::{generate_pair, GeneratorConfig, PairConfig};

    /// The tests below assert the *enabled* estimator; under the
    /// `EVIREL_NO_STATS=1` CI pass the whole model declines to
    /// estimate, so they have nothing to check.
    fn stats_off() -> bool {
        !stats_enabled()
    }

    fn bindings() -> Bindings {
        let (a, b) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples: 300,
                seed: 11,
                ..Default::default()
            },
            key_overlap: 0.5,
            conflict_bias: 0.2,
        })
        .unwrap();
        let mut bind = Bindings::new();
        bind.bind("ga", a);
        bind.bind("gb", b);
        bind
    }

    #[test]
    fn scan_and_filter_estimates() {
        if stats_off() {
            return;
        }
        let bind = bindings();
        let model = CostModel::new(&bind);
        let scan_plan = scan("ga").build();
        assert_eq!(model.est_rows(&scan_plan), Some(300.0));
        let filtered = scan("ga")
            .select(evirel_algebra::Predicate::is("e0", ["v0"]))
            .build();
        let rows = model.est_rows(&filtered).unwrap();
        assert!(rows > 0.0 && rows < 300.0, "selective estimate: {rows}");
        assert!(model.est_cost(&filtered).unwrap() >= 300.0);
        // Unknown relation → no estimate, never a panic.
        assert!(model.est_rows(&scan("ghost").build()).is_none());
    }

    #[test]
    fn union_overlap_uses_sketches() {
        if stats_off() {
            return;
        }
        let bind = bindings();
        let model = CostModel::new(&bind);
        let union = scan("ga").union(scan("gb")).build();
        let rows = model.est_rows(&union).unwrap();
        // 50% key overlap: the merged extension is well under l + r
        // but at least max(l, r).
        assert!(
            (300.0..=560.0).contains(&rows),
            "union estimate tracks overlap: {rows}"
        );
        let inter = scan("ga").intersect(scan("gb")).build();
        let pairs = model.est_rows(&inter).unwrap();
        assert!(
            (60.0..=240.0).contains(&pairs),
            "intersect estimate tracks overlap: {pairs}"
        );
    }

    #[test]
    fn no_stats_env_disables_estimates() {
        let bind = bindings();
        let model = CostModel::new(&bind);
        let plan = scan("ga").build();
        assert_eq!(model.est_rows(&plan).is_some(), stats_enabled());
        // Exercised end-to-end by the `EVIREL_NO_STATS=1` CI pass —
        // here only the parse contract: "0"/"" keep stats on.
        assert!(stats_enabled() || std::env::var(NO_STATS_ENV).is_ok());
    }

    #[test]
    fn build_estimate_scales_bytes() {
        if stats_off() {
            return;
        }
        let bind = bindings();
        let model = CostModel::new(&bind);
        let (full_bytes, full_rows) = model.build_estimate(&scan("ga").build()).unwrap();
        assert_eq!(full_rows, 300);
        assert!(full_bytes > 0);
        let filtered = scan("ga")
            .select(evirel_algebra::Predicate::is("e0", ["v0"]))
            .build();
        let (some_bytes, some_rows) = model.build_estimate(&filtered).unwrap();
        assert!(some_rows < full_rows);
        assert!(some_bytes < full_bytes);
    }
}
