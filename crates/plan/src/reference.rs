//! Naive reference execution: interpret a [`LogicalPlan`] by direct
//! composition of the algebra free functions, fully materializing
//! every intermediate relation.
//!
//! This is deliberately *not* implemented in terms of the streaming
//! operators — it is the independent oracle the equivalence property
//! suite compares them against, and a readable spec of what each node
//! means. The only deviation from the bare free functions is cosmetic:
//! unary operators rename their result back to the input's relation
//! name, matching the plan layer's naming convention (see
//! [`crate::logical`]), so both paths qualify ×̃ name clashes
//! identically.

use crate::error::PlanError;
use crate::logical::{LogicalPlan, RelationSource};
use evirel_algebra::conflict::ConflictReport;
use evirel_algebra::rename::{rename_attribute, rename_relation};
use evirel_algebra::setops::{difference_extended, intersect_extended};
use evirel_algebra::union::{union_with, UnionOptions};
use evirel_algebra::{join, product, project, select, Operand, Predicate, ThetaOp};
use evirel_relation::ExtendedRelation;

/// Execute `plan` naively; returns the result and the accumulated
/// conflict reports of every ∪̃/∩̃ in the tree.
///
/// # Errors
/// Unknown relations plus whatever the free functions raise.
pub fn execute_reference(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
) -> Result<(ExtendedRelation, ConflictReport), PlanError> {
    let mut report = ConflictReport::new();
    let rel = eval(plan, source, options, &mut report)?;
    Ok((rel, report))
}

fn eval(
    plan: &LogicalPlan,
    source: &dyn RelationSource,
    options: &UnionOptions,
    report: &mut ConflictReport,
) -> Result<ExtendedRelation, PlanError> {
    Ok(match plan {
        LogicalPlan::Scan { name } => match source.relation(name) {
            Some(rel) => (*rel).clone(),
            // The oracle materializes stored bindings fully — it is
            // the naive spec, so memory-oblivious by design; the
            // streaming path under test pages instead.
            None => source
                .stored(name)
                .ok_or_else(|| PlanError::UnknownRelation { name: name.clone() })?
                .to_relation()?,
        },
        LogicalPlan::Select {
            input,
            predicate,
            threshold,
        } => {
            let rel = eval(input, source, options, report)?;
            let name = rel.schema().name().to_owned();
            rename_relation(&select(&rel, predicate, threshold)?, &name)
        }
        LogicalPlan::ThresholdFilter { input, threshold } => {
            let rel = eval(input, source, options, report)?;
            let name = rel.schema().name().to_owned();
            // A bare membership filter is a σ̃ whose predicate has
            // support (1, 1) on every tuple: compare a key attribute
            // with itself.
            let key = rel.schema().attr(rel.schema().key_positions()[0]).name();
            let trivially_true =
                Predicate::theta(Operand::attr(key), ThetaOp::Eq, Operand::attr(key));
            rename_relation(&select(&rel, &trivially_true, threshold)?, &name)
        }
        LogicalPlan::Project { input, attrs } => {
            let rel = eval(input, source, options, report)?;
            let name = rel.schema().name().to_owned();
            let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
            rename_relation(&project(&rel, &names)?, &name)
        }
        LogicalPlan::Product { left, right } => {
            let l = eval(left, source, options, report)?;
            let r = eval(right, source, options, report)?;
            product(&l, &r)?
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            threshold,
        } => {
            let l = eval(left, source, options, report)?;
            let r = eval(right, source, options, report)?;
            let name = format!("{}×{}", l.schema().name(), r.schema().name());
            rename_relation(&join(&l, &r, on, threshold)?, &name)
        }
        LogicalPlan::Union { left, right } => {
            let l = eval(left, source, options, report)?;
            let r = eval(right, source, options, report)?;
            let outcome = union_with(&l, &r, options)?;
            for c in outcome.report.conflicts() {
                report.record(c.clone());
            }
            outcome.relation
        }
        LogicalPlan::Intersect { left, right } => {
            let l = eval(left, source, options, report)?;
            let r = eval(right, source, options, report)?;
            let (rel, own) = intersect_extended(&l, &r, options)?;
            for c in own.conflicts() {
                report.record(c.clone());
            }
            rel
        }
        LogicalPlan::Difference { left, right } => {
            let l = eval(left, source, options, report)?;
            let r = eval(right, source, options, report)?;
            difference_extended(&l, &r)?
        }
        LogicalPlan::RenameRelation { input, name } => {
            let rel = eval(input, source, options, report)?;
            rename_relation(&rel, name)
        }
        LogicalPlan::RenameAttribute { input, from, to } => {
            let rel = eval(input, source, options, report)?;
            rename_attribute(&rel, from, to)?
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_plan;
    use crate::logical::{scan, Bindings};
    use crate::ExecContext;
    use evirel_algebra::Threshold;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema};
    use std::sync::Arc;

    #[test]
    fn reference_matches_streaming_on_a_pipeline() {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("A")
                .key_str("k")
                .evidential("d", Arc::clone(&d))
                .build()
                .unwrap(),
        );
        let a = RelationBuilder::new(Arc::clone(&schema))
            .tuple(|t| {
                t.set_str("k", "1")
                    .set_evidence_with_omega("d", [(&["x"][..], 0.6)], 0.4)
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("k", "2")
                    .set_evidence("d", [(&["y"][..], 1.0)])
                    .membership_pair(0.5, 1.0)
            })
            .unwrap()
            .build();
        let b_rel = RelationBuilder::new(Arc::new(schema.renamed("B")))
            .tuple(|t| {
                t.set_str("k", "1")
                    .set_evidence_with_omega("d", [(&["x"][..], 0.5)], 0.5)
            })
            .unwrap()
            .build();
        let mut bindings = Bindings::new();
        bindings.bind("a", a).bind("b", b_rel);
        let plan = scan("a")
            .union(scan("b"))
            .select(Predicate::is("d", ["x"]))
            .threshold(Threshold::SnAtLeast(0.2))
            .project(["k", "d"])
            .build();
        let options = UnionOptions::default();
        let (naive, naive_report) = execute_reference(&plan, &bindings, &options).unwrap();
        let mut ctx = ExecContext::with_options(options);
        let streaming = execute_plan(&plan, &bindings, &mut ctx).unwrap();
        assert!(naive.approx_eq(&streaming));
        // Both paths saw the same (non-total) conflict observations.
        assert_eq!(naive_report.len(), ctx.conflict_report().len());
    }
}
