//! `evirel-bombard` — load generator for the evirel-serve service.
//!
//! ```text
//! evirel-bombard --addr HOST:PORT [--read-addr HOST:PORT]
//!                [--sessions N] [--ops N] [--merge-every K]
//!                [--shutdown]
//! evirel-bombard --addr HOST:PORT --request PAYLOAD
//! ```
//!
//! Opens `--sessions` concurrent connections (barrier-synchronized,
//! one thread each), issues `--ops` requests per session mixing
//! `QUERY` reads with a `MERGE` write every `--merge-every`-th
//! request, and prints the exact counters plus per-verb
//! client-observed latency percentiles (p50/p90/p99/max — what the
//! client waited, queueing and wire included, unlike the server's own
//! handling-time histograms). With `--shutdown` it sends the
//! `SHUTDOWN` verb after the run (the CI clean-shutdown gate).
//!
//! `--read-addr` splits the load across a replicated pair: `QUERY`
//! reads go to the standby at that address (each session opens a
//! second connection) while `MERGE` writes stay on `--addr` — a
//! follower answers writes with `ERR readonly`, so the split is what
//! lets the mixed workload drive a primary/follower deployment with
//! zero expected errors.
//!
//! `--request PAYLOAD` skips the load run entirely: one connection,
//! one request, response printed to stdout (literal `\n` in the
//! payload becomes a newline, so `--request 'QUERY\nSELECT …'` works
//! from a shell). Exit 0 iff the server answered `OK`. This is the
//! scripting interface the crash-recovery CI harness drives STATS and
//! QUERY probes through.
//!
//! Exit status: 0 iff the run saw **zero protocol errors and zero
//! server errors** — the acceptance bar for the service under
//! ≥ 1000 concurrent sessions.

use evirel_workload::driver::{request_once, run_load, LoadConfig};
use std::time::{Duration, Instant};

fn main() {
    let mut config = LoadConfig::default();
    let mut shutdown_after = false;
    let mut one_shot: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!(
                    "usage: evirel-bombard --addr HOST:PORT [--read-addr HOST:PORT] \
                     [--sessions N] [--ops N] [--merge-every K] [--shutdown]\n\
                     \x20      evirel-bombard --addr HOST:PORT --request PAYLOAD"
                );
                return;
            }
            "--request" => one_shot = Some(required(&mut args, "--request")),
            "--addr" => config.addr = required(&mut args, "--addr"),
            "--read-addr" => config.read_addr = Some(required(&mut args, "--read-addr")),
            "--sessions" => config.sessions = parse_num(&required(&mut args, "--sessions"), 1),
            "--ops" => config.ops_per_session = parse_num(&required(&mut args, "--ops"), 1),
            "--merge-every" => {
                // 0 = read-only workload.
                config.merge_every = parse_num(&required(&mut args, "--merge-every"), 0);
            }
            "--shutdown" => shutdown_after = true,
            other => {
                eprintln!("unknown argument {other:?} (see --help)");
                std::process::exit(2);
            }
        }
    }

    if let Some(payload) = one_shot {
        // `\n` from the shell → a real newline, so multi-line verbs
        // (QUERY, MERGE) are expressible in one argument.
        let payload = payload.replace("\\n", "\n");
        match request_once(&config.addr, &payload, Duration::from_secs(30)) {
            Ok(resp) => {
                println!("{resp}");
                if !resp.starts_with("OK") {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("request failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let started = Instant::now();
    let report = run_load(&config);
    let elapsed = started.elapsed();

    println!(
        "evirel-bombard: {} session(s) x {} op(s) against {}{} in {:.2?}",
        config.sessions,
        config.ops_per_session,
        config.addr,
        match &config.read_addr {
            Some(read) => format!(" (reads -> {read})"),
            None => String::new(),
        },
        elapsed
    );
    println!(
        "  completed={} ok={} cached_plans={} merges={} busy_retries={} \
         busy_give_ups={} protocol_errors={} server_errors={}",
        report.sessions_completed,
        report.ops_ok,
        report.cached_plans,
        report.merges_ok,
        report.busy_retries,
        report.busy_give_ups,
        report.protocol_errors,
        report.server_errors,
    );
    for (verb, lat) in [
        ("query", report.query_latency),
        ("merge", report.merge_latency),
        ("ping", report.ping_latency),
    ] {
        if lat.count > 0 {
            println!(
                "  {verb} latency (client-observed, n={}): p50={} p90={} p99={} max={}",
                lat.count,
                format_us(lat.p50_us),
                format_us(lat.p90_us),
                format_us(lat.p99_us),
                format_us(lat.max_us),
            );
        }
    }

    if shutdown_after {
        match request_once(&config.addr, "SHUTDOWN", Duration::from_secs(30)) {
            Ok(resp) if resp.starts_with("OK") => println!("  shutdown acknowledged"),
            Ok(resp) => {
                eprintln!("  shutdown not acknowledged: {resp:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("  shutdown request failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if report.protocol_errors > 0 || report.server_errors > 0 {
        std::process::exit(1);
    }
}

/// Render a microsecond reading at a human scale (µs/ms/s).
fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn required(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

fn parse_num(raw: &str, min: usize) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n >= min => n,
        _ => {
            eprintln!("expected an integer >= {min}, got {raw:?}");
            std::process::exit(2);
        }
    }
}
