//! Parameterized random extended relations for scaling benchmarks.
//!
//! [`GeneratorConfig`] controls the shape of one relation;
//! [`PairConfig`] generates a *pair* of union-compatible relations
//! with a configurable key overlap and a conflict bias — the two knobs
//! the union benchmarks sweep.

use evirel_evidence::{FocalSet, MassFunction};
use evirel_relation::{
    AttrDomain, AttrValue, ExtendedRelation, RelationError, Schema, SupportPair, Tuple, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shape of one generated relation.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of tuples.
    pub tuples: usize,
    /// Number of values in the evidential attribute's domain.
    pub domain_size: usize,
    /// Number of evidential attributes.
    pub evidential_attrs: usize,
    /// Maximum focal elements per evidence set (≥ 1).
    pub max_focal: usize,
    /// Maximum cardinality of each focal element (≥ 1).
    pub max_focal_size: usize,
    /// Probability mass placed on Ω (ignorance floor) per evidence set.
    pub omega_mass: f64,
    /// Fraction of tuples with uncertain membership (`sn < 1`).
    pub uncertain_membership: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            tuples: 1000,
            domain_size: 16,
            evidential_attrs: 3,
            max_focal: 4,
            max_focal_size: 3,
            omega_mass: 0.1,
            uncertain_membership: 0.2,
            seed: 0xEC1DE,
        }
    }
}

/// Shape of a generated relation *pair* for union benchmarks.
#[derive(Debug, Clone)]
pub struct PairConfig {
    /// Shape shared by both relations.
    pub base: GeneratorConfig,
    /// Fraction of keys present in both relations (0.0–1.0).
    pub key_overlap: f64,
    /// Bias toward conflicting evidence on matched tuples: 0.0 draws
    /// the second relation's evidence independently, 1.0 draws it
    /// concentrated on values *disjoint* from the first relation's
    /// core whenever possible.
    pub conflict_bias: f64,
}

impl Default for PairConfig {
    fn default() -> Self {
        PairConfig {
            base: GeneratorConfig::default(),
            key_overlap: 0.5,
            conflict_bias: 0.0,
        }
    }
}

/// The shared domain used by generated relations.
pub fn generated_domain(size: usize) -> Arc<AttrDomain> {
    Arc::new(
        AttrDomain::categorical("gen", (0..size).map(|i| format!("v{i}")))
            .expect("generated labels are unique"),
    )
}

/// The shared schema used by generated relations.
pub fn generated_schema(name: &str, config: &GeneratorConfig) -> Arc<Schema> {
    let domain = generated_domain(config.domain_size);
    let mut b = Schema::builder(name).key_str("k");
    for i in 0..config.evidential_attrs {
        b = b.evidential(format!("e{i}"), Arc::clone(&domain));
    }
    Arc::new(b.build().expect("generated schema is valid"))
}

/// Generate one relation.
///
/// # Errors
/// Propagates tuple-construction failures (which indicate a config
/// with an empty domain).
pub fn generate(name: &str, config: &GeneratorConfig) -> Result<ExtendedRelation, RelationError> {
    let schema = generated_schema(name, config);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rel = ExtendedRelation::new(Arc::clone(&schema));
    for i in 0..config.tuples {
        let tuple = random_tuple(&schema, config, &mut rng, i, None)?;
        rel.insert(tuple)?;
    }
    Ok(rel)
}

/// Generate a union-compatible pair `(left, right)` with the given
/// overlap and conflict bias. Matched keys share the prefix
/// `shared-*`; unmatched keys are disjoint per side.
///
/// # Errors
/// As [`generate`].
pub fn generate_pair(
    config: &PairConfig,
) -> Result<(ExtendedRelation, ExtendedRelation), RelationError> {
    let schema_a = generated_schema("GA", &config.base);
    let schema_b = generated_schema("GB", &config.base);
    let mut rng_a = StdRng::seed_from_u64(config.base.seed);
    let mut rng_b = StdRng::seed_from_u64(config.base.seed.wrapping_add(1));

    let shared = ((config.base.tuples as f64) * config.key_overlap).round() as usize;
    let mut a = ExtendedRelation::new(Arc::clone(&schema_a));
    let mut b = ExtendedRelation::new(Arc::clone(&schema_b));

    for i in 0..config.base.tuples {
        let key = if i < shared {
            format!("shared-{i}")
        } else {
            format!("left-{i}")
        };
        let t = random_tuple_with_key(&schema_a, &config.base, &mut rng_a, &key, None)?;
        a.insert(t)?;
    }
    for i in 0..config.base.tuples {
        let key = if i < shared {
            format!("shared-{i}")
        } else {
            format!("right-{i}")
        };
        // For matched keys, optionally bias toward conflict with the
        // left relation's evidence.
        let avoid = if i < shared && config.conflict_bias > 0.0 {
            a.get_by_key(&[Value::str(key.clone())])
                .and_then(|t| t.value(1).as_evidential())
                .map(|m| m.core())
        } else {
            None
        };
        let avoid = match avoid {
            Some(core) if rng_b.gen_bool(config.conflict_bias) => Some(core),
            _ => None,
        };
        let t = random_tuple_with_key(&schema_b, &config.base, &mut rng_b, &key, avoid)?;
        b.insert(t)?;
    }
    Ok((a, b))
}

fn random_tuple(
    schema: &Arc<Schema>,
    config: &GeneratorConfig,
    rng: &mut StdRng,
    i: usize,
    avoid: Option<FocalSet>,
) -> Result<Tuple, RelationError> {
    random_tuple_with_key(schema, config, rng, &format!("k{i}"), avoid)
}

fn random_tuple_with_key(
    schema: &Arc<Schema>,
    config: &GeneratorConfig,
    rng: &mut StdRng,
    key: &str,
    avoid: Option<FocalSet>,
) -> Result<Tuple, RelationError> {
    let mut values: Vec<AttrValue> = Vec::with_capacity(schema.arity());
    values.push(AttrValue::Definite(Value::str(key)));
    for pos in 1..schema.arity() {
        let domain = schema
            .attr(pos)
            .ty()
            .domain()
            .expect("generated non-key attrs are evidential");
        values.push(AttrValue::Evidential(random_evidence(
            domain,
            config,
            rng,
            avoid.as_ref(),
        )?));
    }
    let membership = if rng.gen_bool(config.uncertain_membership) {
        let sn = rng.gen_range(0.05..1.0);
        let sp = rng.gen_range(sn..=1.0);
        SupportPair::new(sn, sp)?
    } else {
        SupportPair::certain()
    };
    Tuple::new(schema, values, membership)
}

/// Draw a random normalized evidence set. When `avoid` is given (the
/// conflict-bias path), focal elements are drawn from the complement
/// of `avoid` whenever it is non-empty.
fn random_evidence(
    domain: &Arc<AttrDomain>,
    config: &GeneratorConfig,
    rng: &mut StdRng,
    avoid: Option<&FocalSet>,
) -> Result<MassFunction<f64>, RelationError> {
    let n = domain.len();
    let candidates: Vec<usize> = match avoid {
        Some(core) => {
            let comp: Vec<usize> = (0..n).filter(|i| !core.contains(*i)).collect();
            if comp.is_empty() {
                (0..n).collect()
            } else {
                comp
            }
        }
        None => (0..n).collect(),
    };
    let focal_count = rng.gen_range(1..=config.max_focal);
    let mut sets: Vec<FocalSet> = Vec::with_capacity(focal_count);
    for _ in 0..focal_count {
        let size = rng.gen_range(1..=config.max_focal_size.min(candidates.len()));
        let mut members = Vec::with_capacity(size);
        for _ in 0..size {
            members.push(candidates[rng.gen_range(0..candidates.len())]);
        }
        let set = FocalSet::from_indices(members);
        if !sets.contains(&set) {
            sets.push(set);
        }
    }
    let mut weights: Vec<f64> = (0..sets.len()).map(|_| rng.gen_range(0.05..1.0)).collect();
    let budget = 1.0 - config.omega_mass;
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = *w / total * budget;
    }
    // A drawn set can itself be Ω (small domains, large focal sizes);
    // merge the ignorance floor into it instead of declaring Ω twice.
    let omega = FocalSet::full(n);
    let mut entries: Vec<(FocalSet, f64)> = sets.into_iter().zip(weights).collect();
    if config.omega_mass > 0.0 {
        match entries.iter_mut().find(|(s, _)| *s == omega) {
            Some((_, w)) => *w += config.omega_mass,
            None => entries.push((omega, config.omega_mass)),
        }
    }
    let mut builder = MassFunction::<f64>::builder(Arc::clone(domain.frame()));
    for (set, w) in entries {
        builder = builder.add_set(set, w).map_err(RelationError::from)?;
    }
    builder.build().map_err(RelationError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let config = GeneratorConfig {
            tuples: 50,
            ..Default::default()
        };
        let rel = generate("G", &config).unwrap();
        assert_eq!(rel.len(), 50);
        assert_eq!(rel.schema().arity(), 1 + config.evidential_attrs);
        assert!(rel.validate().is_ok());
        for t in rel.iter() {
            for pos in 1..rel.schema().arity() {
                let m = t.value(pos).as_evidential().unwrap();
                assert!(m.focal_count() <= config.max_focal + 1); // +Ω
                let total: f64 = m.iter().map(|(_, w)| *w).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let config = GeneratorConfig {
            tuples: 20,
            ..Default::default()
        };
        let a = generate("G", &config).unwrap();
        let b = generate("G", &config).unwrap();
        assert!(a.approx_eq(&b));
    }

    #[test]
    fn pair_overlap_respected() {
        let config = PairConfig {
            base: GeneratorConfig {
                tuples: 100,
                ..Default::default()
            },
            key_overlap: 0.3,
            conflict_bias: 0.0,
        };
        let (a, b) = generate_pair(&config).unwrap();
        let shared = a.keys().filter(|k| b.contains_key(k)).count();
        assert_eq!(shared, 30);
        assert!(a.schema().check_union_compatible(b.schema()).is_ok());
    }

    #[test]
    fn conflict_bias_raises_conflict() {
        let mk = |bias: f64| {
            let config = PairConfig {
                base: GeneratorConfig {
                    tuples: 200,
                    omega_mass: 0.0,
                    max_focal: 2,
                    max_focal_size: 2,
                    uncertain_membership: 0.0,
                    ..Default::default()
                },
                key_overlap: 1.0,
                conflict_bias: bias,
            };
            let (a, b) = generate_pair(&config).unwrap();
            // Mean Dempster κ over matched evidence.
            let mut total = 0.0;
            let mut count = 0usize;
            for (key, ta) in a.iter_keyed() {
                if let Some(tb) = b.get_by_key(&key) {
                    let ma = ta.value(1).as_evidential().unwrap();
                    let mb = tb.value(1).as_evidential().unwrap();
                    total += evirel_evidence::combine::conflict(ma, mb).unwrap();
                    count += 1;
                }
            }
            total / count as f64
        };
        let low = mk(0.0);
        let high = mk(1.0);
        assert!(
            high > low,
            "conflict bias should raise mean κ: low = {low}, high = {high}"
        );
    }
}
