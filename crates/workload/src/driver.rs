//! Load driver for the evirel-serve query service.
//!
//! This module speaks the service's wire protocol with **zero
//! dependency on the `evirel-serve` crate** (`evirel-query` depends
//! on this crate, so workload → serve would close a cycle). The
//! protocol is re-implemented from its spec — one `u32` big-endian
//! length prefix plus a UTF-8 payload whose first line is the
//! verb/status — and `evirel-serve`'s integration tests run this
//! driver against a live in-process server, so the two
//! implementations cannot drift apart silently.
//!
//! [`run_load`] spawns one OS thread per session; every session
//! opens its own TCP connection (reconnecting with backoff when the
//! server answers `BUSY`), issues a mix of `QUERY` reads and `MERGE`
//! writes, and verifies each response frame. The returned
//! [`LoadReport`] aggregates exact counters — the CI gate asserts
//! `protocol_errors == 0 && server_errors == 0` after a run with
//! ≥ 1000 concurrent sessions.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Frame ceiling mirrored from the service spec.
const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Shape of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:4643`.
    pub addr: String,
    /// Concurrent sessions (one thread + one connection each).
    pub sessions: usize,
    /// Requests per session.
    pub ops_per_session: usize,
    /// Every `merge_every`-th request is a `MERGE` write (10 → 10%
    /// write mix). 0 disables writes.
    pub merge_every: usize,
    /// Merge targets rotate over `m0..m<merge_targets>` by session
    /// id, so writers contend on a handful of names.
    pub merge_targets: usize,
    /// Read-query pool; sessions rotate through it (this is what
    /// makes the server's plan cache earn its keep).
    pub queries: Vec<String>,
    /// Reconnect attempts per request when the server answers `BUSY`.
    pub max_busy_retries: usize,
    /// Backoff between `BUSY` retries (doubles per attempt).
    pub busy_backoff: Duration,
    /// Per-frame read timeout. Must cover the time a session waits in
    /// the server's pending queue behind other sessions.
    pub read_timeout: Duration,
    /// Optional standby address: `QUERY`/`PING` requests route here
    /// over a second per-session connection while `MERGE` writes stay
    /// on `addr` — the read/write split for driving a replicated
    /// primary/follower pair (a follower answers writes with
    /// `ERR readonly`, so sending it the mixed load would count
    /// server errors). `None` sends everything to `addr`.
    pub read_addr: Option<String>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:4643".into(),
            sessions: 64,
            ops_per_session: 8,
            merge_every: 10,
            merge_targets: 8,
            queries: default_queries(),
            max_busy_retries: 8,
            busy_backoff: Duration::from_millis(20),
            read_timeout: Duration::from_secs(300),
            read_addr: None,
        }
    }
}

/// The read mix matching `evirel-serve --seed-workload`: the paper's
/// restaurant databases (`ra`, `rb`) and the generated pair
/// (`ga`, `gb`).
pub fn default_queries() -> Vec<String> {
    [
        "SELECT * FROM ra WITH SN > 0",
        "SELECT * FROM ra UNION rb",
        "SELECT rname, speciality FROM ra WHERE speciality IS {si} WITH SN > 0",
        "SELECT * FROM ra UNION rb WITH SN > 0.5",
        "SELECT * FROM ga UNION gb WITH SN > 0.3",
        "SELECT k, e0 FROM ga WITH SN > 0",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// Exact counters from one [`run_load`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Sessions that completed all their operations.
    pub sessions_completed: u64,
    /// Requests answered `OK`.
    pub ops_ok: u64,
    /// `BUSY` rejections absorbed by reconnect-with-backoff.
    pub busy_retries: u64,
    /// Sessions abandoned after exhausting `BUSY` retries.
    pub busy_give_ups: u64,
    /// Wire-level failures: torn frames, unparseable responses, I/O
    /// errors, timeouts. **Must be zero** on a healthy run.
    pub protocol_errors: u64,
    /// Typed `ERR` responses. Zero for a valid workload.
    pub server_errors: u64,
    /// `QUERY` responses served from the prepared-plan cache
    /// (`cached=1` in the response header).
    pub cached_plans: u64,
    /// Successful `MERGE` writes acknowledged.
    pub merges_ok: u64,
    /// Client-observed latency of successful `QUERY` round-trips.
    pub query_latency: VerbLatency,
    /// Client-observed latency of successful `MERGE` round-trips.
    pub merge_latency: VerbLatency,
    /// Client-observed latency of successful `PING` round-trips
    /// (only populated when the query pool is empty).
    pub ping_latency: VerbLatency,
}

/// Client-observed latency percentiles for one verb, in microseconds
/// (nearest-rank over every successful round-trip of a run). The
/// server's own histograms measure handling time only; this is what
/// the client actually waited, queueing and wire included.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerbLatency {
    /// Round-trips sampled.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl VerbLatency {
    /// Nearest-rank percentiles over raw samples (order irrelevant).
    fn from_samples(samples: &mut [u64]) -> VerbLatency {
        if samples.is_empty() {
            return VerbLatency::default();
        }
        samples.sort_unstable();
        let rank = |q: f64| {
            let idx = ((q * samples.len() as f64).ceil() as usize).saturating_sub(1);
            samples[idx.min(samples.len() - 1)]
        };
        VerbLatency {
            count: samples.len() as u64,
            p50_us: rank(0.50),
            p90_us: rank(0.90),
            p99_us: rank(0.99),
            max_us: samples[samples.len() - 1],
        }
    }
}

/// Which latency bucket a request's round-trip time lands in.
#[derive(Clone, Copy)]
enum Verb {
    Query,
    Merge,
    Ping,
}

#[derive(Default)]
struct Counters {
    sessions_completed: AtomicU64,
    ops_ok: AtomicU64,
    busy_retries: AtomicU64,
    busy_give_ups: AtomicU64,
    protocol_errors: AtomicU64,
    server_errors: AtomicU64,
    cached_plans: AtomicU64,
    merges_ok: AtomicU64,
    // Raw per-verb latency samples (µs), one push per successful
    // round-trip; reduced to percentiles once at report time. A
    // Mutex, not an atomic histogram: sessions push at most once per
    // request, so contention is negligible next to a TCP round-trip.
    query_us: Mutex<Vec<u64>>,
    merge_us: Mutex<Vec<u64>>,
    ping_us: Mutex<Vec<u64>>,
}

impl Counters {
    fn record_latency(&self, verb: Verb, elapsed_us: u64) {
        let samples = match verb {
            Verb::Query => &self.query_us,
            Verb::Merge => &self.merge_us,
            Verb::Ping => &self.ping_us,
        };
        samples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(elapsed_us);
    }

    fn latency(&self, verb: Verb) -> VerbLatency {
        let samples = match verb {
            Verb::Query => &self.query_us,
            Verb::Merge => &self.merge_us,
            Verb::Ping => &self.ping_us,
        };
        VerbLatency::from_samples(&mut samples.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn report(&self) -> LoadReport {
        LoadReport {
            sessions_completed: self.sessions_completed.load(Ordering::Relaxed),
            ops_ok: self.ops_ok.load(Ordering::Relaxed),
            busy_retries: self.busy_retries.load(Ordering::Relaxed),
            busy_give_ups: self.busy_give_ups.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            server_errors: self.server_errors.load(Ordering::Relaxed),
            cached_plans: self.cached_plans.load(Ordering::Relaxed),
            merges_ok: self.merges_ok.load(Ordering::Relaxed),
            query_latency: self.latency(Verb::Query),
            merge_latency: self.latency(Verb::Merge),
            ping_latency: self.latency(Verb::Ping),
        }
    }
}

/// Run the load: `config.sessions` threads, synchronized on a barrier
/// so every session is genuinely concurrent, each issuing
/// `config.ops_per_session` mixed requests.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    let counters = Arc::new(Counters::default());
    let barrier = Arc::new(Barrier::new(config.sessions));
    let mut threads = Vec::with_capacity(config.sessions);
    for sid in 0..config.sessions {
        let config = config.clone();
        let counters = Arc::clone(&counters);
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            run_session(sid, &config, &counters);
        }));
    }
    for t in threads {
        let _ = t.join();
    }
    counters.report()
}

fn run_session(sid: usize, config: &LoadConfig, counters: &Counters) {
    let Some(mut write_conn) = connect(&config.addr, config, counters) else {
        counters.busy_give_ups.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut read_conn = match &config.read_addr {
        None => None,
        Some(addr) => match connect(addr, config, counters) {
            Some(c) => Some(c),
            None => {
                counters.busy_give_ups.fetch_add(1, Ordering::Relaxed);
                return;
            }
        },
    };
    for op in 0..config.ops_per_session {
        // Staggered by session id so a 1-in-K write mix holds across
        // the whole run even when ops_per_session < K.
        let is_merge = config.merge_every > 0 && (sid + op).is_multiple_of(config.merge_every);
        let (request, verb) = if is_merge {
            let target = sid % config.merge_targets.max(1);
            (
                format!("MERGE m{target}\nSELECT * FROM ra UNION rb"),
                Verb::Merge,
            )
        } else if config.queries.is_empty() {
            ("PING".to_owned(), Verb::Ping)
        } else {
            let q = &config.queries[(sid + op) % config.queries.len()];
            (format!("QUERY\n{q}"), Verb::Query)
        };
        // Reads route to the standby when one is configured; writes
        // always go to the primary.
        let use_read = !is_merge && read_conn.is_some();
        let addr = if use_read {
            config.read_addr.as_deref().unwrap_or_default()
        } else {
            config.addr.as_str()
        };
        let conn = if use_read {
            read_conn.as_mut().unwrap_or(&mut write_conn)
        } else {
            &mut write_conn
        };
        let issued = Instant::now();
        match roundtrip(conn, &request) {
            Ok(Reply::Ok(body)) => {
                counters.record_latency(verb, issued.elapsed().as_micros() as u64);
                counters.ops_ok.fetch_add(1, Ordering::Relaxed);
                if is_merge {
                    counters.merges_ok.fetch_add(1, Ordering::Relaxed);
                } else if body.lines().next().is_some_and(|h| h.contains("cached=1")) {
                    counters.cached_plans.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(Reply::Err) => {
                counters.server_errors.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Reply::Busy) => {
                // Mid-session BUSY means the connection is gone;
                // reconnect (with backoff) and retry this op once.
                counters.busy_retries.fetch_add(1, Ordering::Relaxed);
                match connect(addr, config, counters) {
                    Some(c) => {
                        let conn = if use_read {
                            read_conn.insert(c)
                        } else {
                            write_conn = c;
                            &mut write_conn
                        };
                        let retried = Instant::now();
                        match roundtrip(conn, &request) {
                            Ok(Reply::Ok(_)) => {
                                counters.record_latency(verb, retried.elapsed().as_micros() as u64);
                                counters.ops_ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Reply::Err) => {
                                counters.server_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Reply::Busy) => {
                                counters.busy_give_ups.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                            Err(_) => {
                                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                    None => {
                        counters.busy_give_ups.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
            Err(_) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
    counters.sessions_completed.fetch_add(1, Ordering::Relaxed);
}

/// Connect with retry: connection refusals back off and retry (the
/// listener's OS backlog can overflow transiently under a thousand
/// simultaneous SYNs); `None` after the retry budget.
fn connect(addr: &str, config: &LoadConfig, counters: &Counters) -> Option<TcpStream> {
    let mut backoff = config.busy_backoff;
    for attempt in 0..=config.max_busy_retries {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_nodelay(true);
                return Some(stream);
            }
            Err(_) if attempt < config.max_busy_retries => {
                counters.busy_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            Err(_) => return None,
        }
    }
    None
}

enum Reply {
    Ok(String),
    Err,
    Busy,
}

fn roundtrip(stream: &mut TcpStream, request: &str) -> io::Result<Reply> {
    write_frame(stream, request)?;
    let payload = read_frame(stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed before replying",
        )
    })?;
    let (head, body) = payload.split_once('\n').unwrap_or((payload.as_str(), ""));
    match head.split_whitespace().next() {
        Some("OK") => Ok(Reply::Ok(body.to_owned())),
        Some("ERR") => Ok(Reply::Err),
        Some("BUSY") => Ok(Reply::Busy),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unrecognized response status {head:?}"),
        )),
    }
}

/// Send one request over a fresh connection and return the raw
/// response payload — the driver-side primitive `evirel-bombard`
/// uses for `STATS` and `SHUTDOWN`.
///
/// # Errors
/// Connection or framing failures.
pub fn request_once(addr: &str, payload: &str, timeout: Duration) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    write_frame(&mut stream, payload)?;
    read_frame(&mut stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no response frame"))
}

fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    debug_assert!(bytes.len() <= MAX_FRAME_BYTES);
    // Single write per frame (header + payload coalesced) — split
    // writes trip Nagle + delayed-ACK stalls; see the serve protocol.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&u32::to_be_bytes(bytes.len() as u32));
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds protocol ceiling",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}
