//! The paper's running example, verbatim.
//!
//! Source relations `R_A` and `R_B` exactly as printed in Table 1,
//! over the global schema of Figure 2. Abbreviations follow the
//! paper's footnote: specialities `am`(erican), `hu`(nan), `si`(chuan),
//! `ca`(ntonese), `mu`(ghalai), `it`(alian), `ta`(ndoori, appearing
//! only in Table 1's `mehl` row); ratings `ex`(cellent), `gd`(ood),
//! `avg`(erage) ordered `avg < gd < ex`; dishes `d1`–`d36`.
//!
//! The Manager (`M`) and Managed-by (`RM`) relations of Figure 2 are
//! not populated in the paper; [`restaurant_db_a`]/[`restaurant_db_b`]
//! reconstruct small consistent instances for them so that the relationship
//! side of the global schema is exercised too (documented substitution
//! — see DESIGN.md §6).

use evirel_relation::{
    AttrDomain, ExtendedRelation, RelationBuilder, Schema, SupportPair, ValueKind,
};
use std::sync::Arc;

/// The speciality domain Ω_speciality.
pub fn speciality_domain() -> Arc<AttrDomain> {
    Arc::new(
        AttrDomain::categorical("speciality", ["am", "hu", "si", "ca", "mu", "it", "ta"])
            .expect("static domain"),
    )
}

/// The best-dish domain: dishes d1–d36.
pub fn best_dish_domain() -> Arc<AttrDomain> {
    Arc::new(
        AttrDomain::categorical("best-dish", (1..=36).map(|i| format!("d{i}")))
            .expect("static domain"),
    )
}

/// The rating domain, ordered `avg < gd < ex` for θ-predicates.
pub fn rating_domain() -> Arc<AttrDomain> {
    Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).expect("static domain"))
}

/// Schema of the preprocessed restaurant relations (`R_A`, `R_B`).
pub fn restaurant_schema(name: &str) -> Arc<Schema> {
    Arc::new(
        Schema::builder(name)
            .key_str("rname")
            .definite("street", ValueKind::Str)
            .definite("bldg-no", ValueKind::Int)
            .definite("phone", ValueKind::Str)
            .evidential("speciality", speciality_domain())
            .evidential("best-dish", best_dish_domain())
            .evidential("rating", rating_domain())
            .build()
            .expect("static schema"),
    )
}

/// Schema of the Manager relation `M` (Figure 2).
pub fn manager_schema(name: &str) -> Arc<Schema> {
    Arc::new(
        Schema::builder(name)
            .key_str("mname")
            .definite("phone", ValueKind::Str)
            .definite("position", ValueKind::Str)
            .evidential("speciality", speciality_domain())
            .build()
            .expect("static schema"),
    )
}

/// Schema of the Managed-by relationship `RM` (Figure 2): an n:m
/// relationship instance keyed by both entity keys.
pub fn managed_by_schema(name: &str) -> Arc<Schema> {
    Arc::new(
        Schema::builder(name)
            .key_str("rname")
            .key_str("mname")
            .build()
            .expect("static schema"),
    )
}

/// One source database: the three relations of Figure 2.
#[derive(Debug, Clone)]
pub struct RestaurantDb {
    /// Restaurant relation (`R_A` / `R_B`).
    pub restaurants: ExtendedRelation,
    /// Manager relation (`M_A` / `M_B`).
    pub managers: ExtendedRelation,
    /// Managed-by relationship (`RM_A` / `RM_B`).
    pub managed_by: ExtendedRelation,
}

/// `DB_A` — Minnesota Daily. `R_A` is Table 1's upper relation,
/// verbatim.
pub fn restaurant_db_a() -> RestaurantDb {
    let restaurants = RelationBuilder::new(restaurant_schema("RA"))
        .tuple(|t| {
            t.set_str("rname", "garden")
                .set_str("street", "univ.ave.")
                .set_int("bldg-no", 2011)
                .set_str("phone", "371-2155")
                .set_evidence_with_omega(
                    "speciality",
                    [(&["si"][..], 0.5), (&["hu"][..], 0.25)],
                    0.25,
                )
                .set_evidence(
                    "best-dish",
                    [(&["d31"][..], 0.5), (&["d35", "d36"][..], 0.5)],
                )
                .set_evidence(
                    "rating",
                    [
                        (&["ex"][..], 0.33),
                        (&["gd"][..], 0.5),
                        (&["avg"][..], 0.17),
                    ],
                )
        })
        .expect("RA garden")
        .tuple(|t| {
            t.set_str("rname", "wok")
                .set_str("street", "wash.ave.")
                .set_int("bldg-no", 600)
                .set_str("phone", "382-4165")
                .set_evidence("speciality", [(&["si"][..], 1.0)])
                .set_evidence(
                    "best-dish",
                    [
                        (&["d6"][..], 0.33),
                        (&["d7"][..], 0.33),
                        (&["d25"][..], 0.34),
                    ],
                )
                .set_evidence("rating", [(&["gd"][..], 0.25), (&["avg"][..], 0.75)])
        })
        .expect("RA wok")
        .tuple(|t| {
            t.set_str("rname", "country")
                .set_str("street", "plato.blvd")
                .set_int("bldg-no", 12)
                .set_str("phone", "293-9111")
                .set_evidence("speciality", [(&["am"][..], 1.0)])
                .set_evidence_with_omega(
                    "best-dish",
                    [(&["d1"][..], 0.5), (&["d2"][..], 0.33)],
                    0.17,
                )
                .set_evidence("rating", [(&["ex"][..], 1.0)])
        })
        .expect("RA country")
        .tuple(|t| {
            t.set_str("rname", "olive")
                .set_str("street", "nic.ave.")
                .set_int("bldg-no", 514)
                .set_str("phone", "338-0355")
                .set_evidence("speciality", [(&["it"][..], 1.0)])
                .set_evidence("best-dish", [(&["d1"][..], 1.0)])
                .set_evidence("rating", [(&["gd"][..], 0.5), (&["avg"][..], 0.5)])
        })
        .expect("RA olive")
        .tuple(|t| {
            t.set_str("rname", "mehl")
                .set_str("street", "9th-street")
                .set_int("bldg-no", 820)
                .set_str("phone", "333-4035")
                .set_evidence("speciality", [(&["mu"][..], 0.8), (&["ta"][..], 0.2)])
                .set_evidence("best-dish", [(&["d24"][..], 0.4), (&["d31"][..], 0.6)])
                .set_evidence("rating", [(&["ex"][..], 0.8), (&["gd"][..], 0.2)])
                .membership(SupportPair::new(0.5, 0.5).expect("valid"))
        })
        .expect("RA mehl")
        .tuple(|t| {
            t.set_str("rname", "ashiana")
                .set_str("street", "univ.ave.")
                .set_int("bldg-no", 353)
                .set_str("phone", "371-0824")
                .set_evidence_with_omega("speciality", [(&["mu"][..], 0.9)], 0.1)
                .set_evidence("best-dish", [(&["d34"][..], 0.8), (&["d25"][..], 0.2)])
                .set_evidence("rating", [(&["ex"][..], 1.0)])
        })
        .expect("RA ashiana")
        .build();

    let managers = RelationBuilder::new(manager_schema("MA"))
        .tuple(|t| {
            t.set_str("mname", "chen")
                .set_str("phone", "555-1001")
                .set_str("position", "head-chef")
                .set_evidence_with_omega("speciality", [(&["si"][..], 0.7)], 0.3)
        })
        .expect("MA chen")
        .tuple(|t| {
            t.set_str("mname", "rao")
                .set_str("phone", "555-1002")
                .set_str("position", "owner")
                .set_evidence("speciality", [(&["mu"][..], 1.0)])
        })
        .expect("MA rao")
        .build();

    let managed_by = RelationBuilder::new(managed_by_schema("RMA"))
        .tuple(|t| t.set_str("rname", "wok").set_str("mname", "chen"))
        .expect("RMA wok")
        .tuple(|t| {
            t.set_str("rname", "mehl")
                .set_str("mname", "rao")
                .membership(SupportPair::new(0.5, 1.0).expect("valid"))
        })
        .expect("RMA mehl")
        .tuple(|t| t.set_str("rname", "ashiana").set_str("mname", "rao"))
        .expect("RMA ashiana")
        .build();

    RestaurantDb {
        restaurants,
        managers,
        managed_by,
    }
}

/// `DB_B` — Star Tribute. `R_B` is Table 1's lower relation, verbatim.
pub fn restaurant_db_b() -> RestaurantDb {
    let restaurants = RelationBuilder::new(restaurant_schema("RB"))
        .tuple(|t| {
            t.set_str("rname", "garden")
                .set_str("street", "univ.ave.")
                .set_int("bldg-no", 2011)
                .set_str("phone", "371-2155")
                .set_evidence_with_omega(
                    "speciality",
                    [(&["si"][..], 0.5), (&["hu"][..], 0.3)],
                    0.2,
                )
                .set_evidence("best-dish", [(&["d31"][..], 0.7), (&["d35"][..], 0.3)])
                .set_evidence("rating", [(&["ex"][..], 0.2), (&["gd"][..], 0.8)])
        })
        .expect("RB garden")
        .tuple(|t| {
            t.set_str("rname", "wok")
                .set_str("street", "wash.ave.")
                .set_int("bldg-no", 600)
                .set_str("phone", "382-4165")
                .set_evidence_with_omega(
                    "speciality",
                    [(&["ca"][..], 0.2), (&["si"][..], 0.7)],
                    0.1,
                )
                .set_evidence(
                    "best-dish",
                    [
                        (&["d6"][..], 0.5),
                        (&["d7"][..], 0.25),
                        (&["d25"][..], 0.25),
                    ],
                )
                .set_evidence("rating", [(&["gd"][..], 1.0)])
        })
        .expect("RB wok")
        .tuple(|t| {
            t.set_str("rname", "country")
                .set_str("street", "plato.blvd")
                .set_int("bldg-no", 12)
                .set_str("phone", "293-9111")
                .set_evidence("speciality", [(&["am"][..], 1.0)])
                .set_evidence("best-dish", [(&["d1"][..], 0.2), (&["d2"][..], 0.8)])
                .set_evidence("rating", [(&["ex"][..], 0.7), (&["gd"][..], 0.3)])
        })
        .expect("RB country")
        .tuple(|t| {
            t.set_str("rname", "olive")
                .set_str("street", "nic.ave.")
                .set_int("bldg-no", 514)
                .set_str("phone", "338-0355")
                .set_evidence("speciality", [(&["it"][..], 1.0)])
                .set_evidence("best-dish", [(&["d1"][..], 0.8), (&["d2"][..], 0.2)])
                .set_evidence("rating", [(&["gd"][..], 0.8), (&["avg"][..], 0.2)])
        })
        .expect("RB olive")
        .tuple(|t| {
            t.set_str("rname", "mehl")
                .set_str("street", "9th-street")
                .set_int("bldg-no", 820)
                .set_str("phone", "333-4035")
                .set_evidence("speciality", [(&["mu"][..], 1.0)])
                .set_evidence("best-dish", [(&["d24"][..], 0.1), (&["d31"][..], 0.9)])
                .set_evidence("rating", [(&["ex"][..], 1.0)])
                .membership(SupportPair::new(0.8, 1.0).expect("valid"))
        })
        .expect("RB mehl")
        .build();

    let managers = RelationBuilder::new(manager_schema("MB"))
        .tuple(|t| {
            t.set_str("mname", "chen")
                .set_str("phone", "555-1001")
                .set_str("position", "head-chef")
                .set_evidence_with_omega(
                    "speciality",
                    [(&["ca", "si"][..], 0.5), (&["si"][..], 0.3)],
                    0.2,
                )
        })
        .expect("MB chen")
        .tuple(|t| {
            t.set_str("mname", "gruber")
                .set_str("phone", "555-1003")
                .set_str("position", "owner")
                .set_evidence("speciality", [(&["am"][..], 1.0)])
        })
        .expect("MB gruber")
        .build();

    let managed_by = RelationBuilder::new(managed_by_schema("RMB"))
        .tuple(|t| t.set_str("rname", "wok").set_str("mname", "chen"))
        .expect("RMB wok")
        .tuple(|t| t.set_str("rname", "country").set_str("mname", "gruber"))
        .expect("RMB country")
        .build();

    RestaurantDb {
        restaurants,
        managers,
        managed_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::Value;

    #[test]
    fn table1_ra_shape() {
        let db = restaurant_db_a();
        assert_eq!(db.restaurants.len(), 6);
        assert_eq!(db.restaurants.schema().arity(), 7);
        let mehl = db.restaurants.get_by_key(&[Value::str("mehl")]).unwrap();
        assert!(mehl
            .membership()
            .approx_eq(&SupportPair::new(0.5, 0.5).unwrap()));
        let garden = db.restaurants.get_by_key(&[Value::str("garden")]).unwrap();
        let spec = garden.value(4).as_evidential().unwrap();
        let si = speciality_domain()
            .subset_of_values([&Value::str("si")])
            .unwrap();
        assert!((spec.mass_of(&si) - 0.5).abs() < 1e-12);
        // Ω mass present as printed.
        assert!((spec.mass_of(&spec.frame().omega()) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn table1_rb_shape() {
        let db = restaurant_db_b();
        assert_eq!(db.restaurants.len(), 5);
        let mehl = db.restaurants.get_by_key(&[Value::str("mehl")]).unwrap();
        assert!(mehl
            .membership()
            .approx_eq(&SupportPair::new(0.8, 1.0).unwrap()));
        // ashiana exists only in DB_A.
        assert!(db
            .restaurants
            .get_by_key(&[Value::str("ashiana")])
            .is_none());
    }

    #[test]
    fn garden_best_dish_has_multi_element_focal() {
        let db = restaurant_db_a();
        let garden = db.restaurants.get_by_key(&[Value::str("garden")]).unwrap();
        let bd = garden.value(5).as_evidential().unwrap();
        let pair = best_dish_domain()
            .subset_of_values([&Value::str("d35"), &Value::str("d36")])
            .unwrap();
        assert!((bd.mass_of(&pair) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn schemas_union_compatible_across_dbs() {
        let a = restaurant_db_a();
        let b = restaurant_db_b();
        assert!(a
            .restaurants
            .schema()
            .check_union_compatible(b.restaurants.schema())
            .is_ok());
        assert!(a
            .managers
            .schema()
            .check_union_compatible(b.managers.schema())
            .is_ok());
        assert!(a
            .managed_by
            .schema()
            .check_union_compatible(b.managed_by.schema())
            .is_ok());
    }

    #[test]
    fn figure2_relationship_keys() {
        let a = restaurant_db_a();
        assert_eq!(a.managed_by.schema().key_positions().len(), 2);
        assert!(a
            .managed_by
            .get_by_key(&[Value::str("wok"), Value::str("chen")])
            .is_some());
    }

    #[test]
    fn rating_domain_is_ordered_for_theta() {
        let d = rating_domain();
        assert!(d.index_of(&Value::str("avg")).unwrap() < d.index_of(&Value::str("ex")).unwrap());
    }
}
