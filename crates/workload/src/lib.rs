//! # evirel-workload — workloads for the evidential integration system
//!
//! Three generations of input data:
//!
//! * [`restaurant`] — the paper's running example, verbatim: the
//!   Minnesota Daily (`DB_A`) and Star Tribute (`DB_B`) restaurant
//!   databases of Table 1, over the global schema of Figure 2
//!   (Restaurant, Manager, Managed-by). These feed the
//!   table-reproduction harness and the integration example.
//! * [`survey`] — the §1.2 *group voting model*: a panel of food
//!   reviewers votes on best dish and rating, menus are classified
//!   into (possibly ambiguous) speciality classes, and the voting
//!   statistics consolidate into evidence sets. This regenerates
//!   source data statistically identical to what the paper's news
//!   agencies would have collected.
//! * [`generator`] — parameterized random extended relations (tuple
//!   count, domain size, focal-set shape, key overlap, conflict bias)
//!   for the scaling benchmarks.
//!
//! Plus [`driver`] — a dependency-free client for the `evirel-serve`
//! query service and the `evirel-bombard` load-generator binary,
//! which sustains thousands of concurrent mixed read/merge sessions
//! against it.

pub mod driver;
pub mod generator;
pub mod restaurant;
pub mod survey;

pub use driver::{run_load, LoadConfig, LoadReport};
pub use generator::{GeneratorConfig, PairConfig};
pub use restaurant::{restaurant_db_a, restaurant_db_b, RestaurantDb};
pub use survey::{Survey, SurveyConfig};
