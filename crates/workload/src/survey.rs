//! The §1.2 group voting model: regenerating survey data.
//!
//! The paper derives its uncertain attribute values from surveys:
//!
//! > *"a panel of six food reviewers examines the food and service
//! > provided by each restaurant. Each reviewer then casts one vote in
//! > favor of a dish and a vote on the overall rating. The values for
//! > the attributes †best-dish and †rating are derived by
//! > consolidating the voting results."*
//!
//! and specialities come from classifying menu items, where a fraction
//! of dishes is ambiguous between classes (mass on a multi-element
//! subset) or unclassifiable (mass on Ω).
//!
//! The raw survey sheets no longer exist; this module simulates them.
//! A [`Survey`] draws votes from a configurable ground-truth profile
//! and consolidates them into evidence sets exactly as the paper
//! describes: `m({v}) = votes(v) / panel size`, abstentions → Ω,
//! ambiguous classifications → multi-element focal sets.

use evirel_evidence::MassFunction;
use evirel_relation::{AttrDomain, AttrValue, RelationError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration of a simulated survey.
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    /// Number of panel reviewers (the paper uses 6).
    pub panel_size: usize,
    /// Probability that a reviewer abstains (vote goes to Ω).
    pub abstain_rate: f64,
    /// Probability that a classification is ambiguous between the true
    /// value and one neighbour (vote goes to a 2-element subset).
    pub ambiguity_rate: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            panel_size: 6,
            abstain_rate: 0.05,
            ambiguity_rate: 0.15,
            seed: 42,
        }
    }
}

/// A simulated survey over one attribute domain.
#[derive(Debug)]
pub struct Survey {
    domain: Arc<AttrDomain>,
    config: SurveyConfig,
    rng: StdRng,
}

impl Survey {
    /// Create a survey over `domain`.
    pub fn new(domain: Arc<AttrDomain>, config: SurveyConfig) -> Survey {
        let rng = StdRng::seed_from_u64(config.seed);
        Survey {
            domain,
            config,
            rng,
        }
    }

    /// Simulate one panel vote round for an entity whose ground truth
    /// is element index `truth`, with `noise` the probability that a
    /// reviewer votes for a uniformly random other element.
    ///
    /// Returns the consolidated evidence set.
    ///
    /// # Errors
    /// [`RelationError`] if the domain is degenerate (empty).
    pub fn conduct(&mut self, truth: usize, noise: f64) -> Result<AttrValue, RelationError> {
        let n = self.domain.len();
        if n == 0 {
            return Err(RelationError::ValueNotInDomain {
                attr: self.domain.name().to_owned(),
                value: "(empty domain)".to_owned(),
            });
        }
        let truth = truth % n;
        // vote tally: per-singleton, per-ambiguous-pair, and Ω counts.
        let mut singles = vec![0usize; n];
        let mut pairs: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        let mut omega = 0usize;
        for _ in 0..self.config.panel_size {
            if self.rng.gen_bool(self.config.abstain_rate) {
                omega += 1;
                continue;
            }
            let vote = if self.rng.gen_bool(noise) {
                self.rng.gen_range(0..n)
            } else {
                truth
            };
            if n >= 2 && self.rng.gen_bool(self.config.ambiguity_rate) {
                let other = (vote + 1 + self.rng.gen_range(0..n - 1)) % n;
                let key = (vote.min(other), vote.max(other));
                *pairs.entry(key).or_insert(0) += 1;
            } else {
                singles[vote] += 1;
            }
        }
        let total = self.config.panel_size as f64;
        let mut builder = MassFunction::<f64>::builder(Arc::clone(self.domain.frame()));
        for (i, &count) in singles.iter().enumerate() {
            if count > 0 {
                builder = builder
                    .add_set(
                        evirel_evidence::FocalSet::singleton(i),
                        count as f64 / total,
                    )
                    .map_err(RelationError::from)?;
            }
        }
        for ((a, b), count) in pairs {
            builder = builder
                .add_set(
                    evirel_evidence::FocalSet::from_indices([a, b]),
                    count as f64 / total,
                )
                .map_err(RelationError::from)?;
        }
        if omega > 0 {
            builder = builder.add_omega(omega as f64 / total);
        }
        Ok(AttrValue::Evidential(
            builder.build().map_err(RelationError::from)?,
        ))
    }

    /// The paper's worked tally: explicit vote counts per value, e.g.
    /// `{d1: 3, d2: 2, d3: 1}` → `[d1^0.5, d2^0.33, d3^0.17]`.
    /// Counts need not use the whole panel; leftovers go to Ω.
    ///
    /// # Errors
    /// [`RelationError`] for out-of-domain labels or vote counts
    /// exceeding the panel size.
    pub fn consolidate_tally(
        domain: &Arc<AttrDomain>,
        panel_size: usize,
        tally: &[(&str, usize)],
    ) -> Result<AttrValue, RelationError> {
        let cast: usize = tally.iter().map(|(_, c)| c).sum();
        if cast > panel_size {
            return Err(RelationError::InvalidSupportPair {
                sn: cast as f64,
                sp: panel_size as f64,
            });
        }
        let mut builder = MassFunction::<f64>::builder(Arc::clone(domain.frame()));
        for (label, count) in tally {
            if *count == 0 {
                continue;
            }
            let idx = domain.index_of(&evirel_relation::Value::str(*label))?;
            builder = builder
                .add_set(
                    evirel_evidence::FocalSet::singleton(idx),
                    *count as f64 / panel_size as f64,
                )
                .map_err(RelationError::from)?;
        }
        if cast < panel_size {
            builder = builder.add_omega((panel_size - cast) as f64 / panel_size as f64);
        }
        Ok(AttrValue::Evidential(
            builder.build().map_err(RelationError::from)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::Value;

    fn dishes() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("dish", ["d1", "d2", "d3", "d4"]).unwrap())
    }

    /// The paper's §1.2 vote statistics: d1:3, d2:2, d3:1 over a
    /// 6-reviewer panel consolidates to [d1^0.5, d2^0.33, d3^0.17].
    #[test]
    fn paper_vote_consolidation() {
        let ev =
            Survey::consolidate_tally(&dishes(), 6, &[("d1", 3), ("d2", 2), ("d3", 1)]).unwrap();
        let m = ev.as_evidential().unwrap();
        let d = dishes();
        let idx = |l: &str| d.subset_of_values([&Value::str(l)]).unwrap();
        assert!((m.mass_of(&idx("d1")) - 0.5).abs() < 1e-12);
        assert!((m.mass_of(&idx("d2")) - 2.0 / 6.0).abs() < 1e-12);
        assert!((m.mass_of(&idx("d3")) - 1.0 / 6.0).abs() < 1e-12);
    }

    /// Rating tally: excellent:2, good:4 → [ex^0.33, gd^0.67].
    #[test]
    fn paper_rating_consolidation() {
        let ratings = Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap());
        let ev = Survey::consolidate_tally(&ratings, 6, &[("ex", 2), ("gd", 4)]).unwrap();
        let m = ev.as_evidential().unwrap();
        let ex = ratings.subset_of_values([&Value::str("ex")]).unwrap();
        assert!((m.mass_of(&ex) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn partial_tally_fills_omega() {
        let ev = Survey::consolidate_tally(&dishes(), 6, &[("d1", 4)]).unwrap();
        let m = ev.as_evidential().unwrap();
        assert!((m.mass_of(&m.frame().omega()) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn overfull_tally_rejected() {
        assert!(Survey::consolidate_tally(&dishes(), 6, &[("d1", 7)]).is_err());
        assert!(Survey::consolidate_tally(&dishes(), 6, &[("nope", 1)]).is_err());
    }

    #[test]
    fn simulated_survey_is_normalized_and_reproducible() {
        let mut s1 = Survey::new(dishes(), SurveyConfig::default());
        let mut s2 = Survey::new(dishes(), SurveyConfig::default());
        for round in 0..20 {
            let a = s1.conduct(round % 4, 0.2).unwrap();
            let b = s2.conduct(round % 4, 0.2).unwrap();
            assert_eq!(a, b, "same seed, same outcome");
            let m = a.as_evidential().unwrap();
            let total: f64 = m.iter().map(|(_, w)| *w).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_noise_concentrates_on_truth() {
        let mut s = Survey::new(
            dishes(),
            SurveyConfig {
                abstain_rate: 0.0,
                ambiguity_rate: 0.0,
                ..Default::default()
            },
        );
        let ev = s.conduct(2, 0.0).unwrap();
        let m = ev.as_evidential().unwrap();
        assert_eq!(m.as_definite(), Some(2));
    }

    #[test]
    fn ambiguity_produces_multi_element_focals() {
        let mut s = Survey::new(
            dishes(),
            SurveyConfig {
                abstain_rate: 0.0,
                ambiguity_rate: 1.0,
                panel_size: 12,
                seed: 7,
            },
        );
        let ev = s.conduct(0, 0.0).unwrap();
        let m = ev.as_evidential().unwrap();
        assert!(m.iter().all(|(s, _)| s.len() == 2));
    }
}
