//! The end-to-end integration pipeline (Figure 1).
//!
//! [`Integrator`] wires the stages together: attribute preprocessing
//! of both sources, entity identification, tuple merging, and hands
//! back the integrated relation plus a [`StageTrace`] that records
//! what each stage did — the executable rendition of the paper's
//! dataflow figure.

use crate::entity_id::{EntityMatcher, KeyMatcher, MatchOutcome};
use crate::error::IntegrateError;
use crate::merge::{merge_relations_shared, MergeOutcome};
use crate::methods::MethodRegistry;
use crate::preprocess::Preprocessor;
use evirel_algebra::ConflictReport;
use evirel_relation::{ExtendedRelation, Schema};
use std::fmt;
use std::sync::Arc;

/// Per-stage statistics of one integration run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTrace {
    /// Tuples in the left source before preprocessing.
    pub left_in: usize,
    /// Tuples in the right source before preprocessing.
    pub right_in: usize,
    /// Tuples in the preprocessed left relation.
    pub left_preprocessed: usize,
    /// Tuples in the preprocessed right relation.
    pub right_preprocessed: usize,
    /// Matched entity pairs.
    pub matched: usize,
    /// Left-only tuples.
    pub left_only: usize,
    /// Right-only tuples.
    pub right_only: usize,
    /// Tuples in the integrated relation.
    pub integrated: usize,
    /// Attribute conflicts observed during merging.
    pub conflicts: usize,
    /// Largest κ observed.
    pub max_kappa: f64,
}

impl fmt::Display for StageTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Integration trace (Figure 1):")?;
        writeln!(
            f,
            "  attribute preprocessing: R_A {} → R'_A {} tuples; R_B {} → R'_B {} tuples",
            self.left_in, self.left_preprocessed, self.right_in, self.right_preprocessed
        )?;
        writeln!(
            f,
            "  entity identification:   {} matched, {} left-only, {} right-only",
            self.matched, self.left_only, self.right_only
        )?;
        writeln!(
            f,
            "  tuple merging:           {} integrated tuples, {} conflicts (max κ = {:.3})",
            self.integrated, self.conflicts, self.max_kappa
        )
    }
}

/// The complete result of an integration run.
#[derive(Debug, Clone)]
pub struct IntegrationOutcome {
    /// The integrated relation, ready for query processing.
    pub relation: ExtendedRelation,
    /// The conflict report for the data administrator.
    pub report: ConflictReport,
    /// Tuple-matching info from entity identification.
    pub matching: MatchOutcome,
    /// Per-stage statistics.
    pub trace: StageTrace,
}

/// Builder-style integration pipeline.
pub struct Integrator {
    global_schema: Arc<Schema>,
    left_pre: Preprocessor,
    right_pre: Preprocessor,
    matcher: Box<dyn EntityMatcher>,
    registry: MethodRegistry,
}

impl Integrator {
    /// An integrator targeting `global_schema`, with identity
    /// preprocessing, key matching, and evidential-by-default merging.
    pub fn new(global_schema: Arc<Schema>) -> Integrator {
        Integrator {
            global_schema,
            left_pre: Preprocessor::new(),
            right_pre: Preprocessor::new(),
            matcher: Box::new(KeyMatcher),
            registry: MethodRegistry::new(),
        }
    }

    /// Set the left source's preprocessor.
    pub fn with_left_preprocessor(mut self, p: Preprocessor) -> Self {
        self.left_pre = p;
        self
    }

    /// Set the right source's preprocessor.
    pub fn with_right_preprocessor(mut self, p: Preprocessor) -> Self {
        self.right_pre = p;
        self
    }

    /// Set the entity matcher.
    pub fn with_matcher(mut self, m: impl EntityMatcher + 'static) -> Self {
        self.matcher = Box::new(m);
        self
    }

    /// Set the method registry.
    pub fn with_methods(mut self, r: MethodRegistry) -> Self {
        self.registry = r;
        self
    }

    /// Integrate more than two sources by folding [`Integrator::run`]
    /// left to right — sound because Dempster's rule (and therefore
    /// the extended union) is associative and commutative, so the
    /// integration order does not affect the result (§2.2).
    ///
    /// All sources after the first are preprocessed with the *right*
    /// preprocessor; heterogeneous many-way integration should
    /// preprocess each source into the global schema first and then
    /// call this with identity preprocessing.
    ///
    /// Returns the final outcome; the trace and report accumulate
    /// totals across the fold.
    ///
    /// # Errors
    /// As [`Integrator::run`]; fails on the first erroring stage.
    pub fn run_many(
        &self,
        sources: &[&ExtendedRelation],
    ) -> Result<IntegrationOutcome, IntegrateError> {
        let (first, rest) = sources.split_first().ok_or(IntegrateError::BadMatch {
            reason: "run_many requires at least one source".to_owned(),
        })?;
        // Single source: preprocess and pass through.
        let mut acc = Arc::new(
            self.left_pre
                .apply(first, Arc::clone(&self.global_schema))?,
        );
        let mut outcome: Option<IntegrationOutcome> = None;
        for source in rest {
            // The accumulator is already in global terms; only the new
            // source passes through (right) preprocessing, so e.g.
            // reliability discounting is never applied twice.
            let step = self.run_step(Arc::clone(&acc), source)?;
            acc = Arc::new(step.relation.clone());
            outcome = Some(match outcome {
                None => step,
                Some(prev) => IntegrationOutcome {
                    relation: step.relation,
                    report: {
                        let mut merged = prev.report.clone();
                        for c in step.report.conflicts() {
                            merged.record(c.clone());
                        }
                        merged
                    },
                    matching: step.matching,
                    trace: StageTrace {
                        left_in: prev.trace.left_in,
                        right_in: prev.trace.right_in + step.trace.right_in,
                        left_preprocessed: prev.trace.left_preprocessed,
                        right_preprocessed: prev.trace.right_preprocessed
                            + step.trace.right_preprocessed,
                        matched: prev.trace.matched + step.trace.matched,
                        left_only: step.trace.left_only,
                        right_only: prev.trace.right_only + step.trace.right_only,
                        integrated: step.trace.integrated,
                        conflicts: prev.trace.conflicts + step.trace.conflicts,
                        max_kappa: prev.trace.max_kappa.max(step.trace.max_kappa),
                    },
                },
            });
        }
        match outcome {
            Some(o) => Ok(o),
            None => {
                // Exactly one source: report a pass-through outcome.
                let trace = StageTrace {
                    left_in: first.len(),
                    right_in: 0,
                    left_preprocessed: acc.len(),
                    right_preprocessed: 0,
                    matched: 0,
                    left_only: acc.len(),
                    right_only: 0,
                    integrated: acc.len(),
                    conflicts: 0,
                    max_kappa: 0.0,
                };
                Ok(IntegrationOutcome {
                    relation: Arc::try_unwrap(acc).unwrap_or_else(|shared| (*shared).clone()),
                    report: ConflictReport::new(),
                    matching: crate::entity_id::MatchOutcome {
                        matched: Vec::new(),
                        left_only: Vec::new(),
                        right_only: Vec::new(),
                    },
                    trace,
                })
            }
        }
    }

    /// Run the pipeline on two actual source relations.
    ///
    /// # Errors
    /// Stage errors, in stage order: preprocessing, matching, merging.
    pub fn run(
        &self,
        left: &ExtendedRelation,
        right: &ExtendedRelation,
    ) -> Result<IntegrationOutcome, IntegrateError> {
        // Stage 1 (left half): attribute preprocessing.
        let left_pre = Arc::new(self.left_pre.apply(left, Arc::clone(&self.global_schema))?);
        self.run_step(left_pre, right)
    }

    /// Stages 1 (right half) – 3 with an already-preprocessed left
    /// relation.
    fn run_step(
        &self,
        left_pre: Arc<ExtendedRelation>,
        right: &ExtendedRelation,
    ) -> Result<IntegrationOutcome, IntegrateError> {
        let right_pre = Arc::new(
            self.right_pre
                .apply(right, Arc::clone(&self.global_schema))?,
        );

        // Stage 2: entity identification.
        let matching = self.matcher.match_tuples(&left_pre, &right_pre)?;

        // Stage 3: tuple merging — streamed, no input copies.
        let MergeOutcome { relation, report } = merge_relations_shared(
            Arc::clone(&left_pre),
            Arc::clone(&right_pre),
            &matching,
            &self.registry,
        )?;

        let trace = StageTrace {
            left_in: left_pre.len(),
            right_in: right.len(),
            left_preprocessed: left_pre.len(),
            right_preprocessed: right_pre.len(),
            matched: matching.matched_count(),
            left_only: matching.left_only.len(),
            right_only: matching.right_only.len(),
            integrated: relation.len(),
            conflicts: report.len(),
            max_kappa: report.max_kappa(),
        };
        Ok(IntegrationOutcome {
            relation,
            report,
            matching,
            trace,
        })
    }
}

impl fmt::Debug for Integrator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Integrator")
            .field("global_schema", &self.global_schema.name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain_map::DomainMapping;
    use crate::methods::IntegrationMethod;
    use crate::schema_map::SchemaMapping;
    use evirel_algebra::ConflictPolicy;
    use evirel_relation::{AttrDomain, RelationBuilder, Value, ValueKind};

    #[test]
    fn full_pipeline_with_heterogeneous_sources() {
        // Global schema.
        let rating = Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap());
        let global = Arc::new(
            Schema::builder("restaurants")
                .key_str("rname")
                .evidential("rating", Arc::clone(&rating))
                .build()
                .unwrap(),
        );

        // Left source: already in global terms, evidential ratings.
        let left = RelationBuilder::new(Arc::clone(&global))
            .tuple(|t| {
                t.set_str("rname", "wok")
                    .set_evidence("rating", [(&["gd"][..], 0.6), (&["ex"][..], 0.4)])
            })
            .unwrap()
            .build();

        // Right source: letter grades under different attribute names.
        let src_schema = Arc::new(
            Schema::builder("rb")
                .key_str("name")
                .definite("grade", ValueKind::Str)
                .build()
                .unwrap(),
        );
        let right = RelationBuilder::new(src_schema)
            .tuple(|t| t.set_str("name", "wok").set_str("grade", "B"))
            .unwrap()
            .tuple(|t| t.set_str("name", "new-place").set_str("grade", "A"))
            .unwrap()
            .build();

        let integrator = Integrator::new(Arc::clone(&global))
            .with_right_preprocessor(
                Preprocessor::new()
                    .with_schema_mapping(
                        SchemaMapping::identity()
                            .map("name", "rname")
                            .map("grade", "rating"),
                    )
                    .with_domain_mapping(
                        "rating",
                        DomainMapping::new(Arc::clone(&rating))
                            .to_definite("A", "ex")
                            .to_uncertain(
                                "B",
                                vec![
                                    (vec![Value::str("gd")], 0.8),
                                    (vec![Value::str("gd"), Value::str("avg")], 0.2),
                                ],
                            ),
                    ),
            )
            .with_methods(
                MethodRegistry::new()
                    .assign("rating", IntegrationMethod::Evidential)
                    .with_conflict_policy(ConflictPolicy::Vacuous),
            );

        let out = integrator.run(&left, &right).unwrap();
        assert_eq!(out.relation.len(), 2);
        assert_eq!(out.trace.matched, 1);
        assert_eq!(out.trace.right_only, 1);
        // wok's rating is the Dempster combination of the evidential
        // left value and the mapped right value.
        let wok = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
        let m = wok.value(1).as_evidential().unwrap();
        let gd = rating.subset_of_values([&Value::str("gd")]).unwrap();
        assert!(m.mass_of(&gd) > 0.5);
        // Stage trace prints the Figure 1 flow.
        let text = out.trace.to_string();
        assert!(text.contains("attribute preprocessing"));
        assert!(text.contains("entity identification"));
        assert!(text.contains("tuple merging"));
    }

    #[test]
    fn run_many_folds_sources_order_independently() {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y", "z"]).unwrap());
        let global = Arc::new(
            Schema::builder("g")
                .key_str("k")
                .evidential("d", Arc::clone(&d))
                .build()
                .unwrap(),
        );
        let mk = |label: &str, mass: f64| {
            RelationBuilder::new(Arc::clone(&global))
                .tuple(|t| {
                    t.set_str("k", "a").set_evidence_with_omega(
                        "d",
                        [(&[label][..], mass)],
                        1.0 - mass,
                    )
                })
                .unwrap()
                .build()
        };
        let (s1, s2, s3) = (mk("x", 0.5), mk("x", 0.4), mk("y", 0.3));
        let integrator = Integrator::new(Arc::clone(&global));
        let abc = integrator.run_many(&[&s1, &s2, &s3]).unwrap();
        let cba = integrator.run_many(&[&s3, &s2, &s1]).unwrap();
        assert!(abc.relation.approx_eq(&cba.relation));
        assert_eq!(abc.trace.right_in, 2);
        assert_eq!(abc.trace.matched, 2);
        // Single source passes through.
        let single = integrator.run_many(&[&s1]).unwrap();
        assert!(single.relation.approx_eq(&s1));
        assert!(single.report.is_empty());
        // Zero sources error.
        assert!(integrator.run_many(&[]).is_err());
    }

    #[test]
    fn run_many_applies_reliability_once_per_source() {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let global = Arc::new(
            Schema::builder("g")
                .key_str("k")
                .evidential("d", Arc::clone(&d))
                .build()
                .unwrap(),
        );
        let certain = |label: &str| {
            RelationBuilder::new(Arc::clone(&global))
                .tuple(|t| t.set_str("k", "a").set_evidence("d", [(&[label][..], 1.0)]))
                .unwrap()
                .build()
        };
        let integrator = Integrator::new(Arc::clone(&global))
            .with_left_preprocessor(Preprocessor::new().with_reliability(0.8))
            .with_right_preprocessor(Preprocessor::new().with_reliability(0.8));
        // Three fully-conflicting certain sources survive because each
        // is discounted exactly once before combining.
        let (s1, s2, s3) = (certain("x"), certain("x"), certain("y"));
        let out = integrator.run_many(&[&s1, &s2, &s3]).unwrap();
        let t = out.relation.get_by_key(&[Value::str("a")]).unwrap();
        let m = t.value(1).as_evidential().unwrap();
        let x = d.subset_of_values([&Value::str("x")]).unwrap();
        // Two 0.8-discounted x-votes against one 0.8-discounted y-vote.
        assert!(m.bel(&x) > 0.5);
        assert!(m.bel(&x) < 1.0);
    }

    #[test]
    fn default_pipeline_is_key_matched_evidential() {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let global = Arc::new(
            Schema::builder("g")
                .key_str("k")
                .evidential("d", Arc::clone(&d))
                .build()
                .unwrap(),
        );
        let mk = |mass_x: f64| {
            RelationBuilder::new(Arc::clone(&global))
                .tuple(|t| {
                    t.set_str("k", "a").set_evidence_with_omega(
                        "d",
                        [(&["x"][..], mass_x)],
                        1.0 - mass_x,
                    )
                })
                .unwrap()
                .build()
        };
        let out = Integrator::new(Arc::clone(&global))
            .run(&mk(0.5), &mk(0.5))
            .unwrap();
        assert_eq!(out.relation.len(), 1);
        let t = out.relation.get_by_key(&[Value::str("a")]).unwrap();
        let m = t.value(1).as_evidential().unwrap();
        let x = d.subset_of_values([&Value::str("x")]).unwrap();
        // 0.5 ⊕ 0.5 (with Ω rest): m(x) = 0.75.
        assert!((m.mass_of(&x) - 0.75).abs() < 1e-9);
    }
}
