//! Attribute preprocessing (Figure 1): actual source relations →
//! virtual relations over the global schema.
//!
//! Combines a [`SchemaMapping`] (attribute renames) with per-attribute
//! [`DomainMapping`]s (value translation, possibly uncertainty-
//! introducing) and re-types attributes against a target global
//! schema. The output relations are union-compatible and ready for
//! entity identification and tuple merging.

use crate::domain_map::DomainMapping;
use crate::error::IntegrateError;
use crate::schema_map::SchemaMapping;
use evirel_relation::{AttrValue, ExtendedRelation, Schema, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

/// A preprocessing specification for one source relation.
#[derive(Debug, Clone, Default)]
pub struct Preprocessor {
    schema_mapping: SchemaMapping,
    domain_mappings: HashMap<String, DomainMapping>,
    reliability: Option<f64>,
}

impl Preprocessor {
    /// An empty (identity) preprocessor.
    pub fn new() -> Preprocessor {
        Preprocessor::default()
    }

    /// Set the schema mapping.
    pub fn with_schema_mapping(mut self, m: SchemaMapping) -> Self {
        self.schema_mapping = m;
        self
    }

    /// Attach a domain mapping to a *global* attribute name.
    pub fn with_domain_mapping(mut self, attr: impl Into<String>, m: DomainMapping) -> Self {
        self.domain_mappings.insert(attr.into(), m);
        self
    }

    /// Treat this source as reliable only with probability `alpha`:
    /// every evidential attribute value is Shafer-discounted before
    /// combination (extension — see
    /// [`evirel_evidence::discount::discount`]). `alpha = 1` is the
    /// default (fully trusted source).
    pub fn with_reliability(mut self, alpha: f64) -> Self {
        self.reliability = Some(alpha);
        self
    }

    /// Preprocess `rel` into the global schema `target`.
    ///
    /// Steps: rename attributes per the schema mapping; translate each
    /// tuple's values per the domain mappings (identity for unmapped
    /// attributes); re-validate against `target`.
    ///
    /// # Errors
    /// Mapping errors, plus tuple validation errors against the target
    /// schema (e.g. an attribute the mapping left definite where the
    /// global schema wants evidence over a different frame).
    pub fn apply(
        &self,
        rel: &ExtendedRelation,
        target: Arc<Schema>,
    ) -> Result<ExtendedRelation, IntegrateError> {
        let renamed = self.schema_mapping.apply(rel)?;
        let mut out = ExtendedRelation::new(Arc::clone(&target));
        for tuple in renamed.iter() {
            let mut values = Vec::with_capacity(target.arity());
            for target_attr in target.attrs() {
                let src_pos = renamed.schema().position(target_attr.name()).map_err(|_| {
                    IntegrateError::UnmappedAttribute {
                        attr: target_attr.name().to_owned(),
                    }
                })?;
                let raw = tuple.value(src_pos);
                let mut mapped = match self.domain_mappings.get(target_attr.name()) {
                    Some(dm) => dm.map_value(target_attr.name(), raw)?,
                    None => raw.clone(),
                };
                if let (Some(alpha), Some(domain)) = (self.reliability, target_attr.ty().domain()) {
                    // Discount evidential values by source reliability.
                    let ev = mapped.to_evidence(domain)?;
                    mapped = AttrValue::Evidential(
                        evirel_evidence::discount(&ev, &alpha)
                            .map_err(evirel_relation::RelationError::from)?,
                    );
                }
                values.push(mapped);
            }
            let rebuilt = Tuple::new(&target, values, tuple.membership())?;
            out.insert(rebuilt)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain_map::DomainMapping;
    use evirel_relation::{AttrDomain, RelationBuilder, Value, ValueKind};

    /// Source DB stores ratings as letter grades in an attribute
    /// called `grade`; the global schema wants `rating` over
    /// {avg, gd, ex}.
    #[test]
    fn end_to_end_preprocessing() {
        let source_schema = Arc::new(
            Schema::builder("src")
                .key_str("name")
                .definite("grade", ValueKind::Str)
                .build()
                .unwrap(),
        );
        let source = RelationBuilder::new(source_schema)
            .tuple(|t| t.set_str("name", "wok").set_str("grade", "A"))
            .unwrap()
            .tuple(|t| t.set_str("name", "olive").set_str("grade", "B+"))
            .unwrap()
            .build();

        let rating = Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap());
        let global = Arc::new(
            Schema::builder("global")
                .key_str("name")
                .evidential("rating", Arc::clone(&rating))
                .build()
                .unwrap(),
        );

        let pre = Preprocessor::new()
            .with_schema_mapping(SchemaMapping::identity().map("grade", "rating"))
            .with_domain_mapping(
                "rating",
                DomainMapping::new(Arc::clone(&rating))
                    .to_definite("A", "ex")
                    .to_uncertain(
                        "B+",
                        vec![
                            (vec![Value::str("gd")], 0.7),
                            (vec![Value::str("gd"), Value::str("ex")], 0.3),
                        ],
                    ),
            );

        let out = pre.apply(&source, Arc::clone(&global)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().name(), "global");
        // "A" became the definite value ex (stored as definite, legal
        // in an evidential attribute).
        let wok = out.get_by_key(&[Value::str("wok")]).unwrap();
        assert_eq!(wok.value(1).as_definite(), Some(&Value::str("ex")));
        // "B+" became a genuine evidence set.
        let olive = out.get_by_key(&[Value::str("olive")]).unwrap();
        let ev = olive.value(1).as_evidential().unwrap();
        assert_eq!(ev.focal_count(), 2);
    }

    #[test]
    fn missing_target_attribute_reported() {
        let source_schema = Arc::new(Schema::builder("src").key_str("name").build().unwrap());
        let source = RelationBuilder::new(source_schema)
            .tuple(|t| t.set_str("name", "x"))
            .unwrap()
            .build();
        let rating = Arc::new(AttrDomain::categorical("rating", ["gd"]).unwrap());
        let global = Arc::new(
            Schema::builder("g")
                .key_str("name")
                .evidential("rating", rating)
                .build()
                .unwrap(),
        );
        let pre = Preprocessor::new();
        assert!(matches!(
            pre.apply(&source, global),
            Err(IntegrateError::UnmappedAttribute { .. })
        ));
    }

    #[test]
    fn reliability_discounts_evidential_values() {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("R")
                .key_str("k")
                .evidential("d", Arc::clone(&d))
                .build()
                .unwrap(),
        );
        let rel = RelationBuilder::new(Arc::clone(&schema))
            .tuple(|t| t.set_str("k", "a").set_evidence("d", [(&["x"][..], 1.0)]))
            .unwrap()
            .build();
        let out = Preprocessor::new()
            .with_reliability(0.8)
            .apply(&rel, Arc::clone(&schema))
            .unwrap();
        let t = out.get_by_key(&[Value::str("a")]).unwrap();
        let m = t.value(1).as_evidential().unwrap();
        let x = d.subset_of_values([&Value::str("x")]).unwrap();
        assert!((m.mass_of(&x) - 0.8).abs() < 1e-12);
        assert!((m.mass_of(&m.frame().omega()) - 0.2).abs() < 1e-12);
        // An untrusted source (alpha = 0) becomes vacuous but keeps
        // its tuples.
        let out = Preprocessor::new()
            .with_reliability(0.0)
            .apply(&rel, Arc::clone(&schema))
            .unwrap();
        let t = out.get_by_key(&[Value::str("a")]).unwrap();
        assert!(t.value(1).as_evidential().unwrap().is_vacuous());
    }

    #[test]
    fn identity_preprocessing_keeps_relation() {
        let d = Arc::new(AttrDomain::categorical("d", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("R")
                .key_str("k")
                .evidential("d", Arc::clone(&d))
                .build()
                .unwrap(),
        );
        let rel = RelationBuilder::new(Arc::clone(&schema))
            .tuple(|t| t.set_str("k", "a").set_evidence("d", [(&["x"][..], 1.0)]))
            .unwrap()
            .build();
        let out = Preprocessor::new()
            .apply(&rel, Arc::clone(&schema))
            .unwrap();
        assert!(out.approx_eq(&rel));
    }
}
