//! Entity identification (Figure 1): which tuples denote the same
//! real-world entity?
//!
//! The paper assumes the preprocessed relations share a common
//! definite key (§1.1: *"For simplicity, we assume that the
//! preprocessed relations share a common key which determines the
//! matched tuples"*) — [`KeyMatcher`]. The general problem is the
//! authors' companion work (Lim et al., ICDE 1993); the
//! [`EntityMatcher`] trait leaves room for richer matchers, of which
//! [`NormalizedKeyMatcher`] (case/whitespace-insensitive string keys)
//! is a small useful instance.

use crate::error::IntegrateError;
use evirel_relation::{ExtendedRelation, Value};

/// The product of entity identification: Figure 1's "Tuple Matching
/// Info."
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    /// Key pairs `(left key, right key)` identified as the same
    /// entity.
    pub matched: Vec<(Vec<Value>, Vec<Value>)>,
    /// Left keys with no counterpart.
    pub left_only: Vec<Vec<Value>>,
    /// Right keys with no counterpart.
    pub right_only: Vec<Vec<Value>>,
}

impl MatchOutcome {
    /// Total number of matched pairs.
    pub fn matched_count(&self) -> usize {
        self.matched.len()
    }
}

/// A tuple-matching strategy.
pub trait EntityMatcher {
    /// Identify matching tuples between two relations.
    ///
    /// # Errors
    /// Matcher-specific failures (e.g. ambiguous matches).
    fn match_tuples(
        &self,
        left: &ExtendedRelation,
        right: &ExtendedRelation,
    ) -> Result<MatchOutcome, IntegrateError>;
}

/// Exact common-key matching — the paper's assumption.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyMatcher;

impl EntityMatcher for KeyMatcher {
    fn match_tuples(
        &self,
        left: &ExtendedRelation,
        right: &ExtendedRelation,
    ) -> Result<MatchOutcome, IntegrateError> {
        let mut matched = Vec::new();
        let mut left_only = Vec::new();
        for key in left.keys() {
            if right.contains_key(&key) {
                matched.push((key.clone(), key));
            } else {
                left_only.push(key);
            }
        }
        let right_only = right.keys().filter(|k| !left.contains_key(k)).collect();
        Ok(MatchOutcome {
            matched,
            left_only,
            right_only,
        })
    }
}

/// Key matching after normalizing string key components (lowercase,
/// trimmed, inner whitespace collapsed) — tolerates clerical
/// differences like `"Wok "` vs `"wok"`.
///
/// # Errors
/// [`IntegrateError::BadMatch`] if normalization makes two distinct
/// keys of the *same* relation collide (the match would be ambiguous).
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedKeyMatcher;

fn normalize_key(key: &[Value]) -> Vec<Value> {
    key.iter()
        .map(|v| match v {
            Value::Str(s) => {
                let collapsed = s.split_whitespace().collect::<Vec<_>>().join(" ");
                Value::str(collapsed.to_lowercase())
            }
            other => other.clone(),
        })
        .collect()
}

impl EntityMatcher for NormalizedKeyMatcher {
    fn match_tuples(
        &self,
        left: &ExtendedRelation,
        right: &ExtendedRelation,
    ) -> Result<MatchOutcome, IntegrateError> {
        use std::collections::HashMap;
        let mut norm_right: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
        for key in right.keys() {
            let norm = normalize_key(&key);
            if norm_right.insert(norm.clone(), key).is_some() {
                return Err(IntegrateError::BadMatch {
                    reason: format!(
                        "normalization collides right keys at {}",
                        Value::render_key(&norm)
                    ),
                });
            }
        }
        let mut seen_left: HashMap<Vec<Value>, ()> = HashMap::new();
        let mut matched = Vec::new();
        let mut left_only = Vec::new();
        for key in left.keys() {
            let norm = normalize_key(&key);
            if seen_left.insert(norm.clone(), ()).is_some() {
                return Err(IntegrateError::BadMatch {
                    reason: format!(
                        "normalization collides left keys at {}",
                        Value::render_key(&norm)
                    ),
                });
            }
            match norm_right.get(&norm) {
                Some(rkey) => matched.push((key, rkey.clone())),
                None => left_only.push(key),
            }
        }
        let matched_right: std::collections::HashSet<&Vec<Value>> =
            matched.iter().map(|(_, r)| r).collect();
        let right_only = right
            .keys()
            .filter(|k| !matched_right.contains(k))
            .collect();
        Ok(MatchOutcome {
            matched,
            left_only,
            right_only,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema};
    use std::sync::Arc;

    fn rel(name: &str, keys: &[&str]) -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("d", ["x"]).unwrap());
        let schema = Arc::new(
            Schema::builder(name)
                .key_str("k")
                .evidential("d", Arc::clone(&d))
                .build()
                .unwrap(),
        );
        let mut b = RelationBuilder::new(schema);
        for k in keys {
            b = b
                .tuple(|t| t.set_str("k", *k).set_evidence("d", [(&["x"][..], 1.0)]))
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn key_matcher_partitions() {
        let a = rel("A", &["garden", "wok", "ashiana"]);
        let b = rel("B", &["garden", "wok", "mehl"]);
        let m = KeyMatcher.match_tuples(&a, &b).unwrap();
        assert_eq!(m.matched_count(), 2);
        assert_eq!(m.left_only, vec![vec![Value::str("ashiana")]]);
        assert_eq!(m.right_only, vec![vec![Value::str("mehl")]]);
    }

    #[test]
    fn normalized_matcher_tolerates_case_and_space() {
        let a = rel("A", &["Garden ", "WOK"]);
        let b = rel("B", &["garden", "wok"]);
        let m = NormalizedKeyMatcher.match_tuples(&a, &b).unwrap();
        assert_eq!(m.matched_count(), 2);
        assert!(m.left_only.is_empty());
        assert!(m.right_only.is_empty());
    }

    #[test]
    fn normalized_matcher_rejects_collisions() {
        let a = rel("A", &["Wok", "wok "]);
        let b = rel("B", &["wok"]);
        assert!(matches!(
            NormalizedKeyMatcher.match_tuples(&a, &b),
            Err(IntegrateError::BadMatch { .. })
        ));
    }

    #[test]
    fn empty_relations_match_trivially() {
        let a = rel("A", &[]);
        let b = rel("B", &["x"]);
        let m = KeyMatcher.match_tuples(&a, &b).unwrap();
        assert_eq!(m.matched_count(), 0);
        assert_eq!(m.right_only.len(), 1);
    }
}
