//! Schema mapping: attribute correspondences (Figure 1's "Schema
//! Mapping" input).
//!
//! Schema integration (out of scope per §1, handled by [6, 8] in the
//! paper) produces correspondences between source attribute names and
//! global-schema attribute names. This module consumes that product: a
//! [`SchemaMapping`] renames source attributes to their global
//! counterparts so the preprocessed relations agree attribute-wise.

use crate::error::IntegrateError;
use evirel_algebra::rename::rename_attribute;
use evirel_relation::ExtendedRelation;
use std::collections::HashMap;

/// A source-to-global attribute name mapping for one relation.
#[derive(Debug, Clone, Default)]
pub struct SchemaMapping {
    renames: HashMap<String, String>,
}

impl SchemaMapping {
    /// An identity mapping (source names already match the global
    /// schema).
    pub fn identity() -> SchemaMapping {
        SchemaMapping::default()
    }

    /// Add a correspondence `source_attr ↦ global_attr`.
    pub fn map(mut self, source_attr: impl Into<String>, global_attr: impl Into<String>) -> Self {
        self.renames.insert(source_attr.into(), global_attr.into());
        self
    }

    /// Number of non-identity correspondences.
    pub fn len(&self) -> usize {
        self.renames.len()
    }

    /// `true` when the mapping is the identity.
    pub fn is_empty(&self) -> bool {
        self.renames.is_empty()
    }

    /// Apply the mapping, renaming attributes.
    ///
    /// # Errors
    /// [`IntegrateError::UnmappedAttribute`] when a source attribute
    /// named in the mapping does not exist in the relation.
    pub fn apply(&self, rel: &ExtendedRelation) -> Result<ExtendedRelation, IntegrateError> {
        let mut out = rel.clone();
        for (from, to) in &self.renames {
            if from == to {
                continue;
            }
            out = rename_attribute(&out, from, to).map_err(|e| match e {
                evirel_algebra::AlgebraError::Relation(
                    evirel_relation::RelationError::UnknownAttribute { .. },
                ) => IntegrateError::UnmappedAttribute { attr: from.clone() },
                other => IntegrateError::Algebra(other),
            })?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema};
    use std::sync::Arc;

    fn rel() -> ExtendedRelation {
        let d = Arc::new(AttrDomain::categorical("cuisine", ["x", "y"]).unwrap());
        let schema = Arc::new(
            Schema::builder("src")
                .key_str("name")
                .evidential("cuisine", d)
                .build()
                .unwrap(),
        );
        RelationBuilder::new(schema)
            .tuple(|t| {
                t.set_str("name", "a")
                    .set_evidence("cuisine", [(&["x"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    #[test]
    fn identity_is_noop() {
        let out = SchemaMapping::identity().apply(&rel()).unwrap();
        assert_eq!(out.schema().name(), "src");
        assert!(out.schema().position("cuisine").is_ok());
    }

    #[test]
    fn renames_apply() {
        let m = SchemaMapping::identity()
            .map("name", "rname")
            .map("cuisine", "speciality");
        assert_eq!(m.len(), 2);
        let out = m.apply(&rel()).unwrap();
        assert!(out.schema().position("rname").is_ok());
        assert!(out.schema().position("speciality").is_ok());
        assert!(out.schema().position("cuisine").is_err());
        // Key-ness survives.
        assert!(out.schema().attr_by_name("rname").unwrap().is_key());
    }

    #[test]
    fn unknown_source_attr_reported() {
        let m = SchemaMapping::identity().map("zzz", "w");
        assert!(matches!(
            m.apply(&rel()),
            Err(IntegrateError::UnmappedAttribute { .. })
        ));
    }

    #[test]
    fn self_mapping_is_noop() {
        let m = SchemaMapping::identity().map("cuisine", "cuisine");
        let out = m.apply(&rel()).unwrap();
        assert!(out.schema().position("cuisine").is_ok());
    }
}
