//! # evirel-integrate — the database integration framework
//!
//! The paper's Figure 1 as an executable pipeline:
//!
//! ```text
//! R_A ──┐                                        ┌── R_B
//!       ▼                                        ▼
//!   attribute preprocessing  (schema mapping + attribute domain info)
//!       │                                        │
//!       ▼                                        ▼
//!      R'_A ──── entity identification ──────► R'_B
//!                  (tuple matching info)
//!                         │
//!                         ▼
//!                   tuple merging     (attribute integration methods)
//!                         │
//!                         ▼
//!                 integrated relation ──► query processing
//! ```
//!
//! * [`schema_map`] — attribute correspondences between a source
//!   relation and the global schema;
//! * [`domain_map`] — attribute domain information: value-level maps
//!   from source domains to global domains, including one-to-many
//!   mappings that *introduce* uncertainty (DeMichiel's observation,
//!   §1 of the paper);
//! * [`preprocess`] — applies both to turn actual source relations
//!   into virtual relations over the global schema;
//! * [`entity_id`] — tuple matching; the paper assumes a shared
//!   definite key (the [`entity_id::KeyMatcher`]), with a pluggable
//!   trait for fuzzier matchers;
//! * [`methods`] — per-attribute integration methods: evidential
//!   combination (the paper's contribution) coexisting with Dayal-style
//!   aggregates, exactly as §1.3 proposes;
//! * [`merge`] — tuple merging driven by the method registry;
//! * [`pipeline`] — the end-to-end [`pipeline::Integrator`] with a
//!   stage-by-stage trace.

pub mod domain_map;
pub mod entity_id;
pub mod error;
pub mod merge;
pub mod methods;
pub mod pipeline;
pub mod preprocess;
pub mod schema_map;

pub use domain_map::{DomainMapping, MappedValue};
pub use entity_id::{EntityMatcher, KeyMatcher, MatchOutcome, NormalizedKeyMatcher};
pub use error::IntegrateError;
pub use merge::{
    merge_relations, merge_relations_sharded, merge_relations_shared, merge_stored, MergeOutcome,
};
pub use methods::{IntegrationMethod, MethodRegistry};
pub use pipeline::{IntegrationOutcome, Integrator, StageTrace};
pub use preprocess::Preprocessor;
pub use schema_map::SchemaMapping;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, IntegrateError>;
