//! Tuple merging (Figure 1): combine matched tuples into the
//! integrated relation, driven by the attribute integration methods.
//!
//! This generalizes the extended union ∪̃ of the algebra layer: where
//! ∪̃ applies Dempster's rule to *every* non-key attribute, the merger
//! dispatches per attribute through the [`MethodRegistry`], so
//! evidential combination, Dayal aggregates, and trust policies
//! coexist — the §1.3 coexistence claim, executable.
//!
//! Execution runs through `evirel-plan`'s streaming [`MergeOp`]: the
//! right relation is key-indexed once, the left relation streams
//! through, and `RegistryMerger` plugs the per-attribute method
//! dispatch into the same operator that serves the algebra's ∪̃ — so
//! the Figure 1 merge stage and EQL's `UNION` share one executor.
//! With `EVIREL_THREADS` > 1 (the [`ExecContext`] parallelism
//! default) and inputs large enough to amortize partitioning, the
//! merge runs through the plan layer's exchange operator instead: N
//! hash-sharded `MergeOp`s on worker threads, re-merged
//! deterministically — matched pairs route both sides by the
//! *canonical* (left) key, so matcher-paired tuples with unequal keys
//! still land in the same shard.

use crate::entity_id::MatchOutcome;
use crate::error::IntegrateError;
use crate::methods::{IntegrationMethod, MethodRegistry};
use evirel_algebra::partition::Partitioner;
use evirel_algebra::{AttributeConflict, ConflictPolicy, ConflictReport};
use evirel_evidence::{rules::CombinationRule, EvidenceError, MassFunction};
use evirel_plan::{
    compute_slots, rank_keys, ExchangeOp, ExecContext, MergeOp, MergePairing, Operator, OrderMap,
    PlanError, ScanOp, ShardScanOp, TupleMerger,
};
use evirel_relation::{AttrType, AttrValue, ExtendedRelation, Schema, SupportPair, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Below this many tuples per worker the sequential merge wins.
const MIN_TUPLES_PER_THREAD: usize = 64;

/// The result of tuple merging.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The integrated relation.
    pub relation: ExtendedRelation,
    /// Conflict observations for the data administrator.
    pub report: ConflictReport,
}

/// Merge two preprocessed relations according to `matching` and
/// `registry`.
///
/// # Errors
/// * [`IntegrateError::Relation`] for union-incompatible schemas;
/// * [`IntegrateError::MethodMismatch`] from registry validation;
/// * [`IntegrateError::Algebra`] wrapping a total conflict under
///   [`ConflictPolicy::Error`].
pub fn merge_relations(
    left: &ExtendedRelation,
    right: &ExtendedRelation,
    matching: &MatchOutcome,
    registry: &MethodRegistry,
) -> Result<MergeOutcome, IntegrateError> {
    // The per-Arc shallow clone here only bumps tuple refcounts and
    // rebuilds the key index; the pipeline avoids even that via
    // [`merge_relations_shared`].
    merge_relations_shared(
        Arc::new(left.clone()),
        Arc::new(right.clone()),
        matching,
        registry,
    )
}

/// [`merge_relations`] over shared handles — the zero-copy entry
/// point the pipeline uses (scan operators stream the relations
/// without cloning them). Runs with [`evirel_plan::default_parallelism`]
/// worker threads (the `EVIREL_THREADS` environment variable, else
/// sequential).
///
/// # Errors
/// As [`merge_relations`].
pub fn merge_relations_shared(
    left: Arc<ExtendedRelation>,
    right: Arc<ExtendedRelation>,
    matching: &MatchOutcome,
    registry: &MethodRegistry,
) -> Result<MergeOutcome, IntegrateError> {
    merge_relations_sharded(
        left,
        right,
        matching,
        registry,
        evirel_plan::default_parallelism(),
    )
}

/// [`merge_relations_shared`] with an explicit thread budget: the
/// merge stage runs through the plan layer's exchange operator when
/// `threads > 1` and the inputs are large enough to amortize
/// partitioning, and is guaranteed to produce the sequential result
/// bit for bit either way.
///
/// # Errors
/// As [`merge_relations`].
pub fn merge_relations_sharded(
    left: Arc<ExtendedRelation>,
    right: Arc<ExtendedRelation>,
    matching: &MatchOutcome,
    registry: &MethodRegistry,
    threads: usize,
) -> Result<MergeOutcome, IntegrateError> {
    let schema = left.schema();
    schema
        .check_union_compatible(right.schema())
        .map_err(IntegrateError::Relation)?;
    registry.validate(schema)?;
    let pairing = validated_pairing(matching, &|k| left.contains_key(k), &|k| {
        right.contains_key(k)
    })?;

    let name = format!("{}⊎{}", schema.name(), right.schema().name());
    let mut ctx = ExecContext::new();
    ctx.parallelism = 1; // the thread budget is spent here, not below
    let left_name = schema.name().to_owned();
    let right_name = right.schema().name().to_owned();
    let threads = threads.max(1);
    let relation = if threads > 1 && left.len() + right.len() >= threads * MIN_TUPLES_PER_THREAD {
        // Parallel merge stage: N hash-sharded MergeOps under an
        // exchange. Right tuples route (and order-rank) under their
        // canonical left key so matched pairs share a shard.
        let canonical: HashMap<Vec<Value>, Vec<Value>> = pairing
            .matched
            .iter()
            .map(|(lk, rk)| (rk.clone(), lk.clone()))
            .collect();
        let mut order = OrderMap::new();
        rank_keys(&mut order, &left, None);
        rank_keys(&mut order, &right, Some(&canonical));
        let partitioner = Partitioner::new(threads);
        // One slot table per relation and one shared pairing handle —
        // the shards clone nothing proportional to the input.
        let left_slots = compute_slots(&left, partitioner, None);
        let right_slots = compute_slots(&right, partitioner, Some(&canonical));
        let pairing = Arc::new(pairing);
        let shards = (0..threads)
            .map(|shard| {
                MergeOp::with_shared_pairing(
                    Box::new(ShardScanOp::with_slots(
                        left_name.clone(),
                        Arc::clone(&left),
                        partitioner,
                        shard,
                        Arc::clone(&left_slots),
                    )),
                    Box::new(ShardScanOp::with_slots(
                        right_name.clone(),
                        Arc::clone(&right),
                        partitioner,
                        shard,
                        Arc::clone(&right_slots),
                    )),
                    Box::new(RegistryMerger::new(registry.clone())),
                    Arc::clone(&pairing),
                    name.clone(),
                )
                .map(|op| Box::new(op) as Box<dyn Operator>)
            })
            .collect::<Result<Vec<_>, _>>()
            .map_err(from_plan_error)?;
        let mut op = ExchangeOp::new(shards, order).map_err(from_plan_error)?;
        evirel_plan::run(&mut op, &mut ctx).map_err(from_plan_error)?
    } else {
        let mut op = MergeOp::with_pairing(
            Box::new(ScanOp::new(left_name, left)),
            Box::new(ScanOp::new(right_name, right)),
            Box::new(RegistryMerger::new(registry.clone())),
            pairing,
            name,
        )
        .map_err(from_plan_error)?;
        evirel_plan::run(&mut op, &mut ctx).map_err(from_plan_error)?
    };
    Ok(MergeOutcome {
        relation,
        report: ctx.conflict_report(),
    })
}

/// Check matcher consistency up front and build the operator pairing:
/// the streaming operator silently skips keys it never encounters, so
/// every listed key must exist (per the membership predicates), and a
/// key may be claimed at most once across `matched` and the `*_only`
/// lists of its side (the old materializing merger made such mistakes
/// loud via duplicate-key insert failures or silently produced extra
/// rows). Shared by the in-memory and stored merge entry points.
fn validated_pairing(
    matching: &MatchOutcome,
    left_has: &dyn Fn(&[Value]) -> bool,
    right_has: &dyn Fn(&[Value]) -> bool,
) -> Result<MergePairing, IntegrateError> {
    let require =
        |has: &dyn Fn(&[Value]) -> bool, key: &[Value], side: &str| -> Result<(), IntegrateError> {
            if has(key) {
                Ok(())
            } else {
                Err(IntegrateError::BadMatch {
                    reason: format!("{side} key {} not found", Value::render_key(key)),
                })
            }
        };
    let mut matched = std::collections::HashMap::with_capacity(matching.matched.len());
    let mut matched_right = std::collections::HashSet::with_capacity(matching.matched.len());
    for (lk, rk) in &matching.matched {
        require(left_has, lk, "left")?;
        require(right_has, rk, "right")?;
        if !matched_right.insert(rk.clone()) {
            return Err(IntegrateError::BadMatch {
                reason: format!("right key {} matched twice", Value::render_key(rk)),
            });
        }
        if matched.insert(lk.clone(), rk.clone()).is_some() {
            return Err(IntegrateError::BadMatch {
                reason: format!("left key {} matched twice", Value::render_key(lk)),
            });
        }
    }
    for key in &matching.left_only {
        require(left_has, key, "left")?;
        if matched.contains_key(key.as_slice()) {
            return Err(IntegrateError::BadMatch {
                reason: format!(
                    "left key {} is both matched and left-only",
                    Value::render_key(key)
                ),
            });
        }
    }
    for key in &matching.right_only {
        require(right_has, key, "right")?;
        if matched_right.contains(key.as_slice()) {
            return Err(IntegrateError::BadMatch {
                reason: format!(
                    "right key {} is both matched and right-only",
                    Value::render_key(key)
                ),
            });
        }
    }
    Ok(MergePairing {
        matched,
        left_only: matching.left_only.iter().cloned().collect(),
        right_only: matching.right_only.iter().cloned().collect(),
    })
}

/// Merge two *stored* relations directly from their on-disk segments:
/// both sides stream through the plan layer's spill scan (one decoded
/// page in memory at a time), the right side's key index is built
/// from its segment in one pass, and the registry merger dispatches
/// per attribute exactly as in [`merge_relations`]. The result and
/// conflict report are identical to materializing both relations and
/// merging in memory — proptest-checked in the merge tests.
///
/// Cost note: matcher validation needs key membership for both
/// sides, which costs one extra streaming decode pass per segment up
/// front (keys only are retained) before the merge's own pass. A
/// segment-resident key directory would remove it — named as a next
/// step on the ROADMAP storage item.
///
/// # Errors
/// As [`merge_relations`], plus storage-engine failures while
/// scanning the segments.
pub fn merge_stored(
    left: &Arc<evirel_plan::StoredRelation>,
    right: &Arc<evirel_plan::StoredRelation>,
    matching: &MatchOutcome,
    registry: &MethodRegistry,
) -> Result<MergeOutcome, IntegrateError> {
    let schema = left.schema();
    schema
        .check_union_compatible(right.schema())
        .map_err(IntegrateError::Relation)?;
    registry.validate(schema)?;
    // Key-membership for matcher validation: one streaming pass per
    // side (keys only are retained, never the tuples).
    let collect = |side: &Arc<evirel_plan::StoredRelation>| -> Result<
        std::collections::HashSet<Vec<Value>>,
        IntegrateError,
    > {
        let schema = Arc::clone(side.schema());
        let mut keys = std::collections::HashSet::with_capacity(side.len());
        for tuple in side.iter() {
            let tuple = tuple.map_err(|e| IntegrateError::BadMatch {
                reason: format!("stored scan failed: {e}"),
            })?;
            keys.insert(tuple.key(&schema));
        }
        Ok(keys)
    };
    let left_keys = collect(left)?;
    let right_keys = collect(right)?;
    let pairing = validated_pairing(matching, &|k| left_keys.contains(k), &|k| {
        right_keys.contains(k)
    })?;

    let name = format!("{}⊎{}", schema.name(), right.schema().name());
    let mut ctx = ExecContext::new();
    ctx.parallelism = 1;
    let mut op = MergeOp::with_pairing(
        Box::new(evirel_plan::SpillScanOp::new(
            schema.name().to_owned(),
            Arc::clone(left),
        )),
        Box::new(evirel_plan::SpillScanOp::new(
            right.schema().name().to_owned(),
            Arc::clone(right),
        )),
        Box::new(RegistryMerger::new(registry.clone())),
        pairing,
        name,
    )
    .map_err(from_plan_error)?;
    let relation = evirel_plan::run(&mut op, &mut ctx).map_err(from_plan_error)?;
    Ok(MergeOutcome {
        relation,
        report: ctx.conflict_report(),
    })
}

/// [`TupleMerger`] adapter: per-attribute method dispatch through the
/// [`MethodRegistry`], riding the plan layer's streaming merge
/// operator.
struct RegistryMerger {
    registry: MethodRegistry,
    /// Combination-memo scratch, reused across the whole merge pass
    /// (one allocation per pass instead of one per Dempster call).
    scratch: evirel_algebra::MergeScratch,
}

impl RegistryMerger {
    fn new(registry: MethodRegistry) -> RegistryMerger {
        RegistryMerger {
            registry,
            scratch: evirel_algebra::MergeScratch::new(),
        }
    }
}

impl TupleMerger for RegistryMerger {
    fn merge(
        &mut self,
        schema: &Schema,
        key: &[Value],
        left: &Tuple,
        right: &Tuple,
        report: &mut ConflictReport,
    ) -> Result<Option<Tuple>, PlanError> {
        merge_pair(
            schema,
            key,
            left,
            right,
            &self.registry,
            report,
            &mut self.scratch,
        )
        .map_err(to_plan_error)
    }

    fn describe(&self) -> String {
        "method registry".to_owned()
    }
}

/// Round-trip integrate errors through the plan layer without losing
/// their type: [`to_plan_error`] for the merger, [`from_plan_error`]
/// when execution hands them back.
fn to_plan_error(e: IntegrateError) -> PlanError {
    match e {
        IntegrateError::Algebra(a) => PlanError::Algebra(a),
        IntegrateError::Relation(r) => PlanError::Relation(r),
        IntegrateError::Evidence(ev) => {
            PlanError::Algebra(evirel_algebra::AlgebraError::Evidence(ev))
        }
        IntegrateError::MethodMismatch { attr, reason } => PlanError::Merge { attr, reason },
        other => PlanError::Pairing {
            reason: other.to_string(),
        },
    }
}

fn from_plan_error(e: PlanError) -> IntegrateError {
    match e {
        PlanError::Algebra(evirel_algebra::AlgebraError::Evidence(ev)) => {
            IntegrateError::Evidence(ev)
        }
        PlanError::Algebra(a) => IntegrateError::Algebra(a),
        PlanError::Relation(r) => IntegrateError::Relation(r),
        PlanError::Merge { attr, reason } => IntegrateError::MethodMismatch { attr, reason },
        other => IntegrateError::BadMatch {
            reason: other.to_string(),
        },
    }
}

fn merge_pair(
    schema: &evirel_relation::Schema,
    key: &[Value],
    l: &Tuple,
    r: &Tuple,
    registry: &MethodRegistry,
    report: &mut ConflictReport,
    scratch: &mut evirel_algebra::MergeScratch,
) -> Result<Option<Tuple>, IntegrateError> {
    let mut values = Vec::with_capacity(schema.arity());
    for (pos, attr) in schema.attrs().iter().enumerate() {
        let lv = l.value(pos);
        let rv = r.value(pos);
        if attr.is_key() {
            // Left key is canonical (matchers may pair unequal keys).
            values.push(lv.clone());
            continue;
        }
        let merged = match registry.method_for_attr(attr) {
            IntegrationMethod::KeepLeft => lv.clone(),
            IntegrationMethod::KeepRight => rv.clone(),
            IntegrationMethod::Aggregate(f) => {
                let (a, b) = match (lv.as_definite(), rv.as_definite()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(IntegrateError::MethodMismatch {
                            attr: attr.name().to_owned(),
                            reason: "aggregate method requires definite values".to_owned(),
                        })
                    }
                };
                let resolved =
                    f.resolve_values(a, b)
                        .ok_or_else(|| IntegrateError::MethodMismatch {
                            attr: attr.name().to_owned(),
                            reason: format!("aggregate {f} cannot resolve {a} and {b}"),
                        })?;
                AttrValue::Definite(resolved)
            }
            IntegrationMethod::Evidential => evidential_merge(
                attr,
                key,
                lv,
                rv,
                CombinationRule::Dempster,
                registry,
                report,
                scratch,
            )?,
            IntegrationMethod::EvidentialWith(rule) => {
                evidential_merge(attr, key, lv, rv, rule, registry, report, scratch)?
            }
        };
        values.push(merged);
    }

    let membership = match l.membership().combine_dempster(&r.membership()) {
        Ok(m) => m,
        Err(evirel_relation::RelationError::Evidence(EvidenceError::TotalConflict)) => {
            report.record(AttributeConflict {
                key: key.to_vec(),
                attr: "(sn,sp)".to_owned(),
                kappa: 1.0,
                total: true,
            });
            match registry.on_total_conflict {
                ConflictPolicy::Error => {
                    return Err(IntegrateError::Algebra(
                        evirel_algebra::AlgebraError::TotalConflict {
                            key: Value::render_key(key),
                            attr: "(sn,sp)".to_owned(),
                        },
                    ))
                }
                ConflictPolicy::KeepLeft => l.membership(),
                ConflictPolicy::KeepRight => r.membership(),
                ConflictPolicy::Vacuous => SupportPair::unknown(),
            }
        }
        Err(e) => return Err(IntegrateError::Relation(e)),
    };
    if !membership.is_positive() {
        return Ok(None);
    }
    Ok(Some(Tuple::new(schema, values, membership)?))
}

#[allow(clippy::too_many_arguments)]
fn evidential_merge(
    attr: &evirel_relation::AttrDef,
    key: &[Value],
    lv: &AttrValue,
    rv: &AttrValue,
    rule: CombinationRule,
    registry: &MethodRegistry,
    report: &mut ConflictReport,
    scratch: &mut evirel_algebra::MergeScratch,
) -> Result<AttrValue, IntegrateError> {
    let domain = match attr.ty() {
        AttrType::Evidential(d) => d,
        AttrType::Definite(_) => {
            return Err(IntegrateError::MethodMismatch {
                attr: attr.name().to_owned(),
                reason: "evidential merge needs an evidential attribute".to_owned(),
            })
        }
    };
    let lm = lv.to_evidence(domain)?;
    let rm = rv.to_evidence(domain)?;
    match rule.combine_reporting_with(&lm, &rm, scratch) {
        Ok((mass, kappa)) => {
            if kappa > 0.0 {
                report.record(AttributeConflict {
                    key: key.to_vec(),
                    attr: attr.name().to_owned(),
                    kappa,
                    total: false,
                });
            }
            Ok(AttrValue::Evidential(mass))
        }
        Err(EvidenceError::TotalConflict) => {
            report.record(AttributeConflict {
                key: key.to_vec(),
                attr: attr.name().to_owned(),
                kappa: 1.0,
                total: true,
            });
            match registry.on_total_conflict {
                ConflictPolicy::Error => Err(IntegrateError::Algebra(
                    evirel_algebra::AlgebraError::TotalConflict {
                        key: Value::render_key(key),
                        attr: attr.name().to_owned(),
                    },
                )),
                ConflictPolicy::KeepLeft => Ok(AttrValue::Evidential(lm)),
                ConflictPolicy::KeepRight => Ok(AttrValue::Evidential(rm)),
                ConflictPolicy::Vacuous => Ok(AttrValue::Evidential(
                    MassFunction::vacuous(Arc::clone(domain.frame()))
                        .map_err(evirel_relation::RelationError::from)?,
                )),
            }
        }
        Err(e) => Err(IntegrateError::Evidence(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity_id::{EntityMatcher, KeyMatcher};
    use evirel_baselines::AggregateFn;
    use evirel_relation::{AttrDomain, RelationBuilder, Schema, ValueKind};

    fn domain() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap())
    }

    fn schema(name: &str) -> Arc<Schema> {
        Arc::new(
            Schema::builder(name)
                .key_str("k")
                .definite("seats", ValueKind::Int)
                .evidential("rating", domain())
                .build()
                .unwrap(),
        )
    }

    fn left() -> ExtendedRelation {
        RelationBuilder::new(schema("L"))
            .tuple(|t| {
                t.set_str("k", "wok")
                    .set_int("seats", 40)
                    .set_evidence("rating", [(&["gd"][..], 0.6), (&["ex"][..], 0.4)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("k", "solo-left")
                    .set_int("seats", 10)
                    .set_evidence("rating", [(&["avg"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    fn right() -> ExtendedRelation {
        RelationBuilder::new(schema("R"))
            .tuple(|t| {
                t.set_str("k", "wok")
                    .set_int("seats", 50)
                    .set_evidence("rating", [(&["gd"][..], 1.0)])
            })
            .unwrap()
            .tuple(|t| {
                t.set_str("k", "solo-right")
                    .set_int("seats", 20)
                    .set_evidence("rating", [(&["ex"][..], 1.0)])
            })
            .unwrap()
            .build()
    }

    fn registry() -> MethodRegistry {
        MethodRegistry::new()
            .with_default(IntegrationMethod::KeepLeft)
            .assign("rating", IntegrationMethod::Evidential)
            .assign("seats", IntegrationMethod::Aggregate(AggregateFn::Average))
    }

    /// Merging straight from on-disk segments (both sides streamed by
    /// spill scans, the right side indexed off its segment in one
    /// pass) reproduces the in-memory merge: relation, insertion
    /// order, and conflict report.
    #[test]
    fn merge_stored_matches_in_memory() {
        let (l, r) = (left(), right());
        let matching = KeyMatcher.match_tuples(&l, &r).unwrap();
        let mem = merge_relations(&l, &r, &matching, &registry()).unwrap();

        let pool = Arc::new(evirel_plan::BufferPool::new(1024));
        let store = |rel: &ExtendedRelation| {
            let path = evirel_store::spill_path("integrate");
            evirel_store::write_segment(rel, &path, 256).unwrap();
            let s = evirel_plan::StoredRelation::open(&path, Arc::clone(&pool)).unwrap();
            std::fs::remove_file(&path).ok();
            Arc::new(s)
        };
        let (sl, sr) = (store(&l), store(&r));
        let out = merge_stored(&sl, &sr, &matching, &registry()).unwrap();
        assert!(mem.relation.approx_eq(&out.relation));
        assert_eq!(
            mem.relation.keys().collect::<Vec<_>>(),
            out.relation.keys().collect::<Vec<_>>()
        );
        assert_eq!(mem.report.conflicts(), out.report.conflicts());

        // Matcher validation still fires against segment key sets.
        let bad = MatchOutcome {
            matched: vec![(vec![Value::str("ghost")], vec![Value::str("wok")])],
            left_only: Vec::new(),
            right_only: Vec::new(),
        };
        assert!(matches!(
            merge_stored(&sl, &sr, &bad, &registry()),
            Err(IntegrateError::BadMatch { .. })
        ));
    }

    #[test]
    fn methods_coexist_in_one_merge() {
        let (l, r) = (left(), right());
        let matching = KeyMatcher.match_tuples(&l, &r).unwrap();
        let out = merge_relations(&l, &r, &matching, &registry()).unwrap();
        assert_eq!(out.relation.len(), 3);
        let wok = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
        // Dayal average on seats.
        assert_eq!(wok.value(1).as_definite(), Some(&Value::int(45)));
        // Dempster on rating: gd = 0.6 / (1 - 0.4) = 1.0 after the ex
        // mass conflicts away… compute: products gd∩gd 0.6, ex∩gd ∅
        // 0.4 → κ = 0.4, gd = 1.0.
        let rating = wok.value(2).as_evidential().unwrap();
        let gd = domain().subset_of_values([&Value::str("gd")]).unwrap();
        assert!((rating.mass_of(&gd) - 1.0).abs() < 1e-9);
        // Conflict recorded.
        assert_eq!(out.report.len(), 1);
        assert!((out.report.conflicts()[0].kappa - 0.4).abs() < 1e-9);
    }

    /// A matcher that pairs one left key twice (or lists a key as
    /// both matched and left-only) is invalid and must fail loudly,
    /// not silently drop a pairing.
    #[test]
    fn inconsistent_matchings_rejected() {
        let (l, r) = (left(), right());
        let wok = vec![Value::str("wok")];
        let solo = vec![Value::str("solo-right")];
        let matching = MatchOutcome {
            matched: vec![(wok.clone(), wok.clone()), (wok.clone(), solo)],
            left_only: Vec::new(),
            right_only: Vec::new(),
        };
        assert!(matches!(
            merge_relations(&l, &r, &matching, &registry()),
            Err(IntegrateError::BadMatch { .. })
        ));
        let matching = MatchOutcome {
            matched: vec![(wok.clone(), wok.clone())],
            left_only: vec![wok.clone()],
            right_only: Vec::new(),
        };
        assert!(matches!(
            merge_relations(&l, &r, &matching, &registry()),
            Err(IntegrateError::BadMatch { .. })
        ));
        // Right-side double claims are rejected symmetrically.
        let solo_left = vec![Value::str("solo-left")];
        let matching = MatchOutcome {
            matched: vec![(wok.clone(), wok.clone()), (solo_left, wok.clone())],
            left_only: Vec::new(),
            right_only: Vec::new(),
        };
        assert!(matches!(
            merge_relations(&l, &r, &matching, &registry()),
            Err(IntegrateError::BadMatch { .. })
        ));
        let matching = MatchOutcome {
            matched: vec![(wok.clone(), wok.clone())],
            left_only: Vec::new(),
            right_only: vec![wok],
        };
        assert!(matches!(
            merge_relations(&l, &r, &matching, &registry()),
            Err(IntegrateError::BadMatch { .. })
        ));
    }

    /// The sharded merge stage must reproduce the sequential outcome
    /// exactly — relation, insertion order, and conflict report — at
    /// every thread count, including when the matcher pairs *unequal*
    /// keys (which forces the canonical-key shard routing).
    #[test]
    fn sharded_merge_matches_sequential() {
        let mk = |name: &str, prefix: &str, label_offset: usize, n: usize| {
            let mut b = RelationBuilder::new(schema(name));
            for i in 0..n {
                let label = ["avg", "gd", "ex"][(i + label_offset) % 3];
                b = b
                    .tuple(|t| {
                        t.set_str("k", format!("{prefix}{i}"))
                            .set_int("seats", i as i64)
                            .set_evidence_with_omega("rating", [(&[label][..], 0.6)], 0.4)
                    })
                    .unwrap();
            }
            Arc::new(b.build())
        };
        // Left keys "l-i", right keys "r-i": every match pairs unequal
        // keys; half the right side stays unmatched. The offset label
        // cycle makes every matched rating combination partially
        // conflict (κ > 0), so the reports are non-trivial.
        let l = mk("L", "l-", 0, 300);
        let r = mk("R", "r-", 1, 300);
        let matching = MatchOutcome {
            matched: (0..150)
                .map(|i| {
                    (
                        vec![Value::str(format!("l-{i}"))],
                        vec![Value::str(format!("r-{i}"))],
                    )
                })
                .collect(),
            left_only: (150..300)
                .map(|i| vec![Value::str(format!("l-{i}"))])
                .collect(),
            right_only: (150..300)
                .map(|i| vec![Value::str(format!("r-{i}"))])
                .collect(),
        };
        let reg = registry().with_conflict_policy(ConflictPolicy::Vacuous);
        let seq =
            merge_relations_sharded(Arc::clone(&l), Arc::clone(&r), &matching, &reg, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let par =
                merge_relations_sharded(Arc::clone(&l), Arc::clone(&r), &matching, &reg, threads)
                    .unwrap();
            assert_eq!(seq.relation.len(), par.relation.len());
            for (s, p) in seq.relation.iter().zip(par.relation.iter()) {
                assert_eq!(
                    s.key(seq.relation.schema()),
                    p.key(par.relation.schema()),
                    "order diverged at {threads} threads"
                );
                assert!(s.approx_eq(p), "contents diverged at {threads} threads");
            }
            assert!(!seq.report.is_empty());
            assert_eq!(
                seq.report.conflicts(),
                par.report.conflicts(),
                "report diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn unmatched_tuples_pass_through() {
        let (l, r) = (left(), right());
        let matching = KeyMatcher.match_tuples(&l, &r).unwrap();
        let out = merge_relations(&l, &r, &matching, &registry()).unwrap();
        assert!(out.relation.contains_key(&[Value::str("solo-left")]));
        assert!(out.relation.contains_key(&[Value::str("solo-right")]));
    }

    #[test]
    fn keep_right_policy() {
        let reg = MethodRegistry::new()
            .with_default(IntegrationMethod::KeepRight)
            .assign("rating", IntegrationMethod::Evidential);
        let (l, r) = (left(), right());
        let matching = KeyMatcher.match_tuples(&l, &r).unwrap();
        let out = merge_relations(&l, &r, &matching, &reg).unwrap();
        let wok = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
        assert_eq!(wok.value(1).as_definite(), Some(&Value::int(50)));
    }

    #[test]
    fn registry_validated_upfront() {
        // Force the evidential method onto the definite "seats".
        let reg = MethodRegistry::new().with_default(IntegrationMethod::Evidential);
        let (l, r) = (left(), right());
        let matching = KeyMatcher.match_tuples(&l, &r).unwrap();
        assert!(matches!(
            merge_relations(&l, &r, &matching, &reg),
            Err(IntegrateError::MethodMismatch { .. })
        ));
        // The zero-config registry merges mixed schemas out of the box.
        let out = merge_relations(&l, &r, &matching, &MethodRegistry::new()).unwrap();
        assert_eq!(out.relation.len(), 3);
        let wok = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
        // Definite fallback keeps the left seats value.
        assert_eq!(wok.value(1).as_definite(), Some(&Value::int(40)));
    }

    #[test]
    fn total_conflict_respects_policy() {
        let mk = |label: &str| {
            RelationBuilder::new(schema("X"))
                .tuple(|t| {
                    t.set_str("k", "wok")
                        .set_int("seats", 1)
                        .set_evidence("rating", [(&[label][..], 1.0)])
                })
                .unwrap()
                .build()
        };
        let l = mk("ex");
        let r = mk("avg");
        let matching = KeyMatcher.match_tuples(&l, &r).unwrap();
        let err = merge_relations(&l, &r, &matching, &registry());
        assert!(matches!(err, Err(IntegrateError::Algebra(_))));
        let reg = registry().with_conflict_policy(ConflictPolicy::Vacuous);
        let out = merge_relations(&l, &r, &matching, &reg).unwrap();
        let wok = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
        assert!(wok.value(2).as_evidential().unwrap().is_vacuous());
    }

    #[test]
    fn alternative_rule_through_registry() {
        let reg = registry().assign(
            "rating",
            IntegrationMethod::EvidentialWith(CombinationRule::Yager),
        );
        let mk = |label: &str| {
            RelationBuilder::new(schema("X"))
                .tuple(|t| {
                    t.set_str("k", "wok")
                        .set_int("seats", 1)
                        .set_evidence("rating", [(&[label][..], 1.0)])
                })
                .unwrap()
                .build()
        };
        let l = mk("ex");
        let r = mk("avg");
        let matching = KeyMatcher.match_tuples(&l, &r).unwrap();
        // Yager handles total conflict by moving mass to Ω — no error.
        let out = merge_relations(&l, &r, &matching, &reg).unwrap();
        let wok = out.relation.get_by_key(&[Value::str("wok")]).unwrap();
        assert!(wok.value(2).as_evidential().unwrap().is_vacuous());
    }
}
