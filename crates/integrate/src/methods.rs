//! Attribute integration methods (Figure 1's "Attribute Integration
//! Methods").
//!
//! §1.3: the evidential approach and Dayal's aggregate approach are
//! *"separate classes of attribute integration methods which can
//! co-exist in the integration framework."* The [`MethodRegistry`]
//! realizes that: each attribute of the integrated relation is
//! assigned the method that derives it.

use crate::error::IntegrateError;
use evirel_algebra::ConflictPolicy;
use evirel_baselines::AggregateFn;
use evirel_evidence::rules::CombinationRule;
use std::collections::HashMap;
use std::fmt;

/// How one attribute of the integrated relation is derived from the
/// matched source values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IntegrationMethod {
    /// Dempster's rule of combination on evidence sets — the paper's
    /// contribution and the default for evidential attributes.
    #[default]
    Evidential,
    /// An alternative combination rule (ablation).
    EvidentialWith(CombinationRule),
    /// Dayal's aggregate resolution — numeric definite attributes.
    Aggregate(AggregateFn),
    /// Trust the left source.
    KeepLeft,
    /// Trust the right source.
    KeepRight,
}

impl fmt::Display for IntegrationMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrationMethod::Evidential => write!(f, "evidential(dempster)"),
            IntegrationMethod::EvidentialWith(rule) => write!(f, "evidential({})", rule.name()),
            IntegrationMethod::Aggregate(a) => write!(f, "aggregate({a})"),
            IntegrationMethod::KeepLeft => write!(f, "keep-left"),
            IntegrationMethod::KeepRight => write!(f, "keep-right"),
        }
    }
}

/// Per-attribute method assignments with a type-aware default.
///
/// Resolution order for an attribute: explicit [`MethodRegistry::assign`]
/// → explicit [`MethodRegistry::with_default`] → built-in fallback
/// ([`IntegrationMethod::Evidential`] for evidential attributes,
/// [`IntegrationMethod::KeepLeft`] for open definite ones), so the
/// zero-configuration pipeline works on mixed schemas.
#[derive(Debug, Clone, Default)]
pub struct MethodRegistry {
    default: Option<IntegrationMethod>,
    per_attr: HashMap<String, IntegrationMethod>,
    /// Resolution policy for total conflicts inside evidential methods.
    pub on_total_conflict: ConflictPolicy,
}

impl MethodRegistry {
    /// Registry with the type-aware built-in default.
    pub fn new() -> MethodRegistry {
        MethodRegistry::default()
    }

    /// Set an explicit default method for all unassigned attributes.
    pub fn with_default(mut self, m: IntegrationMethod) -> Self {
        self.default = Some(m);
        self
    }

    /// Assign a method to one attribute.
    pub fn assign(mut self, attr: impl Into<String>, m: IntegrationMethod) -> Self {
        self.per_attr.insert(attr.into(), m);
        self
    }

    /// Set the total-conflict policy used by evidential methods.
    pub fn with_conflict_policy(mut self, p: ConflictPolicy) -> Self {
        self.on_total_conflict = p;
        self
    }

    /// The method for an attribute definition.
    pub fn method_for_attr(&self, attr: &evirel_relation::AttrDef) -> IntegrationMethod {
        if let Some(m) = self.per_attr.get(attr.name()) {
            return *m;
        }
        if let Some(m) = self.default {
            return m;
        }
        if attr.ty().is_evidential() {
            IntegrationMethod::Evidential
        } else {
            IntegrationMethod::KeepLeft
        }
    }

    /// Validate the assignments against a schema: aggregates need
    /// numeric definite attributes, evidential methods need evidential
    /// (or in-domain definite) attributes.
    ///
    /// # Errors
    /// [`IntegrateError::MethodMismatch`] on the first bad assignment.
    pub fn validate(&self, schema: &evirel_relation::Schema) -> Result<(), IntegrateError> {
        for attr in schema.attrs() {
            if attr.is_key() {
                continue;
            }
            let method = self.method_for_attr(attr);
            match (method, attr.ty()) {
                (
                    IntegrationMethod::Aggregate(_),
                    evirel_relation::AttrType::Definite(evirel_relation::ValueKind::Str),
                ) => {
                    return Err(IntegrateError::MethodMismatch {
                        attr: attr.name().to_owned(),
                        reason: "aggregate over non-numeric kind string".to_owned(),
                    });
                }
                (IntegrationMethod::Aggregate(_), evirel_relation::AttrType::Definite(_)) => {}
                (IntegrationMethod::Aggregate(_), evirel_relation::AttrType::Evidential(_)) => {
                    return Err(IntegrateError::MethodMismatch {
                        attr: attr.name().to_owned(),
                        reason: "aggregate over evidential attribute (use Evidential)".to_owned(),
                    });
                }
                (
                    IntegrationMethod::Evidential | IntegrationMethod::EvidentialWith(_),
                    evirel_relation::AttrType::Definite(_),
                ) => {
                    return Err(IntegrateError::MethodMismatch {
                        attr: attr.name().to_owned(),
                        reason: "evidential combination over open definite attribute \
                                 (use KeepLeft/KeepRight or Aggregate)"
                            .to_owned(),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evirel_relation::{AttrDomain, Schema, ValueKind};
    use std::sync::Arc;

    fn schema() -> Schema {
        let d = Arc::new(AttrDomain::categorical("d", ["x"]).unwrap());
        Schema::builder("r")
            .key_str("k")
            .definite("salary", ValueKind::Int)
            .definite("dept", ValueKind::Str)
            .evidential("d", d)
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_with_type_aware_default() {
        let s = schema();
        let r = MethodRegistry::new()
            .assign("salary", IntegrationMethod::Aggregate(AggregateFn::Average));
        assert_eq!(
            r.method_for_attr(s.attr_by_name("salary").unwrap()),
            IntegrationMethod::Aggregate(AggregateFn::Average)
        );
        // Built-in fallback: evidential attr → Dempster, definite → KeepLeft.
        assert_eq!(
            r.method_for_attr(s.attr_by_name("d").unwrap()),
            IntegrationMethod::Evidential
        );
        assert_eq!(
            r.method_for_attr(s.attr_by_name("dept").unwrap()),
            IntegrationMethod::KeepLeft
        );
        // Explicit default overrides the fallback.
        let r = MethodRegistry::new().with_default(IntegrationMethod::KeepRight);
        assert_eq!(
            r.method_for_attr(s.attr_by_name("d").unwrap()),
            IntegrationMethod::KeepRight
        );
        // Zero-config registry validates against mixed schemas.
        assert!(MethodRegistry::new().validate(&s).is_ok());
    }

    #[test]
    fn validation_catches_mismatches() {
        // Aggregate over a string attribute: rejected.
        let r = MethodRegistry::new()
            .with_default(IntegrationMethod::KeepLeft)
            .assign("dept", IntegrationMethod::Aggregate(AggregateFn::Max));
        assert!(matches!(
            r.validate(&schema()),
            Err(IntegrateError::MethodMismatch { .. })
        ));
        // Aggregate over the evidential attribute: rejected.
        let r = MethodRegistry::new()
            .with_default(IntegrationMethod::KeepLeft)
            .assign("d", IntegrationMethod::Aggregate(AggregateFn::Max));
        assert!(r.validate(&schema()).is_err());
        // Evidential over an open definite attribute: rejected.
        let r = MethodRegistry::new().with_default(IntegrationMethod::Evidential);
        assert!(r.validate(&schema()).is_err());
        // A sensible registry passes.
        let r = MethodRegistry::new()
            .with_default(IntegrationMethod::KeepLeft)
            .assign("salary", IntegrationMethod::Aggregate(AggregateFn::Average))
            .assign("d", IntegrationMethod::Evidential);
        assert!(r.validate(&schema()).is_ok());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            IntegrationMethod::Evidential.to_string(),
            "evidential(dempster)"
        );
        assert_eq!(
            IntegrationMethod::EvidentialWith(CombinationRule::Yager).to_string(),
            "evidential(yager)"
        );
        assert_eq!(
            IntegrationMethod::Aggregate(AggregateFn::Average).to_string(),
            "aggregate(avg)"
        );
    }
}
