//! Error types for the integration framework.

use evirel_algebra::AlgebraError;
use evirel_evidence::EvidenceError;
use evirel_relation::RelationError;
use std::fmt;

/// Errors produced by the integration pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrateError {
    /// An underlying algebra error (union, selection, …).
    Algebra(AlgebraError),
    /// An underlying relational-model error.
    Relation(RelationError),
    /// An underlying evidence error.
    Evidence(EvidenceError),
    /// A schema mapping referenced a source attribute that does not
    /// exist.
    UnmappedAttribute {
        /// The attribute with no mapping.
        attr: String,
    },
    /// A domain mapping had no entry for an encountered source value.
    UnmappedValue {
        /// Attribute being mapped.
        attr: String,
        /// Rendering of the value with no mapping.
        value: String,
    },
    /// An integration method was assigned to an attribute it cannot
    /// handle (e.g. an aggregate on a non-numeric attribute).
    MethodMismatch {
        /// Attribute name.
        attr: String,
        /// Why the method cannot apply.
        reason: String,
    },
    /// The matcher produced a tuple pairing whose keys disagree.
    BadMatch {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Algebra(e) => write!(f, "algebra error: {e}"),
            Self::Relation(e) => write!(f, "relation error: {e}"),
            Self::Evidence(e) => write!(f, "evidence error: {e}"),
            Self::UnmappedAttribute { attr } => {
                write!(f, "no schema mapping for source attribute {attr:?}")
            }
            Self::UnmappedValue { attr, value } => {
                write!(
                    f,
                    "no domain mapping for value {value} of attribute {attr:?}"
                )
            }
            Self::MethodMismatch { attr, reason } => {
                write!(
                    f,
                    "integration method cannot handle attribute {attr:?}: {reason}"
                )
            }
            Self::BadMatch { reason } => write!(f, "invalid tuple matching: {reason}"),
        }
    }
}

impl std::error::Error for IntegrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Algebra(e) => Some(e),
            Self::Relation(e) => Some(e),
            Self::Evidence(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for IntegrateError {
    fn from(e: AlgebraError) -> Self {
        IntegrateError::Algebra(e)
    }
}

impl From<RelationError> for IntegrateError {
    fn from(e: RelationError) -> Self {
        IntegrateError::Relation(e)
    }
}

impl From<EvidenceError> for IntegrateError {
    fn from(e: EvidenceError) -> Self {
        IntegrateError::Evidence(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: IntegrateError = RelationError::CwaViolation.into();
        assert!(matches!(e, IntegrateError::Relation(_)));
        let e: IntegrateError = EvidenceError::TotalConflict.into();
        assert!(matches!(e, IntegrateError::Evidence(_)));
        let e: IntegrateError = AlgebraError::PredicateType { reason: "x".into() }.into();
        assert!(matches!(e, IntegrateError::Algebra(_)));
    }

    #[test]
    fn messages() {
        let e = IntegrateError::UnmappedValue {
            attr: "rating".into(),
            value: "★★★".into(),
        };
        assert!(e.to_string().contains("rating"));
        assert!(e.to_string().contains("★★★"));
    }
}
