//! Attribute domain information: value-level mappings between source
//! and global domains (Figure 1's "Attribute Domain Information").
//!
//! DeMichiel's key observation — reiterated in the paper's
//! introduction — is that mapping conflicting attributes to a common
//! domain can itself *generate* uncertainty: a source value may
//! correspond to several global values. A [`DomainMapping`] therefore
//! sends each source value to a [`MappedValue`]:
//!
//! * one-to-one: a definite global value;
//! * one-to-many: an evidence set over global values (e.g. a source
//!   rating `"B"` mapping to `[gd^0.7, avg^0.3]`, or a source cuisine
//!   `"chinese"` mapping to the focal set `{hu, si, ca}`).

use crate::error::IntegrateError;
use evirel_evidence::MassFunction;
use evirel_relation::{AttrDomain, AttrValue, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The image of one source value in the global domain.
#[derive(Debug, Clone, PartialEq)]
pub enum MappedValue {
    /// Maps to a single definite global value.
    Definite(Value),
    /// Maps to an evidence set: `(global values, mass)` entries which
    /// must sum to 1 (masses on multi-value sets express genuine
    /// ambiguity).
    Uncertain(Vec<(Vec<Value>, f64)>),
}

/// A value-level mapping into a global attribute domain.
#[derive(Debug, Clone)]
pub struct DomainMapping {
    target: Arc<AttrDomain>,
    entries: HashMap<Value, MappedValue>,
    /// When `true`, source values already in the target domain pass
    /// through unmapped entries (identity fallback).
    passthrough: bool,
}

impl DomainMapping {
    /// A mapping into `target` with identity fallback enabled.
    pub fn new(target: Arc<AttrDomain>) -> DomainMapping {
        DomainMapping {
            target,
            entries: HashMap::new(),
            passthrough: true,
        }
    }

    /// Disable the identity fallback: every encountered source value
    /// must be explicitly mapped.
    pub fn strict(mut self) -> Self {
        self.passthrough = false;
        self
    }

    /// Map `source` to a definite global value.
    pub fn to_definite(mut self, source: impl Into<Value>, global: impl Into<Value>) -> Self {
        self.entries
            .insert(source.into(), MappedValue::Definite(global.into()));
        self
    }

    /// Map `source` to an evidence set over the global domain.
    pub fn to_uncertain(
        mut self,
        source: impl Into<Value>,
        entries: Vec<(Vec<Value>, f64)>,
    ) -> Self {
        self.entries
            .insert(source.into(), MappedValue::Uncertain(entries));
        self
    }

    /// The global (target) domain.
    pub fn target(&self) -> &Arc<AttrDomain> {
        &self.target
    }

    /// Map one source attribute value into the global domain.
    ///
    /// Evidence-set inputs are mapped focal-element-wise through the
    /// value map (each member value mapped; definite images only), so
    /// already-uncertain sources stay uncertain.
    ///
    /// # Errors
    /// * [`IntegrateError::UnmappedValue`] under [`DomainMapping::strict`]
    ///   (or when the identity fallback fails because the value is not
    ///   in the target domain);
    /// * evidence construction errors for ill-formed uncertain images.
    pub fn map_value(&self, attr: &str, v: &AttrValue) -> Result<AttrValue, IntegrateError> {
        match v {
            AttrValue::Definite(value) => self.map_definite(attr, value),
            AttrValue::Evidential(m) => {
                // Translate each focal element member-wise.
                let mut builder = MassFunction::<f64>::builder(Arc::clone(self.target.frame()));
                for (set, w) in m.iter() {
                    let mut member_indices = Vec::with_capacity(set.len());
                    for i in set.iter() {
                        let label = m
                            .frame()
                            .label(i)
                            .map_err(evirel_relation::RelationError::from)?;
                        let source_value = source_value_guess(label);
                        let image = self.image_of(attr, &source_value)?;
                        match image {
                            MappedValue::Definite(gv) => {
                                member_indices.push(self.target.index_of(&gv)?);
                            }
                            MappedValue::Uncertain(entries) => {
                                // A set member mapping to an uncertain
                                // image widens the focal element to the
                                // union of its images.
                                for (vals, _) in &entries {
                                    for gv in vals {
                                        member_indices.push(self.target.index_of(gv)?);
                                    }
                                }
                            }
                        }
                    }
                    builder = builder
                        .add_set(evirel_evidence::FocalSet::from_indices(member_indices), *w)
                        .map_err(evirel_relation::RelationError::from)?;
                }
                Ok(AttrValue::Evidential(
                    builder
                        .build()
                        .map_err(evirel_relation::RelationError::from)?,
                ))
            }
        }
    }

    fn map_definite(&self, attr: &str, value: &Value) -> Result<AttrValue, IntegrateError> {
        match self.image_of(attr, value)? {
            MappedValue::Definite(gv) => {
                // Validate membership in the target domain.
                self.target.index_of(&gv)?;
                Ok(AttrValue::Definite(gv))
            }
            MappedValue::Uncertain(entries) => {
                let mut builder = MassFunction::<f64>::builder(Arc::clone(self.target.frame()));
                for (vals, w) in &entries {
                    let set = self.target.subset_of_values(vals.iter())?;
                    builder = builder
                        .add_set(set, *w)
                        .map_err(evirel_relation::RelationError::from)?;
                }
                Ok(AttrValue::Evidential(
                    builder
                        .build()
                        .map_err(evirel_relation::RelationError::from)?,
                ))
            }
        }
    }

    fn image_of(&self, attr: &str, value: &Value) -> Result<MappedValue, IntegrateError> {
        if let Some(image) = self.entries.get(value) {
            return Ok(image.clone());
        }
        if self.passthrough && self.target.index_of(value).is_ok() {
            return Ok(MappedValue::Definite(value.clone()));
        }
        Err(IntegrateError::UnmappedValue {
            attr: attr.to_owned(),
            value: value.to_string(),
        })
    }
}

/// Frame labels are rendered values; recover the `Value` for lookup.
/// Labels that parse as integers are integer values, otherwise
/// strings (floats are not used as evidential domain labels).
fn source_value_guess(label: &str) -> Value {
    match label.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::str(label),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> Arc<AttrDomain> {
        Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap())
    }

    #[test]
    fn one_to_one_mapping() {
        let m = DomainMapping::new(target())
            .to_definite("A", "ex")
            .to_definite("B", "gd")
            .to_definite("C", "avg");
        let out = m
            .map_value("rating", &AttrValue::Definite(Value::str("B")))
            .unwrap();
        assert_eq!(out, AttrValue::Definite(Value::str("gd")));
    }

    #[test]
    fn one_to_many_mapping_generates_uncertainty() {
        // Source "B+" is between gd and ex: the mapping *introduces*
        // an evidence set — DeMichiel's phenomenon.
        let m = DomainMapping::new(target()).to_uncertain(
            "B+",
            vec![
                (vec![Value::str("gd")], 0.6),
                (vec![Value::str("gd"), Value::str("ex")], 0.4),
            ],
        );
        let out = m
            .map_value("rating", &AttrValue::Definite(Value::str("B+")))
            .unwrap();
        let ev = out.as_evidential().unwrap();
        assert_eq!(ev.focal_count(), 2);
        let gd = target().subset_of_values([&Value::str("gd")]).unwrap();
        assert!((ev.mass_of(&gd) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn passthrough_identity() {
        let m = DomainMapping::new(target());
        let out = m
            .map_value("rating", &AttrValue::Definite(Value::str("ex")))
            .unwrap();
        assert_eq!(out, AttrValue::Definite(Value::str("ex")));
    }

    #[test]
    fn strict_rejects_unmapped() {
        let m = DomainMapping::new(target()).strict();
        assert!(matches!(
            m.map_value("rating", &AttrValue::Definite(Value::str("ex"))),
            Err(IntegrateError::UnmappedValue { .. })
        ));
    }

    #[test]
    fn unmappable_value_reported() {
        let m = DomainMapping::new(target());
        assert!(matches!(
            m.map_value("rating", &AttrValue::Definite(Value::str("★★"))),
            Err(IntegrateError::UnmappedValue { .. })
        ));
    }

    #[test]
    fn evidential_input_translates_focal_elements() {
        // Source evidence over {A, B, C} translated into the global
        // rating domain.
        let source_domain = Arc::new(AttrDomain::categorical("grade", ["A", "B", "C"]).unwrap());
        let ev = MassFunction::<f64>::builder(Arc::clone(source_domain.frame()))
            .add(["A"], 0.5)
            .unwrap()
            .add(["B", "C"], 0.5)
            .unwrap()
            .build()
            .unwrap();
        let m = DomainMapping::new(target())
            .to_definite("A", "ex")
            .to_definite("B", "gd")
            .to_definite("C", "avg");
        let out = m.map_value("rating", &AttrValue::Evidential(ev)).unwrap();
        let out = out.as_evidential().unwrap();
        let ex = target().subset_of_values([&Value::str("ex")]).unwrap();
        let gd_avg = target()
            .subset_of_values([&Value::str("gd"), &Value::str("avg")])
            .unwrap();
        assert!((out.mass_of(&ex) - 0.5).abs() < 1e-12);
        assert!((out.mass_of(&gd_avg) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn integer_labels_roundtrip() {
        let int_target = Arc::new(AttrDomain::integers("n", 1, 5).unwrap());
        let source = Arc::new(AttrDomain::integers("m", 1, 5).unwrap());
        let ev = MassFunction::<f64>::builder(Arc::clone(source.frame()))
            .add(["2"], 1.0)
            .unwrap()
            .build()
            .unwrap();
        let m = DomainMapping::new(int_target);
        let out = m.map_value("n", &AttrValue::Evidential(ev)).unwrap();
        assert!(out.as_evidential().unwrap().as_definite().is_some());
    }
}
