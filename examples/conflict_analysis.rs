//! Conflict analysis across merge approaches — the paper's §1.3
//! comparison, measured.
//!
//! Sweeps the workload generator's conflict bias and reports, per
//! approach: how many matched pairs survive the merge (vs. abort on
//! total conflict), how specific the surviving values are, and what
//! Dempster's κ distribution looks like. Closes with Zadeh's paradox
//! under all four combination rules — the ablation knob exposed by
//! `UnionOptions::rule`.
//!
//! ```sh
//! cargo run --example conflict_analysis
//! ```

use evirel::baselines::{compare, compare_merge};
use evirel::evidence::rules::CombinationRule;
use evirel::prelude::*;
use evirel::workload::generator::{generate_pair, GeneratorConfig, PairConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("conflict-bias sweep (1000 matched pairs per row)\n");
    println!(
        "{:>6} | {:>8} | {:>12} {:>12} | {:>10} {:>10} {:>10} | {:>12}",
        "bias", "mean κ", "evid. surv", "evid. spec", "partial", "bayes", "mixing", "partial spec"
    );
    for bias in [0.0, 0.25, 0.5, 0.75, 1.0] {
        // Narrow focal structure and no Ω floor, so disagreement
        // between the sources actually shows up as conflict.
        let (a, b) = generate_pair(&PairConfig {
            base: GeneratorConfig {
                tuples: 1000,
                evidential_attrs: 1,
                omega_mass: 0.0,
                max_focal: 2,
                max_focal_size: 2,
                uncertain_membership: 0.0,
                ..Default::default()
            },
            key_overlap: 1.0,
            conflict_bias: bias,
        })?;
        let mut kappa_sum = 0.0;
        let mut n = 0usize;
        let mut evid_survived = 0usize;
        let mut evid_spec = 0.0;
        let mut partial_survived = 0usize;
        let mut partial_spec = 0.0;
        let mut bayes_survived = 0usize;
        let mut mixing_entropy = 0.0;
        for (key, ta) in a.iter_keyed() {
            let Some(tb) = b.get_by_key(&key) else {
                continue;
            };
            let ma = ta.value(1).as_evidential().expect("generated evidential");
            let mb = tb.value(1).as_evidential().expect("generated evidential");
            let cmp = compare_merge(ma, mb)?;
            n += 1;
            kappa_sum += cmp.kappa;
            if let Some(spec) = cmp.evidential {
                evid_survived += 1;
                evid_spec += spec;
            }
            if let Some(spec) = cmp.partial {
                partial_survived += 1;
                partial_spec += spec;
            }
            if cmp.prob_bayes_entropy.is_some() {
                bayes_survived += 1;
            }
            mixing_entropy += cmp.prob_mixing_entropy;
        }
        println!(
            "{:>6.2} | {:>8.3} | {:>11.1}% {:>12.2} | {:>9.1}% {:>9.1}% {:>9.1}% | {:>12.2}",
            bias,
            kappa_sum / n as f64,
            100.0 * evid_survived as f64 / n as f64,
            evid_spec / evid_survived.max(1) as f64,
            100.0 * partial_survived as f64 / n as f64,
            100.0 * bayes_survived as f64 / n as f64,
            100.0, // mixing never fails by construction
            partial_spec / partial_survived.max(1) as f64,
        );
        let _ = mixing_entropy;
    }

    println!("\nZadeh's paradox under the four combination rules");
    println!("(source 1: a^0.99, c^0.01 — source 2: b^0.99, c^0.01)\n");
    let frame = Arc::new(evirel::evidence::Frame::new("zadeh", ["a", "b", "c"]));
    let m1 = MassFunction::<f64>::builder(Arc::clone(&frame))
        .add(["a"], 0.99)?
        .add(["c"], 0.01)?
        .build()?;
    let m2 = MassFunction::<f64>::builder(Arc::clone(&frame))
        .add(["b"], 0.99)?
        .add(["c"], 0.01)?
        .build()?;
    for rule in CombinationRule::ALL {
        match rule.combine(&m1, &m2) {
            Ok(m) => println!("{:>12}: {}", rule.name(), m),
            Err(e) => println!("{:>12}: {e}", rule.name()),
        }
    }

    println!("\nspecificity of the paper's own Table 4 merge:");
    let ra = evirel::workload::restaurant_db_a().restaurants;
    let rb = evirel::workload::restaurant_db_b().restaurants;
    let merged = union_extended(&ra, &rb)?;
    for (key, tuple) in merged.relation.iter_keyed() {
        let spec: f64 = [4usize, 5, 6]
            .iter()
            .map(|&pos| {
                tuple
                    .value(pos)
                    .as_evidential()
                    .map(compare::specificity)
                    .unwrap_or(1.0)
            })
            .sum::<f64>()
            / 3.0;
        println!(
            "  {:<22} mean specificity {:.3}",
            Value::render_key(&key),
            spec
        );
    }
    println!(
        "\nconflicts the data administrator would see:\n{}",
        merged.report
    );
    Ok(())
}
