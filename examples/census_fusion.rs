//! Fusing two heterogeneous census databases.
//!
//! Demonstrates the parts of the framework the restaurant example
//! leaves quiet: schema mappings, *uncertainty-introducing* domain
//! mappings (DeMichiel's phenomenon — a one-to-many value map turns a
//! definite source value into an evidence set), Dayal aggregates
//! coexisting with evidential combination in one method registry, and
//! normalized entity matching.
//!
//! Source A (national bureau): education in ISCED-ish levels, exact
//! income.
//! Source B (regional survey): education as free-form bands that map
//! ambiguously onto the global domain, rounded income.
//!
//! ```sh
//! cargo run --example census_fusion
//! ```

use evirel::baselines::AggregateFn;
use evirel::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Global schema: person keyed by id-name, evidential education
    // over an ordered domain, definite numeric income.
    let education = Arc::new(AttrDomain::categorical(
        "education",
        ["primary", "secondary", "bachelor", "master", "doctoral"],
    )?);
    let global = Arc::new(
        Schema::builder("census")
            .key_str("person")
            .evidential("education", Arc::clone(&education))
            .definite("income", ValueKind::Int)
            .build()?,
    );

    // Source A is already in global terms.
    let source_a = RelationBuilder::new(Arc::clone(&global))
        .tuple(|t| {
            t.set_str("person", "ada")
                .set_evidence("education", [(&["master"][..], 1.0)])
                .set_int("income", 82_000)
        })?
        .tuple(|t| {
            t.set_str("person", "grace")
                .set_evidence_with_omega(
                    "education",
                    [(&["bachelor"][..], 0.6), (&["master"][..], 0.3)],
                    0.1,
                )
                .set_int("income", 74_000)
        })?
        .tuple(|t| {
            t.set_str("person", "edsger")
                .set_evidence("education", [(&["doctoral"][..], 1.0)])
                .set_int("income", 95_000)
                .membership_pair(0.7, 1.0) // possibly moved away
        })?
        .build();

    // Source B uses its own vocabulary: "degree" bands and different
    // attribute names; keys differ in case/whitespace.
    let b_schema = Arc::new(
        Schema::builder("regional")
            .key_str("name")
            .definite("degree", ValueKind::Str)
            .definite("salary", ValueKind::Int)
            .build()?,
    );
    let source_b = RelationBuilder::new(Arc::clone(&b_schema))
        .tuple(|t| {
            t.set_str("name", "Ada ")
                .set_str("degree", "graduate")
                .set_int("salary", 86_000)
        })?
        .tuple(|t| {
            t.set_str("name", "GRACE")
                .set_str("degree", "college")
                .set_int("salary", 70_000)
        })?
        .tuple(|t| {
            t.set_str("name", "alan")
                .set_str("degree", "doctorate")
                .set_int("salary", 91_000)
        })?
        .build();

    println!("source A (national bureau):\n{source_a}");
    println!("source B (regional survey):\n{source_b}");

    // "graduate" is genuinely ambiguous between master and doctoral —
    // the mapping *introduces* an evidence set; "college" splits
    // between secondary and bachelor.
    let degree_map = DomainMapping::new(Arc::clone(&education))
        .to_uncertain(
            "graduate",
            vec![
                (vec![Value::str("master")], 0.7),
                (vec![Value::str("master"), Value::str("doctoral")], 0.3),
            ],
        )
        .to_uncertain(
            "college",
            vec![
                (vec![Value::str("bachelor")], 0.8),
                (vec![Value::str("secondary"), Value::str("bachelor")], 0.2),
            ],
        )
        .to_definite("doctorate", "doctoral");

    let integrator = Integrator::new(Arc::clone(&global))
        .with_right_preprocessor(
            Preprocessor::new()
                .with_schema_mapping(
                    SchemaMapping::identity()
                        .map("name", "person")
                        .map("degree", "education")
                        .map("salary", "income"),
                )
                .with_domain_mapping("education", degree_map),
        )
        .with_matcher(evirel::integrate::NormalizedKeyMatcher)
        .with_methods(
            MethodRegistry::new()
                .assign("education", IntegrationMethod::Evidential)
                .assign("income", IntegrationMethod::Aggregate(AggregateFn::Average))
                .with_conflict_policy(ConflictPolicy::Vacuous),
        );

    let outcome = integrator.run(&source_a, &source_b)?;
    println!("{}", outcome.trace);
    println!("integrated census:\n{}", outcome.relation);
    println!("conflicts:\n{}", outcome.report);

    // Query: who most plausibly holds at least a master's?
    let mut catalog = Catalog::new();
    catalog.register(
        "census",
        evirel::algebra::rename_relation(&outcome.relation, "census"),
    );
    let answer = execute(
        &catalog,
        "SELECT * FROM census WHERE education >= 'master' WITH SN > 0;",
    )?;
    println!(
        "education >= master (ranked):\n{}",
        evirel::query::format::render_ranked(&answer)
    );
    Ok(())
}
