//! Quickstart: resolve an attribute-value conflict between two
//! databases with the extended union, then query the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use evirel::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A shared (global) schema: restaurants keyed by name, with an
    //    uncertain rating attribute over the ordered domain
    //    avg < gd < ex.
    let rating = Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"])?);
    let schema = Arc::new(
        Schema::builder("restaurants")
            .key_str("rname")
            .evidential("rating", Arc::clone(&rating))
            .build()?,
    );

    // 2. Two independently collected databases. Evidence sets assign
    //    mass to *sets* of values: DB_A's reviewers are split on
    //    "wok"; DB_B is sure it is good.
    let db_a = RelationBuilder::new(Arc::clone(&schema))
        .tuple(|t| {
            t.set_str("rname", "wok")
                .set_evidence("rating", [(&["gd"][..], 0.25), (&["avg"][..], 0.75)])
        })?
        .tuple(|t| {
            t.set_str("rname", "garden").set_evidence_with_omega(
                "rating",
                [(&["ex"][..], 0.33), (&["gd"][..], 0.5)],
                0.17,
            )
        })?
        .build();
    let db_b = RelationBuilder::new(Arc::clone(&schema))
        .tuple(|t| {
            t.set_str("rname", "wok")
                .set_evidence("rating", [(&["gd"][..], 1.0)])
        })?
        .tuple(|t| {
            t.set_str("rname", "olive")
                .set_evidence("rating", [(&["gd"][..], 0.8), (&["avg"][..], 0.2)])
                .membership_pair(0.8, 1.0) // DB_B is not sure olive still exists
        })?
        .build();

    println!("DB_A:\n{db_a}");
    println!("DB_B:\n{db_b}");

    // 3. The extended union combines matched tuples with Dempster's
    //    rule — attribute values AND membership evidence.
    let merged = union_extended(&db_a, &db_b)?;
    println!("DB_A ∪̃ DB_B:\n{}", merged.relation);
    println!("Conflict report: {}", merged.report);

    // 4. Query with the paper's selection semantics: which
    //    restaurants are at least 'gd', and how certain are we?
    let mut catalog = Catalog::new();
    catalog.register("merged", merged.relation);
    let answer = execute(
        &catalog,
        "SELECT * FROM merged WHERE rating >= 'gd' WITH SN > 0.5;",
    )?;
    println!("rating >= 'gd' WITH SN > 0.5:\n{answer}");

    // 5. Persist and reload in the paper's own notation.
    let text = write_relation(&answer);
    let reloaded = read_relation(&text)?;
    assert!(reloaded.approx_eq(&answer));
    println!("stored form:\n{text}");
    Ok(())
}
