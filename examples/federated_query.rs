//! A federated-query session over the integrated restaurant catalog,
//! driven through the two-layer plan API: logical plans built with
//! the fluent builder, optimized by the rewrite rules, and executed
//! by the streaming operators — with an `EXPLAIN` printout showing
//! the rules fire, and the ∪̃ conflict report that now survives
//! execution.
//!
//! ```sh
//! cargo run --example federated_query
//! ```

use evirel::prelude::*;
use evirel::query::format::render_ranked;
use evirel::workload::{restaurant_db_a, restaurant_db_b};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);
    catalog.register("rma", restaurant_db_a().managed_by);

    // ---- EQL surface language (lowered onto the plan layer) -------
    let queries = [
        // Table 2: definite-or-not Sichuan places.
        "SELECT * FROM ra WHERE speciality IS {si} WITH SN > 0;",
        // Table 3: Mughalai AND excellent (multiplicative compound).
        "SELECT * FROM ra WHERE speciality IS {mu} AND rating IS {ex} WITH SN > 0;",
        // Table 4 + a query on top: integrate both sources, then ask
        // for at-least-good restaurants we're quite sure of.
        "SELECT rname, speciality, rating FROM ra UNION rb WHERE rating >= 'gd' WITH SN >= 0.8;",
        // Table 5: projection keeps keys and membership.
        "SELECT rname, phone, speciality, rating FROM ra;",
        // Extensions: negation and disjunction.
        "SELECT rname, rating FROM ra WHERE NOT rating IS {avg} OR speciality IS {it} WITH SN >= 0.5;",
        // Plausibility screening: anything that *might* be excellent.
        "SELECT rname, rating FROM ra UNION rb WITH SP >= 0.1;",
        // θ against an evidence literal (the §3.1.1 form).
        "SELECT rname, rating FROM ra WHERE rating >= [gd^0.7, ex^0.3] WITH SN >= 0.5;",
    ];

    for q in queries {
        println!("eql> {q}");
        match execute_with_report(&catalog, q) {
            Ok(outcome) => {
                println!("{}", outcome.relation);
                println!("{}", render_ranked(&outcome.relation));
                if !outcome.report.is_empty() {
                    println!(
                        "∪̃ observed {} conflict(s), max κ = {:.3} — the report the",
                        outcome.report.len(),
                        outcome.report.max_kappa()
                    );
                    println!("data administrator gets instead of a silent drop.\n");
                }
            }
            Err(e) => println!("error: {e}\n"),
        }
    }

    // ---- EXPLAIN: watch the rewrite rules fire --------------------
    // The join expands to σ̃ ∘ ×̃, the WHERE fuses with the ON
    // condition, its left-side conjunct pushes below the product, and
    // the physical tree runs a hash ⋈̃ that indexes the right side
    // once and streams probes.
    let q =
        "SELECT * FROM ra JOIN rma ON RA.rname = RMA.rname WHERE speciality IS {si} WITH SN > 0";
    println!("eql> EXPLAIN {q}");
    println!("{}", evirel::query::explain_with(&catalog, q)?);

    // ---- The same pipeline, built directly on the plan API --------
    let plan = scan("ra")
        .union(scan("rb"))
        .select(Predicate::is("rating", ["ex"]))
        .threshold(Threshold::SnAtLeast(0.8))
        .project(["rname", "rating"])
        .build();
    println!("plan builder → EXPLAIN:");
    println!("{}", explain_plan(&plan, &catalog, &catalog.union_options)?);
    let mut ctx = ExecContext::with_options(catalog.union_options.clone());
    let result = execute_plan(&plan, &catalog, &mut ctx)?;
    println!("{result}");
    println!(
        "stats: {} scanned, {} emitted, {} pair(s) merged, {} conflict(s), max κ = {:.3}",
        ctx.stats.tuples_scanned,
        ctx.stats.tuples_emitted,
        ctx.stats.pairs_merged,
        ctx.stats.conflicts,
        ctx.stats.max_kappa
    );

    // Round-trip the integrated relation through storage, re-register,
    // and query the reloaded copy — the persistence path end to end.
    let merged = execute(&catalog, "SELECT * FROM ra UNION rb;")?;
    let stored = write_relation(&merged);
    let reloaded = read_relation(&stored)?;
    catalog.register("merged", reloaded);
    let again = execute(
        &catalog,
        "SELECT rname, rating FROM merged WHERE rating IS {ex} WITH SN >= 0.8;",
    )?;
    println!("reloaded-from-storage query:\n{again}");
    Ok(())
}
