//! A federated-query session over the integrated restaurant catalog:
//! the paper's §3 operations driven entirely from the EQL surface
//! language, including θ-predicates with evidence-set literals
//! (§3.1.1) and plausibility screening.
//!
//! ```sh
//! cargo run --example federated_query
//! ```

use evirel::prelude::*;
use evirel::query::format::render_ranked;
use evirel::workload::{restaurant_db_a, restaurant_db_b};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.register("ra", restaurant_db_a().restaurants);
    catalog.register("rb", restaurant_db_b().restaurants);

    let queries = [
        // Table 2: definite-or-not Sichuan places.
        "SELECT * FROM ra WHERE speciality IS {si} WITH SN > 0;",
        // Table 3: Mughalai AND excellent (multiplicative compound).
        "SELECT * FROM ra WHERE speciality IS {mu} AND rating IS {ex} WITH SN > 0;",
        // Table 4 + a query on top: integrate both papers' sources,
        // then ask for at-least-good restaurants we're quite sure of.
        "SELECT rname, speciality, rating FROM ra UNION rb WHERE rating >= 'gd' WITH SN >= 0.8;",
        // Table 5: projection keeps keys and membership.
        "SELECT rname, phone, speciality, rating FROM ra;",
        // Extensions: negation and disjunction.
        "SELECT rname, rating FROM ra WHERE NOT rating IS {avg} OR speciality IS {it} WITH SN >= 0.5;",
        // Plausibility screening: anything that *might* be excellent.
        "SELECT rname, rating FROM ra UNION rb WITH SP >= 0.1;",
        // θ against an evidence literal (the §3.1.1 form): restaurants
        // whose rating evidence is at least as high as a reference
        // profile that is 70% good, 30% excellent.
        "SELECT rname, rating FROM ra WHERE rating >= [gd^0.7, ex^0.3] WITH SN >= 0.5;",
    ];

    for q in queries {
        println!("eql> {q}");
        match execute(&catalog, q) {
            Ok(result) => {
                println!("{result}");
                println!("{}", render_ranked(&result));
            }
            Err(e) => println!("error: {e}\n"),
        }
    }

    // Round-trip the integrated relation through storage, re-register,
    // and query the reloaded copy — the persistence path end to end.
    let merged = execute(&catalog, "SELECT * FROM ra UNION rb;")?;
    let stored = write_relation(&merged);
    let reloaded = read_relation(&stored)?;
    catalog.register("merged", reloaded);
    let again = execute(
        &catalog,
        "SELECT rname, rating FROM merged WHERE rating IS {ex} WITH SN >= 0.8;",
    )?;
    println!("reloaded-from-storage query:\n{again}");
    Ok(())
}
