//! From raw survey votes to an integrated database — the paper's
//! §1.2 data-generation story, end to end, across *three* news
//! agencies.
//!
//! Each agency sends a panel of reviewers to every restaurant; votes
//! consolidate into evidence sets exactly as the paper describes
//! (votes/panel-size masses, abstentions → Ω, ambiguous
//! classifications → multi-element focal sets). The three resulting
//! databases are integrated in one `run_many` fold — sound because
//! Dempster's rule is associative — with the third agency's sloppier
//! panel discounted by a reliability factor.
//!
//! ```sh
//! cargo run --example survey_pipeline
//! ```

use evirel::evidence::measures;
use evirel::prelude::*;
use evirel::workload::{Survey, SurveyConfig};
use std::sync::Arc;

const RESTAURANTS: [&str; 8] = [
    "garden", "wok", "country", "olive", "mehl", "ashiana", "nile", "pagoda",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rating = Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"])?);
    let dishes = Arc::new(AttrDomain::categorical(
        "best-dish",
        (1..=12).map(|i| format!("d{i}")),
    )?);
    let schema = Arc::new(
        Schema::builder("restaurants")
            .key_str("rname")
            .evidential("best-dish", Arc::clone(&dishes))
            .evidential("rating", Arc::clone(&rating))
            .build()?,
    );

    // Ground truth per restaurant: (best dish index, rating index).
    let truth: Vec<(usize, usize)> = (0..RESTAURANTS.len())
        .map(|i| (i % 12, 2 - i % 3))
        .collect();

    // Three agencies with different panel quality.
    let agencies = [
        (
            "minnesota-daily",
            SurveyConfig {
                panel_size: 6,
                abstain_rate: 0.05,
                ambiguity_rate: 0.1,
                seed: 11,
            },
            0.10,
        ),
        (
            "star-tribute",
            SurveyConfig {
                panel_size: 6,
                abstain_rate: 0.10,
                ambiguity_rate: 0.2,
                seed: 22,
            },
            0.15,
        ),
        (
            "tourist-gazette",
            SurveyConfig {
                panel_size: 4,
                abstain_rate: 0.25,
                ambiguity_rate: 0.3,
                seed: 33,
            },
            0.35,
        ),
    ];

    let mut sources = Vec::new();
    for (name, config, noise) in &agencies {
        let mut dish_survey = Survey::new(Arc::clone(&dishes), config.clone());
        let mut rating_survey = Survey::new(
            Arc::clone(&rating),
            SurveyConfig {
                seed: config.seed + 1,
                ..config.clone()
            },
        );
        let mut builder = RelationBuilder::new(Arc::new(schema.renamed(*name)));
        for (i, rname) in RESTAURANTS.iter().enumerate() {
            let (dish_truth, rating_truth) = truth[i];
            let dish_ev = dish_survey.conduct(dish_truth, *noise)?;
            let rating_ev = rating_survey.conduct(rating_truth, *noise)?;
            builder = builder.tuple(|t| {
                t.set_str("rname", *rname)
                    .set("best-dish", dish_ev.clone())
                    .set("rating", rating_ev.clone())
            })?;
        }
        let rel = builder.build();
        println!("== survey results: {name} ==\n{rel}");
        sources.push(rel);
    }

    // Integrate all three; the tourist gazette's panel is only 70%
    // trusted, so its evidence is Shafer-discounted before combining.
    let integrator = Integrator::new(Arc::clone(&schema))
        .with_right_preprocessor(Preprocessor::new())
        .with_methods(MethodRegistry::new().with_conflict_policy(ConflictPolicy::Vacuous));
    let two = integrator.run(&sources[0], &sources[1])?;
    let gazette_discounted = Preprocessor::new()
        .with_reliability(0.7)
        .apply(&sources[2], Arc::clone(&schema))?;
    let all = integrator.run(&two.relation, &gazette_discounted)?;

    println!("== integrated relation (3 agencies) ==\n{}", all.relation);
    println!("{}", all.trace);

    // How much sharper did integration make the evidence?
    println!("nonspecificity (bits) before vs. after integration:");
    for rname in RESTAURANTS {
        let single = sources[0]
            .get_by_key(&[Value::str(rname)])
            .and_then(|t| t.value(2).as_evidential().map(measures::nonspecificity))
            .unwrap_or(f64::NAN);
        let merged = all
            .relation
            .get_by_key(&[Value::str(rname)])
            .and_then(|t| t.value(2).as_evidential().map(measures::nonspecificity))
            .unwrap_or(f64::NAN);
        println!("  {rname:<8} {single:.3} -> {merged:.3}");
    }

    // Decision making: most probable rating per restaurant via the
    // pignistic transform.
    println!("\npignistic best-guess ratings:");
    for rname in RESTAURANTS {
        if let Some(t) = all.relation.get_by_key(&[Value::str(rname)]) {
            let m = t.value(2).to_evidence(&rating)?;
            let best = evirel::evidence::transform::max_pignistic(&m)?;
            println!("  {rname:<8} {}", rating.value(best)?);
        }
    }
    Ok(())
}
