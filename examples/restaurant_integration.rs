//! The paper's running example, end to end: integrate the Minnesota
//! Daily (DB_A) and Star Tribute (DB_B) restaurant databases and
//! regenerate Tables 1–5, driving every stage of Figure 1 and the
//! Figure 2 global schema (Restaurant, Manager, Managed-by).
//!
//! ```sh
//! cargo run --example restaurant_integration
//! ```

use evirel::algebra::{self, Predicate, Threshold};
use evirel::prelude::*;
use evirel::workload::{restaurant_db_a, restaurant_db_b};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db_a = restaurant_db_a();
    let db_b = restaurant_db_b();

    println!("== Table 1: source relations ==\n");
    println!("{}", db_a.restaurants);
    println!("{}", db_b.restaurants);

    println!("== Figure 1: integration pipeline ==\n");
    let integrator = Integrator::new(Arc::clone(db_a.restaurants.schema()));
    let outcome = integrator.run(&db_a.restaurants, &db_b.restaurants)?;
    println!("{}", outcome.trace);
    println!(
        "Conflict report for the data administrator:\n{}",
        outcome.report
    );

    println!("== Table 4: R_A ∪̃_(rname) R_B ==\n");
    println!("{}", outcome.relation);

    println!("== Table 2: σ̃_{{sn>0, speciality is {{si}}}}(R_A) ==\n");
    let table2 = algebra::select(
        &db_a.restaurants,
        &Predicate::is("speciality", ["si"]),
        &Threshold::POSITIVE,
    )?;
    println!("{table2}");

    println!("== Table 3: σ̃_{{sn>0, (speciality is {{mu}}) ∧ (rating is {{ex}})}}(R_A) ==\n");
    let table3 = algebra::select(
        &db_a.restaurants,
        &Predicate::is("speciality", ["mu"]).and(Predicate::is("rating", ["ex"])),
        &Threshold::POSITIVE,
    )?;
    println!("{table3}");

    println!("== Table 5: π̃_{{rname, phone, speciality, rating}}(R_A) ==\n");
    let table5 = algebra::project(
        &db_a.restaurants,
        &["rname", "phone", "speciality", "rating"],
    )?;
    println!("{table5}");

    println!("== Figure 2: the relationship side (Managed-by ⋈̃ Manager) ==\n");
    // Integrate the Manager and Managed-by relations of both DBs, then
    // answer: who manages a restaurant rated excellent with sn ≥ 0.8?
    let managers = algebra::union_extended(&db_a.managers, &db_b.managers)?;
    let managed_by = algebra::union_extended(&db_a.managed_by, &db_b.managed_by)?;
    println!("{}", managers.relation);
    println!("{}", managed_by.relation);

    let mut catalog = Catalog::new();
    // Give the derived relations simple schema names so qualified
    // attribute references in the join condition stay readable.
    catalog.register("r", algebra::rename_relation(&outcome.relation, "r"));
    catalog.register("rm", algebra::rename_relation(&managed_by.relation, "rm"));
    catalog.register("m", managers.relation);

    let q = "SELECT * FROM (r JOIN rm ON r.rname = rm.rname) \
             WHERE rating IS {ex} WITH SN >= 0.8;";
    let answer = evirel::query::execute(&catalog, q)?;
    println!("managers of excellent restaurants (sn ≥ 0.8):\n{answer}");
    println!(
        "ranked by necessary support:\n{}",
        evirel::query::format::render_ranked(&answer)
    );
    Ok(())
}
