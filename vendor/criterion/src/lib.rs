//! An offline, dependency-free subset of the `criterion` crate API.
//!
//! The build environment has no registry access, so this workspace
//! vendors the slice of `criterion` 0.5 its benches use: `Criterion`,
//! benchmark groups with throughput annotations, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple — median of per-sample mean
//! wall-clock times, printed as plain text — with none of real
//! criterion's statistics, HTML reports, or baseline comparison.
//!
//! Mode selection matches criterion's behaviour under cargo:
//! `cargo bench` passes `--bench`, which triggers full measurement;
//! any other invocation (e.g. `cargo test --benches`) runs every
//! benchmark body exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            // Full measurement only when cargo bench's `--bench` flag
            // is present; otherwise run each body once.
            smoke_only: !std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this stub's calibration pass
    /// doubles as the warm-up, so the duration is ignored.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.0, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used to report rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override samples per benchmark for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Override the wall-clock budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Benchmark a closure that receives `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, self.throughput.clone(), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a plain closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, self.throughput.clone(), &mut f);
        self
    }

    /// End the group. (Accepted for API compatibility; drop would do.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, preventing the result from being optimized out.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if criterion.smoke_only {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {label}: smoke ok");
        return;
    }

    // Calibrate: how many iterations fit one sample's time slice?
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let slice = criterion.measurement_time / criterion.sample_size as u32;
    let iters = (slice.as_nanos() / per_iter.as_nanos()).clamp(1, u64::MAX as u128) as u64;

    let mut sample_means = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        sample_means.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    sample_means.sort_by(|a, b| a.total_cmp(b));
    let median = sample_means[sample_means.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        _ => String::new(),
    };
    println!(
        "bench {label}: median {} ({} samples x {iters} iters){rate}",
        format_time(median),
        sample_means.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Define a benchmark group: either `criterion_group!(name, f1, f2)`
/// or the long form with a `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_smoke() {
        let mut c = Criterion::default();
        assert!(c.smoke_only, "tests never see --bench");
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::from_parameter(1), &3u32, |b, x| {
                b.iter(|| {
                    ran += 1;
                    x * 2
                })
            });
            g.finish();
        }
        assert_eq!(ran, 1, "smoke mode runs the body exactly once");
    }

    #[test]
    fn measured_mode_runs_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        c.smoke_only = false;
        let mut ran = 0u64;
        c.bench_function("counted", |b| b.iter(|| ran += 1));
        assert!(ran > 3, "calibration + samples must iterate");
    }
}
