//! An offline, dependency-free subset of the `proptest` crate API.
//!
//! The build environment has no registry access, so this workspace
//! vendors the slice of `proptest` 1.x its property suites use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * strategies for integer ranges, tuples of strategies,
//!   [`collection::vec`], [`Just`], and [`prop_oneof!`];
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header) and
//!   the [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its generated inputs
//!   (via `Debug`) and the case index, but is not minimized.
//! * **Deterministic seeding.** Each test derives its seed from the
//!   test function name, so runs are reproducible; there is no
//!   failure-persistence file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this suite keeps that but the
        // property files override it downward where cases are costly.
        ProptestConfig { cases: 256 }
    }
}

/// The value-generation half of proptest's `Strategy`.
///
/// Object-safe: only [`Strategy::generate`] is required, so
/// `Box<dyn Strategy<Value = T>>` works (needed by [`prop_oneof!`]).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String strategies from regex-like patterns, as in real proptest
/// (`"[ -~]{0,20}"` is a strategy for printable-ASCII strings).
///
/// Only the subset this workspace needs is parsed: concatenations of
/// atoms, where an atom is a character class `[a-z 0-9_]` (ranges and
/// literal members, no negation), an escaped or literal character, or
/// `.` (printable ASCII); each atom may carry a `{m}`, `{m,n}`, `?`,
/// `*`, or `+` quantifier (`*`/`+` capped at 8 repeats). Unsupported
/// syntax panics rather than silently generating the wrong language.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        string_pattern::generate(self, rng)
    }
}

mod string_pattern {
    use rand::rngs::StdRng;
    use rand::Rng;

    enum Atom {
        Class(Vec<char>),
        Literal(char),
    }

    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut members = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().unwrap();
                                let hi = chars.next().unwrap();
                                assert!(lo <= hi, "bad range {lo}-{hi} in {pattern:?}");
                                members.extend(lo..=hi);
                            }
                            '\\' => {
                                if let Some(p) = prev.take() {
                                    members.push(p);
                                }
                                prev = Some(chars.next().unwrap());
                            }
                            _ => {
                                if let Some(p) = prev.take() {
                                    members.push(p);
                                }
                                prev = Some(c);
                            }
                        }
                    }
                    if let Some(p) = prev {
                        members.push(p);
                    }
                    assert!(!members.is_empty(), "empty class in {pattern:?}");
                    Atom::Class(members)
                }
                '\\' => Atom::Literal(chars.next().unwrap()),
                '.' => Atom::Class((' '..='~').collect()),
                '(' | ')' | '|' | '*' | '+' | '?' | '{' => {
                    panic!("unsupported regex syntax {c:?} in {pattern:?} (proptest stub)")
                }
                _ => Atom::Literal(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|c| *c != '}').collect();
                    match spec.split_once(',') {
                        Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                        None => {
                            let m: usize = spec.parse().unwrap();
                            (m, m)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                match &atom {
                    Atom::Class(members) => out.push(members[rng.gen_range(0..members.len())]),
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// A uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct OneOf<T> {
    /// The alternatives; public so the macro can construct this.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Derive a stable 64-bit seed from a test name.
///
/// FNV-1a; the constant offset lets the whole suite be re-rolled by
/// editing one line if a seed ever proves degenerate.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `cases` deterministic cases of a property.
///
/// `gen_and_run` draws inputs and returns a `Debug` rendering of them
/// alongside the property body as a closure, so failures can report
/// the offending inputs without shrinking.
pub fn run_property<S, V, B>(name: &str, cases: u32, strategy: &S, mut body: B)
where
    S: Strategy<Value = V>,
    V: core::fmt::Debug,
    B: FnMut(V),
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    for case in 0..cases {
        let input = strategy.generate(&mut rng);
        let rendered = format!("{input:?}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(input)));
        if let Err(payload) = result {
            eprintln!(
                "proptest-stub: property `{name}` failed at case {case}/{cases} \
                 (seed {}) with input:\n  {rendered}",
                seed_for(name)
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Define property tests.
///
/// Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0u32..10, v in collection::vec(0u8..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            $crate::run_property(
                stringify!($name),
                config.cases,
                &strategy,
                |($($arg,)+)| $body,
            );
        }
    )*};
}

/// Assert within a property; reported through the case-reporting
/// runner. (In this stub it panics like `assert!`.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1u32..10, (a, b) in (0u8..4, 5u16..=9)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0u8..3, 2..5).prop_map(|v| v.len())) {
            prop_assert!((2..5).contains(&v));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6, "got {x}");
        }

        #[test]
        fn string_patterns(s in "[ -~]{0,20}", t in "ab[0-9]c?") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            prop_assert!(t.starts_with("ab"));
            prop_assert!(t.chars().nth(2).unwrap().is_ascii_digit());
            prop_assert!(t.len() == 3 || t == format!("{}c", &t[..3]));
        }
    }

    #[test]
    fn deterministic_runner() {
        let s = 0u32..1000;
        let mut first = Vec::new();
        crate::run_property("det", 16, &(s.clone(),), |(x,)| first.push(x));
        let mut second = Vec::new();
        crate::run_property("det", 16, &(s,), |(x,)| second.push(x));
        assert_eq!(first, second);
    }
}
