//! An offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no registry access, so this workspace
//! vendors the small slice of `rand` 0.8 it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform ranges via
//! [`Rng::gen_range`], and Bernoulli draws via [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** seeded through splitmix64 — the same
//! construction `rand`'s small RNGs use. Streams are deterministic per
//! seed but are **not** bit-compatible with the real `rand` crate;
//! nothing in this workspace depends on the exact stream, only on
//! determinism.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample of a supported primitive over its full range
    /// (`f64` samples from `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// `[0, 1)` from the top 53 bits of a word.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let x = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (not the real `StdRng`
    /// algorithm, but the API this workspace needs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u16 = rng.gen_range(1..=1000);
            assert!((1..=1000).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.5..=1.0);
            assert!((0.5..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
