//! # evirel — evidential reasoning for database integration
//!
//! A from-scratch Rust implementation of
//!
//! > Ee-Peng Lim, Jaideep Srivastava, Shashi Shekhar.
//! > *Resolving Attribute Incompatibility in Database Integration: An
//! > Evidential Reasoning Approach.* ICDE 1994, pp. 154–163.
//!
//! This façade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`evidence`]  | `evirel-evidence`  | Dempster–Shafer substrate: frames, focal sets, mass functions, Bel/Pls, Dempster's rule + alternatives, transforms, approximation |
//! | [`relation`]  | `evirel-relation`  | extended relational model: evidence-set attributes, `(sn, sp)` tuple membership, CWA_ER |
//! | [`algebra`]   | `evirel-algebra`   | σ̃, ∪̃, π̃, ×̃, ⋈̃ + predicates, thresholds, conflict reports, closure/boundedness verifiers |
//! | [`baselines`] | `evirel-baselines` | DeMichiel partial values, Tseng probabilistic partial values, Dayal aggregates |
//! | [`integrate`] | `evirel-integrate` | Figure 1 pipeline: preprocessing, entity identification, tuple merging, method registry |
//! | [`plan`]      | `evirel-plan`      | logical plans + fluent builder, rewrite optimizer, pull-based streaming operators, `ExecContext` side outputs |
//! | [`query`]     | `evirel-query`     | EQL: a SQL-flavoured query language over extended relations, executed through `plan` |
//! | [`workload`]  | `evirel-workload`  | the paper's restaurant databases, the survey simulator, random generators |
//! | [`storage`]   | `evirel-storage`   | text persistence in the paper's notation |
//! | [`store`]     | `evirel-store`     | paged binary storage engine: segments, buffer pool, spill-to-disk execution |
//!
//! ## Quickstart
//!
//! ```
//! use evirel::prelude::*;
//! use std::sync::Arc;
//!
//! // Two databases disagree about a restaurant's rating.
//! let rating = Arc::new(AttrDomain::categorical("rating", ["avg", "gd", "ex"]).unwrap());
//! let schema = Arc::new(Schema::builder("restaurants")
//!     .key_str("rname")
//!     .evidential("rating", Arc::clone(&rating))
//!     .build().unwrap());
//!
//! let db_a = RelationBuilder::new(Arc::clone(&schema))
//!     .tuple(|t| t.set_str("rname", "wok")
//!         .set_evidence("rating", [(&["gd"][..], 0.25), (&["avg"][..], 0.75)]))
//!     .unwrap().build();
//! let db_b = RelationBuilder::new(Arc::clone(&schema))
//!     .tuple(|t| t.set_str("rname", "wok")
//!         .set_evidence("rating", [(&["gd"][..], 1.0)]))
//!     .unwrap().build();
//!
//! // The extended union resolves the conflict with Dempster's rule.
//! let merged = union_extended(&db_a, &db_b).unwrap();
//! let wok = merged.relation.get_by_key(&[Value::str("wok")]).unwrap();
//! let m = wok.value(1).as_evidential().unwrap();
//! let gd = rating.subset_of_values([&Value::str("gd")]).unwrap();
//! assert!((m.mass_of(&gd) - 1.0).abs() < 1e-9);
//! ```

pub use evirel_algebra as algebra;
pub use evirel_baselines as baselines;
pub use evirel_evidence as evidence;
pub use evirel_integrate as integrate;
pub use evirel_plan as plan;
pub use evirel_query as query;
pub use evirel_relation as relation;
pub use evirel_serve as serve;
pub use evirel_storage as storage;
pub use evirel_store as store;
pub use evirel_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use evirel_algebra::{
        join, product, project, select, union_extended, ConflictPolicy, Operand, Predicate,
        ThetaOp, Threshold,
    };
    pub use evirel_evidence::{combine, FocalSet, Frame, MassFunction, Ratio};
    pub use evirel_integrate::{
        DomainMapping, IntegrationMethod, Integrator, KeyMatcher, MethodRegistry, Preprocessor,
        SchemaMapping,
    };
    pub use evirel_plan::{execute_plan, explain_plan, scan, Bindings, ExecContext, LogicalPlan};
    pub use evirel_query::{execute, execute_with_report, Catalog};
    pub use evirel_relation::{
        AttrDomain, AttrValue, ExtendedRelation, RelationBuilder, Schema, SupportPair, Tuple,
        TupleBuilder, Value, ValueKind,
    };
    pub use evirel_storage::{read_relation, write_relation};
    pub use evirel_store::{BufferPool, StoredRelation};
}
